//! Single-tenant key management with envelope encryption and
//! crypto-shredding.
//!
//! §IV-B1: "A key management system is a single-tenant isolated system that
//! is dedicated only to a single customer … the key management service
//! shall be hardware based". And for GDPR right-to-forget: "our system
//! supports encryption-based record deletion".
//!
//! The [`KeyManagementSystem`] models that service: a master key-encryption
//! key (KEK) wraps per-record data-encryption keys (DEKs). Data sealed
//! under a DEK can be *crypto-shredded* by destroying the wrapped DEK —
//! after [`KeyManagementSystem::shred`], the ciphertext is permanently
//! unrecoverable even though the bytes still exist in storage, which is how
//! secure deletion works across backups and replicas.

use std::collections::HashMap;

use parking_lot::RwLock;
use rand::Rng;

use hc_common::id::{KeyId, Principal};

use crate::aead::{self, SecretKey, Sealed};

/// Errors returned by the key management system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum KmsError {
    /// The requested key does not exist (never created, or shredded).
    UnknownKey(KeyId),
    /// The principal is not authorized for this key.
    Unauthorized {
        /// Who asked.
        principal: Principal,
        /// For which key.
        key: KeyId,
    },
    /// A sealed payload failed authentication during unwrap/open.
    IntegrityFailure,
}

impl std::fmt::Display for KmsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KmsError::UnknownKey(k) => write!(f, "unknown or shredded key {k}"),
            KmsError::Unauthorized { principal, key } => {
                write!(f, "{principal} is not authorized for key {key}")
            }
            KmsError::IntegrityFailure => f.write_str("sealed payload failed authentication"),
        }
    }
}

impl std::error::Error for KmsError {}

struct KeyEntry {
    wrapped: Sealed,
    authorized: Vec<Principal>,
    generation: u32,
}

/// A single-tenant key management system.
///
/// # Examples
///
/// ```
/// use hc_common::id::Principal;
/// use hc_crypto::kms::KeyManagementSystem;
///
/// let mut rng = hc_common::rng::seeded(5);
/// let kms = KeyManagementSystem::new(&mut rng);
/// let svc = Principal::Service("ingest".into());
/// let key_id = kms.create_key(&mut rng, &[svc.clone()]);
/// let sealed = kms.seal(&svc, key_id, b"record", b"").unwrap();
/// assert_eq!(kms.open(&svc, key_id, &sealed, b"").unwrap(), b"record");
/// kms.shred(key_id);
/// assert!(kms.open(&svc, key_id, &sealed, b"").is_err());
/// ```
pub struct KeyManagementSystem {
    master: SecretKey,
    keys: RwLock<HashMap<KeyId, KeyEntry>>,
    audit: RwLock<Vec<KmsAuditEvent>>,
}

/// An audit event emitted by the KMS (feeds the platform audit trail).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum KmsAuditEvent {
    /// A key was created.
    Created(KeyId),
    /// A key was used by a principal (seal or open).
    Used(KeyId, Principal),
    /// A use was denied.
    Denied(KeyId, Principal),
    /// A key was rotated to a new generation.
    Rotated(KeyId, u32),
    /// A key was crypto-shredded.
    Shredded(KeyId),
}

impl KeyManagementSystem {
    /// Creates a KMS with a fresh random master key.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        KeyManagementSystem {
            master: SecretKey::generate(rng),
            keys: RwLock::new(HashMap::new()),
            audit: RwLock::new(Vec::new()),
        }
    }

    /// Creates a new data-encryption key accessible to `authorized`.
    pub fn create_key<R: Rng + ?Sized>(&self, rng: &mut R, authorized: &[Principal]) -> KeyId {
        let key_id = KeyId::random(rng);
        let dek = SecretKey::generate(rng);
        let wrapped = aead::seal(&self.master, dek.as_bytes(), &key_id.as_u128().to_le_bytes());
        self.keys.write().insert(
            key_id,
            KeyEntry {
                wrapped,
                authorized: authorized.to_vec(),
                generation: 1,
            },
        );
        self.audit.write().push(KmsAuditEvent::Created(key_id));
        key_id
    }

    fn unwrap_dek(&self, key_id: KeyId, principal: &Principal) -> Result<SecretKey, KmsError> {
        let keys = self.keys.read();
        let entry = keys.get(&key_id).ok_or(KmsError::UnknownKey(key_id))?;
        if !entry.authorized.contains(principal) {
            drop(keys);
            self.audit
                .write()
                .push(KmsAuditEvent::Denied(key_id, principal.clone()));
            return Err(KmsError::Unauthorized {
                principal: principal.clone(),
                key: key_id,
            });
        }
        let bytes = aead::open(
            &self.master,
            &entry.wrapped,
            &key_id.as_u128().to_le_bytes(),
        )
        .map_err(|_| KmsError::IntegrityFailure)?;
        let arr: [u8; 32] = bytes.try_into().map_err(|_| KmsError::IntegrityFailure)?;
        drop(keys);
        self.audit
            .write()
            .push(KmsAuditEvent::Used(key_id, principal.clone()));
        Ok(SecretKey::from_bytes(arr))
    }

    /// Seals `plaintext` under the DEK `key_id` on behalf of `principal`.
    ///
    /// # Errors
    ///
    /// Fails if the key is unknown/shredded or the principal unauthorized.
    pub fn seal(
        &self,
        principal: &Principal,
        key_id: KeyId,
        plaintext: &[u8],
        aad: &[u8],
    ) -> Result<Sealed, KmsError> {
        let dek = self.unwrap_dek(key_id, principal)?;
        Ok(aead::seal(&dek, plaintext, aad))
    }

    /// Opens `sealed` under the DEK `key_id` on behalf of `principal`.
    ///
    /// # Errors
    ///
    /// Fails if the key is unknown/shredded, the principal unauthorized, or
    /// the payload fails authentication.
    pub fn open(
        &self,
        principal: &Principal,
        key_id: KeyId,
        sealed: &Sealed,
        aad: &[u8],
    ) -> Result<Vec<u8>, KmsError> {
        let dek = self.unwrap_dek(key_id, principal)?;
        aead::open(&dek, sealed, aad).map_err(|_| KmsError::IntegrityFailure)
    }

    /// Grants `principal` access to `key_id`.
    ///
    /// # Errors
    ///
    /// Fails if the key is unknown.
    pub fn grant(&self, key_id: KeyId, principal: Principal) -> Result<(), KmsError> {
        let mut keys = self.keys.write();
        let entry = keys.get_mut(&key_id).ok_or(KmsError::UnknownKey(key_id))?;
        if !entry.authorized.contains(&principal) {
            entry.authorized.push(principal);
        }
        Ok(())
    }

    /// Rotates `key_id`: future seals use a new DEK generation. Existing
    /// ciphertexts must be re-encrypted by their owners before the old
    /// generation is shredded; this method returns the new generation.
    ///
    /// # Errors
    ///
    /// Fails if the key is unknown.
    pub fn rotate<R: Rng + ?Sized>(&self, rng: &mut R, key_id: KeyId) -> Result<u32, KmsError> {
        let mut keys = self.keys.write();
        let entry = keys.get_mut(&key_id).ok_or(KmsError::UnknownKey(key_id))?;
        let dek = SecretKey::generate(rng);
        entry.wrapped = aead::seal(&self.master, dek.as_bytes(), &key_id.as_u128().to_le_bytes());
        entry.generation += 1;
        let generation = entry.generation;
        drop(keys);
        self.audit
            .write()
            .push(KmsAuditEvent::Rotated(key_id, generation));
        Ok(generation)
    }

    /// Crypto-shreds `key_id`: every ciphertext sealed under it becomes
    /// permanently unrecoverable. Idempotent.
    pub fn shred(&self, key_id: KeyId) {
        if self.keys.write().remove(&key_id).is_some() {
            self.audit.write().push(KmsAuditEvent::Shredded(key_id));
        }
    }

    /// Whether a key currently exists.
    pub fn contains(&self, key_id: KeyId) -> bool {
        self.keys.read().contains_key(&key_id)
    }

    /// Snapshot of the audit log.
    pub fn audit_log(&self) -> Vec<KmsAuditEvent> {
        self.audit.read().clone()
    }

    /// Snapshot of the live key table (metadata only — wrapped key material
    /// is never exposed), sorted by key id for deterministic scans. This is
    /// what the posture scanner audits for over-broad grants and liveness.
    pub fn key_table(&self) -> Vec<KeyInfo> {
        let mut table: Vec<KeyInfo> = self
            .keys
            .read()
            .iter()
            .map(|(&id, entry)| KeyInfo {
                id,
                authorized: entry.authorized.clone(),
                generation: entry.generation,
            })
            .collect();
        table.sort_by_key(|k| k.id);
        table
    }
}

/// Metadata for one live key, as reported by
/// [`KeyManagementSystem::key_table`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KeyInfo {
    /// The key id.
    pub id: KeyId,
    /// Principals authorized to seal/open under the key.
    pub authorized: Vec<Principal>,
    /// Current DEK generation (bumped by rotation).
    pub generation: u32,
}

impl std::fmt::Debug for KeyManagementSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyManagementSystem")
            .field("keys", &self.keys.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(name: &str) -> Principal {
        Principal::Service(name.into())
    }

    #[test]
    fn seal_open_round_trip() {
        let mut rng = hc_common::rng::seeded(1);
        let kms = KeyManagementSystem::new(&mut rng);
        let k = kms.create_key(&mut rng, &[svc("a")]);
        let sealed = kms.seal(&svc("a"), k, b"phi", b"ctx").unwrap();
        assert_eq!(kms.open(&svc("a"), k, &sealed, b"ctx").unwrap(), b"phi");
    }

    #[test]
    fn unauthorized_principal_denied() {
        let mut rng = hc_common::rng::seeded(2);
        let kms = KeyManagementSystem::new(&mut rng);
        let k = kms.create_key(&mut rng, &[svc("a")]);
        let err = kms.seal(&svc("b"), k, b"phi", b"").unwrap_err();
        assert!(matches!(err, KmsError::Unauthorized { .. }));
        assert!(kms
            .audit_log()
            .iter()
            .any(|e| matches!(e, KmsAuditEvent::Denied(..))));
    }

    #[test]
    fn grant_extends_access() {
        let mut rng = hc_common::rng::seeded(3);
        let kms = KeyManagementSystem::new(&mut rng);
        let k = kms.create_key(&mut rng, &[svc("a")]);
        kms.grant(k, svc("b")).unwrap();
        assert!(kms.seal(&svc("b"), k, b"x", b"").is_ok());
    }

    #[test]
    fn shred_makes_data_unrecoverable() {
        let mut rng = hc_common::rng::seeded(4);
        let kms = KeyManagementSystem::new(&mut rng);
        let k = kms.create_key(&mut rng, &[svc("a")]);
        let sealed = kms.seal(&svc("a"), k, b"right-to-forget", b"").unwrap();
        kms.shred(k);
        assert!(!kms.contains(k));
        assert_eq!(
            kms.open(&svc("a"), k, &sealed, b"").unwrap_err(),
            KmsError::UnknownKey(k)
        );
    }

    #[test]
    fn shred_is_idempotent() {
        let mut rng = hc_common::rng::seeded(5);
        let kms = KeyManagementSystem::new(&mut rng);
        let k = kms.create_key(&mut rng, &[svc("a")]);
        kms.shred(k);
        kms.shred(k);
        let shreds = kms
            .audit_log()
            .iter()
            .filter(|e| matches!(e, KmsAuditEvent::Shredded(..)))
            .count();
        assert_eq!(shreds, 1);
    }

    #[test]
    fn rotation_changes_dek() {
        let mut rng = hc_common::rng::seeded(6);
        let kms = KeyManagementSystem::new(&mut rng);
        let k = kms.create_key(&mut rng, &[svc("a")]);
        let sealed_old = kms.seal(&svc("a"), k, b"v1", b"").unwrap();
        let generation = kms.rotate(&mut rng, k).unwrap();
        assert_eq!(generation, 2);
        // Old ciphertext no longer opens: the DEK was replaced.
        assert_eq!(
            kms.open(&svc("a"), k, &sealed_old, b"").unwrap_err(),
            KmsError::IntegrityFailure
        );
        // New seals round-trip.
        let sealed_new = kms.seal(&svc("a"), k, b"v2", b"").unwrap();
        assert_eq!(kms.open(&svc("a"), k, &sealed_new, b"").unwrap(), b"v2");
    }

    #[test]
    fn unknown_key_errors() {
        let mut rng = hc_common::rng::seeded(7);
        let kms = KeyManagementSystem::new(&mut rng);
        let bogus = KeyId::from_raw(99);
        assert_eq!(
            kms.seal(&svc("a"), bogus, b"", b"").unwrap_err(),
            KmsError::UnknownKey(bogus)
        );
    }

    #[test]
    fn audit_records_usage() {
        let mut rng = hc_common::rng::seeded(8);
        let kms = KeyManagementSystem::new(&mut rng);
        let k = kms.create_key(&mut rng, &[svc("a")]);
        let _ = kms.seal(&svc("a"), k, b"x", b"").unwrap();
        let log = kms.audit_log();
        assert!(log.contains(&KmsAuditEvent::Created(k)));
        assert!(log.contains(&KmsAuditEvent::Used(k, svc("a"))));
    }
}
