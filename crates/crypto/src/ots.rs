//! Hash-based signatures: Lamport one-time signatures and a Merkle
//! many-time signer.
//!
//! The paper signs VM/container images and TPM quotes ("Each system
//! component is signed using a digital signature", §IV-B2). Rather than
//! depend on an external asymmetric-crypto library, the platform uses
//! hash-based signatures built entirely on SHA-256: a [`LamportKeypair`]
//! signs exactly one message; a [`MerkleSigner`] aggregates `2^h` one-time
//! keys under a single Merkle-root public key (XMSS-style, without the
//! WOTS+ compression), giving a bounded-use many-time signature suitable
//! for attestation services and image registries.
//!
//! These are *real* signatures — existentially unforgeable assuming
//! SHA-256 preimage resistance — at the cost of large signatures, which is
//! exactly the "public-key operations are expensive" trade-off the paper
//! invokes when arguing for shared-key encryption on the data path (E3).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::merkle::{self, InclusionProof, MerkleTree};
use crate::sha256::{self, Digest};

/// A Lamport one-time public key: two hash outputs per message bit.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LamportPublicKey {
    pairs: Vec<[Digest; 2]>, // 256 pairs
}

impl LamportPublicKey {
    /// A compact commitment to this public key (hash of all elements).
    pub fn fingerprint(&self) -> Digest {
        let mut h = sha256::Sha256::new();
        for pair in &self.pairs {
            h.update(pair[0].as_bytes());
            h.update(pair[1].as_bytes());
        }
        h.finalize()
    }
}

/// A Lamport one-time secret key.
#[derive(Clone)]
pub struct LamportSecretKey {
    pairs: Vec<[[u8; 32]; 2]>,
}

impl std::fmt::Debug for LamportSecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LamportSecretKey(..)")
    }
}

/// A one-time signature: one revealed preimage per digest bit.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LamportSignature {
    revealed: Vec<[u8; 32]>, // 256 preimages
}

impl LamportSignature {
    /// Signature size in bytes.
    pub fn wire_len(&self) -> usize {
        self.revealed.len() * 32
    }
}

/// A one-time keypair.
#[derive(Clone, Debug)]
pub struct LamportKeypair {
    /// The private half; reveal nothing.
    pub secret: LamportSecretKey,
    /// The public half; publish freely.
    pub public: LamportPublicKey,
}

impl LamportKeypair {
    /// Generates a keypair from `rng`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut secret_pairs = Vec::with_capacity(256);
        let mut public_pairs = Vec::with_capacity(256);
        for _ in 0..256 {
            let mut s0 = [0u8; 32];
            let mut s1 = [0u8; 32];
            rng.fill(&mut s0);
            rng.fill(&mut s1);
            public_pairs.push([sha256::hash(&s0), sha256::hash(&s1)]);
            secret_pairs.push([s0, s1]);
        }
        LamportKeypair {
            secret: LamportSecretKey { pairs: secret_pairs },
            public: LamportPublicKey { pairs: public_pairs },
        }
    }

    /// Signs `message` (the message is hashed first).
    ///
    /// A Lamport key must sign only one message; signing two distinct
    /// messages with the same key leaks enough preimages to forge. The
    /// [`MerkleSigner`] enforces one-time use automatically.
    pub fn sign(&self, message: &[u8]) -> LamportSignature {
        let digest = sha256::hash(message);
        let mut revealed = Vec::with_capacity(256);
        for (i, pair) in self.secret.pairs.iter().enumerate() {
            let bit = (digest.as_bytes()[i / 8] >> (7 - (i % 8))) & 1;
            revealed.push(pair[bit as usize]);
        }
        LamportSignature { revealed }
    }
}

/// Verifies a one-time signature against a public key.
pub fn verify_lamport(
    public: &LamportPublicKey,
    message: &[u8],
    signature: &LamportSignature,
) -> bool {
    if signature.revealed.len() != 256 || public.pairs.len() != 256 {
        return false;
    }
    let digest = sha256::hash(message);
    for i in 0..256 {
        let bit = (digest.as_bytes()[i / 8] >> (7 - (i % 8))) & 1;
        if sha256::hash(&signature.revealed[i]) != public.pairs[i][bit as usize] {
            return false;
        }
    }
    true
}

/// A many-time signer: a Merkle tree over `2^height` one-time keys.
///
/// # Examples
///
/// ```
/// let mut rng = hc_common::rng::seeded(1);
/// let mut signer = hc_crypto::ots::MerkleSigner::generate(&mut rng, 2);
/// let pk = signer.public_key();
/// let sig = signer.sign(b"image-digest").unwrap();
/// assert!(hc_crypto::ots::verify_merkle(&pk, b"image-digest", &sig));
/// ```
#[derive(Debug)]
pub struct MerkleSigner {
    keypairs: Vec<LamportKeypair>,
    tree: MerkleTree,
    next: usize,
}

/// The compact public key of a [`MerkleSigner`]: a Merkle root.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MerklePublicKey(pub Digest);

/// A many-time signature.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MerkleSignature {
    /// Index of the one-time key used.
    pub leaf_index: usize,
    /// The one-time signature itself.
    pub ots: LamportSignature,
    /// The one-time public key (verifier recomputes its fingerprint).
    pub ots_public: LamportPublicKey,
    /// Proof that the fingerprint is a leaf of the signer's Merkle root.
    pub proof: InclusionProof,
}

impl MerkleSignature {
    /// Approximate signature size in bytes.
    pub fn wire_len(&self) -> usize {
        self.ots.wire_len() + self.ots_public.pairs.len() * 64 + self.proof.steps.len() * 33 + 8
    }
}

/// Error returned when a [`MerkleSigner`] has exhausted its one-time keys.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KeysExhausted;

impl std::fmt::Display for KeysExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("all one-time keys have been used")
    }
}

impl std::error::Error for KeysExhausted {}

impl MerkleSigner {
    /// Generates a signer with `2^height` one-time keys.
    ///
    /// # Panics
    ///
    /// Panics if `height > 12` (4096 keys), which would be needlessly slow
    /// for a simulation.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, height: u32) -> Self {
        assert!(height <= 12, "height > 12 is unsupported");
        let n = 1usize << height;
        let keypairs: Vec<LamportKeypair> = (0..n).map(|_| LamportKeypair::generate(rng)).collect();
        let leaf_hashes: Vec<Digest> = keypairs
            .iter()
            .map(|kp| merkle::leaf_hash(kp.public.fingerprint().as_bytes()))
            .collect();
        let tree = MerkleTree::from_leaf_hashes(leaf_hashes);
        MerkleSigner {
            keypairs,
            tree,
            next: 0,
        }
    }

    /// The compact public key (Merkle root over one-time key fingerprints).
    pub fn public_key(&self) -> MerklePublicKey {
        MerklePublicKey(self.tree.root())
    }

    /// Remaining signatures before exhaustion.
    pub fn remaining(&self) -> usize {
        self.keypairs.len() - self.next
    }

    /// Signs `message` with the next unused one-time key.
    ///
    /// # Errors
    ///
    /// Returns [`KeysExhausted`] once every one-time key has been used.
    pub fn sign(&mut self, message: &[u8]) -> Result<MerkleSignature, KeysExhausted> {
        if self.next >= self.keypairs.len() {
            return Err(KeysExhausted);
        }
        let idx = self.next;
        self.next += 1;
        let kp = &self.keypairs[idx];
        Ok(MerkleSignature {
            leaf_index: idx,
            ots: kp.sign(message),
            ots_public: kp.public.clone(),
            proof: self.tree.prove(idx),
        })
    }
}

/// Verifies a many-time signature against a Merkle public key.
pub fn verify_merkle(public: &MerklePublicKey, message: &[u8], sig: &MerkleSignature) -> bool {
    if !verify_lamport(&sig.ots_public, message, &sig.ots) {
        return false;
    }
    let leaf = merkle::leaf_hash(sig.ots_public.fingerprint().as_bytes());
    merkle::verify_inclusion_hash(leaf, &sig.proof, &public.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lamport_round_trip() {
        let mut rng = hc_common::rng::seeded(1);
        let kp = LamportKeypair::generate(&mut rng);
        let sig = kp.sign(b"hello");
        assert!(verify_lamport(&kp.public, b"hello", &sig));
        assert!(!verify_lamport(&kp.public, b"hullo", &sig));
    }

    #[test]
    fn lamport_signature_from_other_key_fails() {
        let mut rng = hc_common::rng::seeded(2);
        let kp1 = LamportKeypair::generate(&mut rng);
        let kp2 = LamportKeypair::generate(&mut rng);
        let sig = kp1.sign(b"msg");
        assert!(!verify_lamport(&kp2.public, b"msg", &sig));
    }

    #[test]
    fn merkle_signer_signs_many() {
        let mut rng = hc_common::rng::seeded(3);
        let mut signer = MerkleSigner::generate(&mut rng, 2);
        let pk = signer.public_key();
        for i in 0..4u8 {
            let msg = [i; 8];
            let sig = signer.sign(&msg).unwrap();
            assert!(verify_merkle(&pk, &msg, &sig));
        }
        assert_eq!(signer.sign(b"fifth"), Err(KeysExhausted));
    }

    #[test]
    fn merkle_signature_rejects_tampered_message() {
        let mut rng = hc_common::rng::seeded(4);
        let mut signer = MerkleSigner::generate(&mut rng, 1);
        let pk = signer.public_key();
        let sig = signer.sign(b"image-v1").unwrap();
        assert!(!verify_merkle(&pk, b"image-v2", &sig));
    }

    #[test]
    fn merkle_signature_rejects_foreign_root() {
        let mut rng = hc_common::rng::seeded(5);
        let mut signer1 = MerkleSigner::generate(&mut rng, 1);
        let signer2 = MerkleSigner::generate(&mut rng, 1);
        let sig = signer1.sign(b"msg").unwrap();
        assert!(!verify_merkle(&signer2.public_key(), b"msg", &sig));
    }

    #[test]
    fn remaining_counts_down() {
        let mut rng = hc_common::rng::seeded(6);
        let mut signer = MerkleSigner::generate(&mut rng, 1);
        assert_eq!(signer.remaining(), 2);
        signer.sign(b"a").unwrap();
        assert_eq!(signer.remaining(), 1);
    }

    #[test]
    fn truncated_signature_rejected() {
        let mut rng = hc_common::rng::seeded(7);
        let kp = LamportKeypair::generate(&mut rng);
        let mut sig = kp.sign(b"m");
        sig.revealed.pop();
        assert!(!verify_lamport(&kp.public, b"m", &sig));
    }

    #[test]
    fn wire_len_is_nontrivial() {
        let mut rng = hc_common::rng::seeded(8);
        let mut signer = MerkleSigner::generate(&mut rng, 1);
        let sig = signer.sign(b"m").unwrap();
        // Hash-based signatures are big — that's the point of E3.
        assert!(sig.wire_len() > 8 * 1024);
    }
}
