//! Merkle hash trees with inclusion proofs.
//!
//! Used by the ledger (block transaction roots), the many-time signer
//! ([`crate::ots::MerkleSigner`]) and as the basis of the redactable
//! signature scheme. Leaves and interior nodes are domain-separated so a
//! leaf can never be confused with an interior node (second-preimage
//! hardening).

use serde::{Deserialize, Serialize};

use crate::sha256::{self, Digest};

const LEAF_PREFIX: &[u8] = b"\x00hc-leaf";
const NODE_PREFIX: &[u8] = b"\x01hc-node";

/// Hashes a leaf value with domain separation.
pub fn leaf_hash(data: &[u8]) -> Digest {
    sha256::hash_parts(&[LEAF_PREFIX, data])
}

/// Hashes two child digests into a parent with domain separation.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256::hash_parts(&[NODE_PREFIX, left.as_bytes(), right.as_bytes()])
}

/// A Merkle tree over a fixed list of leaves.
///
/// Odd nodes at any level are promoted (Bitcoin-style duplication is
/// deliberately avoided to prevent CVE-2012-2459-style ambiguity).
#[derive(Clone, Debug)]
pub struct MerkleTree {
    levels: Vec<Vec<Digest>>, // levels[0] = leaf hashes
}

/// One step in an inclusion proof.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ProofStep {
    /// The sibling digest to combine with.
    pub sibling: Digest,
    /// Whether the sibling sits to the left of the running hash.
    pub sibling_on_left: bool,
}

/// An inclusion proof for one leaf.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct InclusionProof {
    /// Bottom-up path of siblings.
    pub steps: Vec<ProofStep>,
}

/// A position-bound inclusion proof: commits to the leaf *index* and the
/// tree's leaf count, so a verifier recomputes every sibling direction
/// itself instead of trusting direction bits in the proof. Used by the
/// ledger's checkpoint/prefix audit proofs, where the claimed position
/// (block height, transaction index) is part of the statement being
/// verified.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct IndexedProof {
    /// The leaf position this proof speaks for.
    pub index: u64,
    /// Total number of leaves in the tree at proof time.
    pub leaf_count: u64,
    /// Bottom-up sibling digests; levels where the node is promoted
    /// (odd tail) contribute no entry.
    pub siblings: Vec<Digest>,
}

impl MerkleTree {
    /// Builds a tree from leaf byte values.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty: an empty tree has no meaningful root.
    pub fn from_leaves<I, B>(leaves: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        let level0: Vec<Digest> = leaves.into_iter().map(|l| leaf_hash(l.as_ref())).collect();
        assert!(!level0.is_empty(), "merkle tree requires at least one leaf");
        Self::from_leaf_hashes(level0)
    }

    /// Builds a tree from already-hashed leaves.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_hashes` is empty.
    pub fn from_leaf_hashes(leaf_hashes: Vec<Digest>) -> Self {
        assert!(!leaf_hashes.is_empty(), "merkle tree requires at least one leaf");
        let mut levels = vec![leaf_hashes];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i < prev.len() {
                if i + 1 < prev.len() {
                    next.push(node_hash(&prev[i], &prev[i + 1]));
                    i += 2;
                } else {
                    // Odd node: promote unchanged.
                    next.push(prev[i]);
                    i += 1;
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// Whether the tree has no leaves (never true; trees are nonempty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn prove(&self, index: usize) -> InclusionProof {
        assert!(index < self.len(), "leaf index out of bounds");
        let mut steps = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = if idx.is_multiple_of(2) { idx + 1 } else { idx - 1 };
            if sibling_idx < level.len() {
                steps.push(ProofStep {
                    sibling: level[sibling_idx],
                    sibling_on_left: sibling_idx < idx,
                });
            }
            idx /= 2;
        }
        InclusionProof { steps }
    }

    /// Produces a position-bound inclusion proof for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn prove_indexed(&self, index: usize) -> IndexedProof {
        assert!(index < self.len(), "leaf index out of bounds");
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] { // hc-lint: allow(panic-index) a tree always has at least a leaf level plus the root level
            let sibling_idx = if idx.is_multiple_of(2) { idx + 1 } else { idx - 1 };
            if sibling_idx < level.len() {
                siblings.push(level[sibling_idx]); // hc-lint: allow(panic-index) bounds-checked on the line above
            }
            idx /= 2;
        }
        IndexedProof {
            index: index as u64,
            leaf_count: self.len() as u64,
            siblings,
        }
    }
}

/// Verifies a position-bound proof: `leaf` must sit at `proof.index` in a
/// tree of `proof.leaf_count` leaves whose root is `root`. Directions are
/// recomputed from the index and level widths (odd tails promote), so a
/// proof cannot be replayed for a different position.
pub fn verify_indexed(leaf: Digest, proof: &IndexedProof, root: &Digest) -> bool {
    if proof.index >= proof.leaf_count || proof.leaf_count == 0 {
        return false;
    }
    let mut running = leaf;
    let mut idx = proof.index;
    let mut width = proof.leaf_count;
    let mut steps = proof.siblings.iter();
    while width > 1 {
        if idx.is_multiple_of(2) {
            if idx + 1 < width {
                let Some(sibling) = steps.next() else { return false };
                running = node_hash(&running, sibling);
            }
            // Odd tail: the node promotes unchanged, no sibling consumed.
        } else {
            let Some(sibling) = steps.next() else { return false };
            running = node_hash(sibling, &running);
        }
        idx /= 2;
        width = width.div_ceil(2);
    }
    steps.next().is_none() && running == *root
}

/// Verifies that `leaf_data` at some position hashes up to `root` via `proof`.
pub fn verify_inclusion(leaf_data: &[u8], proof: &InclusionProof, root: &Digest) -> bool {
    verify_inclusion_hash(leaf_hash(leaf_data), proof, root)
}

/// Verifies inclusion given an already-computed leaf hash.
pub fn verify_inclusion_hash(leaf: Digest, proof: &InclusionProof, root: &Digest) -> bool {
    let mut running = leaf;
    for step in &proof.steps {
        running = if step.sibling_on_left {
            node_hash(&step.sibling, &running)
        } else {
            node_hash(&running, &step.sibling)
        };
    }
    running == *root
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::from_leaves([b"only"]);
        assert_eq!(t.root(), leaf_hash(b"only"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_panics() {
        let _ = MerkleTree::from_leaves(Vec::<Vec<u8>>::new());
    }

    #[test]
    fn proofs_verify_for_all_leaves() {
        let leaves: Vec<Vec<u8>> = (0..13u8).map(|i| vec![i; 4]).collect();
        let t = MerkleTree::from_leaves(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = t.prove(i);
            assert!(verify_inclusion(leaf, &proof, &t.root()), "leaf {i}");
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf() {
        let t = MerkleTree::from_leaves([b"a".as_ref(), b"b".as_ref(), b"c".as_ref()]);
        let proof = t.prove(0);
        assert!(!verify_inclusion(b"b", &proof, &t.root()));
    }

    #[test]
    fn proof_fails_against_wrong_root() {
        let t1 = MerkleTree::from_leaves([b"a".as_ref(), b"b".as_ref()]);
        let t2 = MerkleTree::from_leaves([b"a".as_ref(), b"c".as_ref()]);
        let proof = t1.prove(0);
        assert!(!verify_inclusion(b"a", &proof, &t2.root()));
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A 64-byte leaf that happens to be two digests must not hash the
        // same as the interior node over those digests.
        let a = leaf_hash(b"a");
        let b = leaf_hash(b"b");
        let mut concat = Vec::new();
        concat.extend_from_slice(a.as_bytes());
        concat.extend_from_slice(b.as_bytes());
        assert_ne!(leaf_hash(&concat), node_hash(&a, &b));
    }

    #[test]
    fn order_matters() {
        let t1 = MerkleTree::from_leaves([b"a".as_ref(), b"b".as_ref()]);
        let t2 = MerkleTree::from_leaves([b"b".as_ref(), b"a".as_ref()]);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn indexed_proofs_verify_for_all_leaves() {
        for n in 1..=17usize {
            let leaves: Vec<Vec<u8>> = (0..n as u8).map(|i| vec![i; 3]).collect();
            let t = MerkleTree::from_leaves(&leaves);
            for (i, leaf) in leaves.iter().enumerate() {
                let proof = t.prove_indexed(i);
                assert!(
                    verify_indexed(leaf_hash(leaf), &proof, &t.root()),
                    "n={n} leaf {i}"
                );
            }
        }
    }

    #[test]
    fn indexed_proof_rejects_wrong_position() {
        let leaves: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i]).collect();
        let t = MerkleTree::from_leaves(&leaves);
        let mut proof = t.prove_indexed(3);
        proof.index = 4; // claim a different position with the same path
        assert!(!verify_indexed(leaf_hash(&leaves[3]), &proof, &t.root()));
        let mut proof = t.prove_indexed(3);
        proof.leaf_count = 9; // lie about the tree size
        assert!(!verify_indexed(leaf_hash(&leaves[3]), &proof, &t.root()));
    }

    #[test]
    fn indexed_proof_rejects_tampered_siblings_and_bounds() {
        let leaves: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i]).collect();
        let t = MerkleTree::from_leaves(&leaves);
        let mut proof = t.prove_indexed(2);
        proof.siblings[0] = leaf_hash(b"evil");
        assert!(!verify_indexed(leaf_hash(&leaves[2]), &proof, &t.root()));
        // Truncated and padded paths both fail.
        let mut short = t.prove_indexed(2);
        short.siblings.pop();
        assert!(!verify_indexed(leaf_hash(&leaves[2]), &short, &t.root()));
        let mut long = t.prove_indexed(2);
        long.siblings.push(Digest::ZERO);
        assert!(!verify_indexed(leaf_hash(&leaves[2]), &long, &t.root()));
        // Out-of-range index never verifies.
        let mut oob = t.prove_indexed(2);
        oob.index = 7;
        assert!(!verify_indexed(leaf_hash(&leaves[2]), &oob, &t.root()));
    }

    proptest! {
        #[test]
        fn indexed_inclusion_holds_for_random_trees(
            leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 1..50),
            pick in any::<usize>(),
        ) {
            let t = MerkleTree::from_leaves(&leaves);
            let idx = pick % leaves.len();
            let proof = t.prove_indexed(idx);
            prop_assert!(verify_indexed(leaf_hash(&leaves[idx]), &proof, &t.root()));
            // The same path never verifies at any other index.
            for other in 0..leaves.len() {
                if other != idx {
                    let mut forged = proof.clone();
                    forged.index = other as u64;
                    prop_assert!(!verify_indexed(leaf_hash(&leaves[idx]), &forged, &t.root()));
                }
            }
        }

        #[test]
        fn inclusion_holds_for_random_trees(
            leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..40),
            pick in any::<usize>(),
        ) {
            let t = MerkleTree::from_leaves(&leaves);
            let idx = pick % leaves.len();
            let proof = t.prove(idx);
            prop_assert!(verify_inclusion(&leaves[idx], &proof, &t.root()));
        }

        #[test]
        fn changing_any_leaf_changes_root(
            leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..8), 2..20),
            pick in any::<usize>(),
        ) {
            let t = MerkleTree::from_leaves(&leaves);
            let idx = pick % leaves.len();
            let mut mutated = leaves.clone();
            mutated[idx].push(0xff);
            let t2 = MerkleTree::from_leaves(&mutated);
            prop_assert_ne!(t.root(), t2.root());
        }
    }
}
