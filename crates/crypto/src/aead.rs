//! Authenticated encryption: ChaCha20 encrypt-then-MAC with HMAC-SHA-256.
//!
//! This is the concrete realization of the paper's §IV-B1 design: data is
//! "encrypted with a well-established shared key" and integrity-protected
//! with HMACs. The MAC covers the nonce, the associated data (e.g. the
//! record's routing metadata) and the ciphertext, so any tampering —
//! including replaying a ciphertext under different metadata — is detected.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::chacha20::{self, Nonce};
use crate::hmac;
use crate::sha256::Digest;

/// A 256-bit shared secret key.
///
/// The debug representation never prints key material.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey([u8; 32]);

impl SecretKey {
    /// Wraps raw key bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        SecretKey(bytes)
    }

    /// Generates a fresh random key from `rng`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 32];
        rng.fill(&mut bytes);
        SecretKey(bytes)
    }

    /// Returns the raw key bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Derives a labelled subkey (e.g. separate encryption and MAC keys).
    pub fn derive(&self, label: &[u8]) -> SecretKey {
        SecretKey(hmac::derive_key(&self.0, label))
    }
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey(..)")
    }
}

/// An encrypted, integrity-protected payload.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Sealed {
    /// Cipher nonce (public).
    pub nonce: Nonce,
    /// ChaCha20 ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA-256 over nonce ‖ aad ‖ ciphertext.
    pub tag: Digest,
}

impl Sealed {
    /// Total wire size in bytes.
    pub fn wire_len(&self) -> usize {
        12 + self.ciphertext.len() + 32
    }
}

/// Error returned when opening a sealed payload fails authentication.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpenError;

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("authentication tag mismatch")
    }
}

impl std::error::Error for OpenError {}

fn mac_input(nonce: &Nonce, aad: &[u8], ciphertext: &[u8]) -> Vec<u8> {
    let mut input = Vec::with_capacity(12 + 8 + aad.len() + ciphertext.len());
    input.extend_from_slice(&nonce.0);
    input.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    input.extend_from_slice(aad);
    input.extend_from_slice(ciphertext);
    input
}

/// Seals `plaintext` under `key` with a deterministic per-key nonce counter
/// supplied by the caller via [`seal_with_nonce`], or a nonce derived from
/// the plaintext+aad hash here.
///
/// Deriving the nonce from a hash keeps the API misuse-resistant in this
/// deterministic simulation context (the same (key, plaintext, aad) triple
/// yields the same ciphertext; distinct messages get distinct nonces).
pub fn seal(key: &SecretKey, plaintext: &[u8], aad: &[u8]) -> Sealed {
    let h = crate::sha256::hash_parts(&[key.as_bytes(), plaintext, aad]);
    let mut nonce = Nonce::default();
    nonce.0.copy_from_slice(&h.as_bytes()[..12]);
    seal_with_nonce(key, nonce, plaintext, aad)
}

/// Seals `plaintext` with an explicit nonce.
///
/// The caller is responsible for never reusing a nonce under the same key.
pub fn seal_with_nonce(key: &SecretKey, nonce: Nonce, plaintext: &[u8], aad: &[u8]) -> Sealed {
    let enc_key = key.derive(b"enc");
    let mac_key = key.derive(b"mac");
    let ciphertext = chacha20::encrypt(enc_key.as_bytes(), &nonce, plaintext);
    let tag = hmac::hmac(mac_key.as_bytes(), &mac_input(&nonce, aad, &ciphertext));
    Sealed {
        nonce,
        ciphertext,
        tag,
    }
}

/// Opens a sealed payload, verifying integrity before decrypting.
///
/// # Errors
///
/// Returns [`OpenError`] if the tag does not verify (wrong key, tampered
/// ciphertext, or mismatched associated data).
pub fn open(key: &SecretKey, sealed: &Sealed, aad: &[u8]) -> Result<Vec<u8>, OpenError> {
    let enc_key = key.derive(b"enc");
    let mac_key = key.derive(b"mac");
    let expected = hmac::hmac(
        mac_key.as_bytes(),
        &mac_input(&sealed.nonce, aad, &sealed.ciphertext),
    );
    if !hc_common::hex::constant_time_eq(expected.as_bytes(), sealed.tag.as_bytes()) {
        return Err(OpenError);
    }
    Ok(chacha20::decrypt(
        enc_key.as_bytes(),
        &sealed.nonce,
        &sealed.ciphertext,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key() -> SecretKey {
        SecretKey::from_bytes([9u8; 32])
    }

    #[test]
    fn round_trip() {
        let sealed = seal(&key(), b"hba1c=6.5", b"patient-42");
        assert_eq!(open(&key(), &sealed, b"patient-42").unwrap(), b"hba1c=6.5");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let mut sealed = seal(&key(), b"data", b"");
        sealed.ciphertext[0] ^= 1;
        assert_eq!(open(&key(), &sealed, b""), Err(OpenError));
    }

    #[test]
    fn wrong_aad_rejected() {
        let sealed = seal(&key(), b"data", b"ctx-a");
        assert_eq!(open(&key(), &sealed, b"ctx-b"), Err(OpenError));
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = seal(&key(), b"data", b"");
        let other = SecretKey::from_bytes([8u8; 32]);
        assert_eq!(open(&other, &sealed, b""), Err(OpenError));
    }

    #[test]
    fn debug_hides_key_material() {
        assert_eq!(format!("{:?}", key()), "SecretKey(..)");
    }

    #[test]
    fn wire_len_accounts_overhead() {
        let sealed = seal(&key(), &[0u8; 100], b"");
        assert_eq!(sealed.wire_len(), 100 + 44);
    }

    #[test]
    fn derive_produces_distinct_subkeys() {
        assert_ne!(key().derive(b"a"), key().derive(b"b"));
    }

    proptest! {
        #[test]
        fn any_payload_round_trips(
            data in proptest::collection::vec(any::<u8>(), 0..2048),
            aad in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let sealed = seal(&key(), &data, &aad);
            prop_assert_eq!(open(&key(), &sealed, &aad).unwrap(), data);
        }

        #[test]
        fn bit_flips_always_detected(
            data in proptest::collection::vec(any::<u8>(), 1..256),
            flip_byte in 0usize..256,
            flip_bit in 0u8..8,
        ) {
            let mut sealed = seal(&key(), &data, b"aad");
            let idx = flip_byte % sealed.ciphertext.len();
            sealed.ciphertext[idx] ^= 1 << flip_bit;
            prop_assert_eq!(open(&key(), &sealed, b"aad"), Err(OpenError));
        }
    }
}
