//! ChaCha20 stream cipher (RFC 8439), the platform's shared-key cipher.
//!
//! The paper's ingestion path encrypts "with a well-established shared key
//! (public key encryption is too expensive to maintain the scalability of
//! the system)" (§IV-B1). ChaCha20 is that shared-key cipher here; it is
//! validated against the RFC 8439 §2.3.2 block-function and §2.4.2
//! encryption test vectors.

const CONSTANTS: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// A 96-bit nonce. Must never repeat under the same key.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Nonce(pub [u8; 12]);

impl Nonce {
    /// Builds a nonce from a 64-bit counter (upper 32 bits zero).
    ///
    /// Suitable when a single writer owns the key and increments the
    /// counter for every message.
    pub fn from_counter(counter: u64) -> Self {
        let mut n = [0u8; 12];
        n[4..].copy_from_slice(&counter.to_le_bytes());
        Nonce(n)
    }
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block.
pub fn block(key: &[u8; 32], counter: u32, nonce: &Nonce) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes([
            key[i * 4],
            key[i * 4 + 1],
            key[i * 4 + 2],
            key[i * 4 + 3],
        ]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce.0[i * 4],
            nonce.0[i * 4 + 1],
            nonce.0[i * 4 + 2],
            nonce.0[i * 4 + 3],
        ]);
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR keystream; its own inverse).
///
/// `initial_counter` is normally `1` for payload encryption, reserving
/// counter `0` for MAC-key derivation as in RFC 8439.
pub fn apply_keystream(key: &[u8; 32], nonce: &Nonce, initial_counter: u32, data: &mut [u8]) {
    for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
        let ks = block(key, initial_counter.wrapping_add(block_idx as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Encrypts `plaintext`, returning a fresh ciphertext vector.
pub fn encrypt(key: &[u8; 32], nonce: &Nonce, plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    apply_keystream(key, nonce, 1, &mut out);
    out
}

/// Decrypts `ciphertext`, returning the plaintext.
pub fn decrypt(key: &[u8; 32], nonce: &Nonce, ciphertext: &[u8]) -> Vec<u8> {
    encrypt(key, nonce, ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rfc_key() -> [u8; 32] {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        key
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key = rfc_key();
        let nonce = Nonce([0, 0, 0, 0x09, 0, 0, 0, 0x4a, 0, 0, 0, 0]);
        let ks = block(&key, 1, &nonce);
        let expected = "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
                        d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e";
        assert_eq!(hc_common::hex::encode(&ks), expected);
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let key = rfc_key();
        let nonce = Nonce([0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0]);
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, &nonce, plaintext);
        let expected_prefix = "6e2e359a2568f98041ba0728dd0d6981";
        assert!(hc_common::hex::encode(&ct).starts_with(expected_prefix));
        assert_eq!(
            hc_common::hex::encode(&ct[ct.len() - 16..]),
            "0bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn nonce_from_counter_is_unique() {
        assert_ne!(Nonce::from_counter(1), Nonce::from_counter(2));
    }

    proptest! {
        #[test]
        fn decrypt_inverts_encrypt(
            key in proptest::array::uniform32(any::<u8>()),
            ctr in any::<u64>(),
            data in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let nonce = Nonce::from_counter(ctr);
            let ct = encrypt(&key, &nonce, &data);
            prop_assert_eq!(decrypt(&key, &nonce, &ct), data);
        }

        #[test]
        fn ciphertext_differs_from_plaintext(
            key in proptest::array::uniform32(any::<u8>()),
            data in proptest::collection::vec(any::<u8>(), 16..256),
        ) {
            let nonce = Nonce::from_counter(7);
            let ct = encrypt(&key, &nonce, &data);
            prop_assert_ne!(ct, data);
        }

        #[test]
        fn different_nonces_different_ciphertexts(
            key in proptest::array::uniform32(any::<u8>()),
            data in proptest::collection::vec(any::<u8>(), 16..128),
        ) {
            let c1 = encrypt(&key, &Nonce::from_counter(1), &data);
            let c2 = encrypt(&key, &Nonce::from_counter(2), &data);
            prop_assert_ne!(c1, c2);
        }
    }
}
