//! From-scratch cryptographic substrate for the trusted healthcare cloud.
//!
//! The paper (§IV-B) builds its secure data management on: shared-key
//! encryption over secure channels ("public key encryption is too expensive
//! to maintain the scalability of the system"), HMACs for integrity,
//! Merkle-based and *leakage-free redactable* signatures for sharing parts
//! of HCLS records, digitally signed VM/container images, and a
//! single-tenant key management system with crypto-shredding-style secure
//! deletion. This crate implements each of those building blocks from
//! scratch so the platform has no external, untrusted crypto dependency —
//! mirroring the paper's "container authored in a trusted environment with
//! trusted libraries" argument:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (validated against NIST vectors).
//! * [`hmac`] — RFC 2104 HMAC-SHA-256 (validated against RFC 4231 vectors).
//! * [`chacha20`] — RFC 8439 ChaCha20 stream cipher (validated against the
//!   RFC test vector).
//! * [`aead`] — encrypt-then-MAC authenticated encryption combining
//!   ChaCha20 with HMAC-SHA-256, the paper's recommended shared-key +
//!   integrity design.
//! * [`merkle`] — Merkle hash trees with inclusion proofs.
//! * [`ots`] — Lamport one-time signatures and a Merkle many-time signer,
//!   used for image signing and TPM quotes (hash-based, so the whole
//!   platform rests on one primitive).
//! * [`redactable`] — leakage-free redactable signatures in the style of
//!   Kundu et al.: share a subset of a signed record without revealing, or
//!   breaking verification of, the redacted parts.
//! * [`kms`] — single-tenant key management with envelope encryption, key
//!   rotation and crypto-shredding (encryption-based record deletion for
//!   GDPR right-to-forget).
//!
//! # Examples
//!
//! ```
//! use hc_crypto::aead::{SecretKey, seal, open};
//!
//! let key = SecretKey::from_bytes([7u8; 32]);
//! let sealed = seal(&key, b"phi record", b"context");
//! let plain = open(&key, &sealed, b"context").unwrap();
//! assert_eq!(plain, b"phi record");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod hmac;
pub mod kms;
pub mod merkle;
pub mod ots;
pub mod redactable;
pub mod sha256;

pub use sha256::Digest;
