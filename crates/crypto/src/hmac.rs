//! HMAC-SHA-256 (RFC 2104), the paper's recommended integrity mechanism.
//!
//! §IV-B1: "we recommend using HMACs instead of digital signatures unless
//! the digital signatures are part of the encryption process". Validated
//! against RFC 4231 test vectors.

use crate::sha256::{Digest, Sha256};

const BLOCK_LEN: usize = 64;

/// A 256-bit message authentication tag.
pub type Tag = Digest;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block are first hashed, per RFC 2104.
///
/// # Examples
///
/// ```
/// let tag = hc_crypto::hmac::hmac(b"key", b"message");
/// assert!(hc_crypto::hmac::verify(b"key", b"message", &tag));
/// ```
pub fn hmac(key: &[u8], message: &[u8]) -> Tag {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let hashed = crate::sha256::hash(key);
        key_block[..32].copy_from_slice(hashed.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Computes an HMAC over multiple message parts without concatenating.
pub fn hmac_parts(key: &[u8], parts: &[&[u8]]) -> Tag {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let hashed = crate::sha256::hash(key);
        key_block[..32].copy_from_slice(hashed.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    for p in parts {
        inner.update(p);
    }
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Verifies a tag in constant time.
pub fn verify(key: &[u8], message: &[u8], tag: &Tag) -> bool {
    let expected = hmac(key, message);
    hc_common::hex::constant_time_eq(expected.as_bytes(), tag.as_bytes())
}

/// Derives a subkey from a parent key and a context label (HKDF-like
/// expand-only construction: `HMAC(parent, label || counter)`).
pub fn derive_key(parent: &[u8], label: &[u8]) -> [u8; 32] {
    let tag = hmac_parts(parent, &[label, &[1u8]]);
    *tag.as_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2: key "Jefe".
    #[test]
    fn rfc4231_case_2() {
        let tag = hmac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: 131-byte key (forces key hashing).
    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_rejects_tampering() {
        let tag = hmac(b"k", b"m");
        assert!(verify(b"k", b"m", &tag));
        assert!(!verify(b"k", b"m2", &tag));
        assert!(!verify(b"k2", b"m", &tag));
    }

    #[test]
    fn derive_key_separates_labels() {
        let a = derive_key(b"master", b"storage");
        let b = derive_key(b"master", b"transport");
        assert_ne!(a, b);
    }

    proptest! {
        #[test]
        fn parts_equals_concat(
            key in proptest::collection::vec(any::<u8>(), 0..100),
            a in proptest::collection::vec(any::<u8>(), 0..100),
            b in proptest::collection::vec(any::<u8>(), 0..100),
        ) {
            let concat: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
            prop_assert_eq!(hmac(&key, &concat), hmac_parts(&key, &[&a, &b]));
        }

        #[test]
        fn different_keys_give_different_tags(
            k1 in proptest::collection::vec(any::<u8>(), 1..64),
            k2 in proptest::collection::vec(any::<u8>(), 1..64),
            msg in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            prop_assume!(k1 != k2);
            prop_assert_ne!(hmac(&k1, &msg), hmac(&k2, &msg));
        }
    }
}
