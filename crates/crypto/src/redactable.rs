//! Leakage-free redactable signatures (Kundu-style).
//!
//! §IV-B1: "Often HCLS data is shared in parts and not as a whole …
//! existing systems make use of Merkle hash techniques … However, they leak
//! information, and leakage-free redactable and sanitizable signatures
//! should be used for such data sharing."
//!
//! The construction here follows the salted-commitment approach of Kundu,
//! Atallah and Bertino (CODASPY 2012): each field of a record is committed
//! as `H(salt ‖ field)` with an independent random salt; the signer signs
//! the Merkle root of the commitments with a hash-based signature. A holder
//! can *redact* any subset of fields by replacing them with their bare
//! commitments. Verification still succeeds on the disclosed fields, and —
//! because the salt makes each commitment hiding — the redacted commitments
//! leak nothing about the removed content (unlike plain Merkle hashes of
//! unsalted fields, which are vulnerable to dictionary attacks on
//! low-entropy PHI values such as diagnoses).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::merkle::{self, MerkleTree};
use crate::ots::{self, MerklePublicKey, MerkleSignature, MerkleSigner};
use crate::sha256::{self, Digest};

/// One field of a signed record: either disclosed or redacted.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Field {
    /// The field value and the salt proving its commitment.
    Disclosed {
        /// Field name (part of the commitment, so names cannot be swapped).
        name: String,
        /// Field content.
        value: Vec<u8>,
        /// The commitment salt.
        salt: [u8; 32],
    },
    /// Only the hiding commitment remains.
    Redacted {
        /// The salted commitment of the removed field.
        commitment: Digest,
    },
}

impl Field {
    fn commitment(&self) -> Digest {
        match self {
            Field::Disclosed { name, value, salt } => commit(name, value, salt),
            Field::Redacted { commitment } => *commitment,
        }
    }

    /// Whether this field is still disclosed.
    pub fn is_disclosed(&self) -> bool {
        matches!(self, Field::Disclosed { .. })
    }
}

fn commit(name: &str, value: &[u8], salt: &[u8; 32]) -> Digest {
    sha256::hash_parts(&[salt, &(name.len() as u64).to_le_bytes(), name.as_bytes(), value])
}

/// A record signed with a redactable signature.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RedactableDocument {
    /// The fields, disclosed or redacted, in signing order.
    pub fields: Vec<Field>,
    /// Hash-based signature over the commitment Merkle root.
    pub signature: MerkleSignature,
}

/// Errors from signing or verifying redactable documents.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RedactableError {
    /// The underlying one-time signer ran out of keys.
    SignerExhausted,
    /// A document was constructed with no fields.
    EmptyDocument,
    /// A redaction index was out of bounds.
    FieldOutOfBounds {
        /// The offending index.
        index: usize,
    },
}

impl std::fmt::Display for RedactableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RedactableError::SignerExhausted => f.write_str("signing keys exhausted"),
            RedactableError::EmptyDocument => f.write_str("document has no fields"),
            RedactableError::FieldOutOfBounds { index } => {
                write!(f, "field index {index} out of bounds")
            }
        }
    }
}

impl std::error::Error for RedactableError {}

impl RedactableDocument {
    /// Signs `fields` (name, value pairs), producing a fully disclosed
    /// document.
    ///
    /// # Errors
    ///
    /// Returns [`RedactableError::EmptyDocument`] for an empty field list
    /// and [`RedactableError::SignerExhausted`] if `signer` has no one-time
    /// keys left.
    pub fn sign<R: Rng + ?Sized>(
        fields: &[(&str, &[u8])],
        signer: &mut MerkleSigner,
        rng: &mut R,
    ) -> Result<Self, RedactableError> {
        if fields.is_empty() {
            return Err(RedactableError::EmptyDocument);
        }
        let mut out_fields = Vec::with_capacity(fields.len());
        for (name, value) in fields {
            let mut salt = [0u8; 32];
            rng.fill(&mut salt);
            out_fields.push(Field::Disclosed {
                name: (*name).to_owned(),
                value: value.to_vec(),
                salt,
            });
        }
        let root = Self::commitment_root(&out_fields);
        let signature = signer
            .sign(root.as_bytes())
            .map_err(|_| RedactableError::SignerExhausted)?;
        Ok(RedactableDocument {
            fields: out_fields,
            signature,
        })
    }

    fn commitment_root(fields: &[Field]) -> Digest {
        let commitments: Vec<Digest> = fields
            .iter()
            .map(|f| merkle::leaf_hash(f.commitment().as_bytes()))
            .collect();
        MerkleTree::from_leaf_hashes(commitments).root()
    }

    /// Redacts the field at `index`, removing its content irrecoverably.
    ///
    /// # Errors
    ///
    /// Returns [`RedactableError::FieldOutOfBounds`] for a bad index.
    /// Redacting an already-redacted field is a no-op.
    pub fn redact(&mut self, index: usize) -> Result<(), RedactableError> {
        let field = self
            .fields
            .get_mut(index)
            .ok_or(RedactableError::FieldOutOfBounds { index })?;
        let commitment = field.commitment();
        *field = Field::Redacted { commitment };
        Ok(())
    }

    /// Redacts every field whose name is **not** in `keep`.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` mirrors [`redact`](Self::redact) for
    /// interface consistency.
    pub fn redact_except(&mut self, keep: &[&str]) -> Result<(), RedactableError> {
        for i in 0..self.fields.len() {
            let retain = match &self.fields[i] {
                Field::Disclosed { name, .. } => keep.contains(&name.as_str()),
                Field::Redacted { .. } => true,
            };
            if !retain {
                self.redact(i)?;
            }
        }
        Ok(())
    }

    /// Verifies the signature over the (possibly redacted) document.
    pub fn verify(&self, public: &MerklePublicKey) -> bool {
        if self.fields.is_empty() {
            return false;
        }
        let root = Self::commitment_root(&self.fields);
        ots::verify_merkle(public, root.as_bytes(), &self.signature)
    }

    /// Returns the disclosed `(name, value)` pairs.
    pub fn disclosed(&self) -> Vec<(&str, &[u8])> {
        self.fields
            .iter()
            .filter_map(|f| match f {
                Field::Disclosed { name, value, .. } => Some((name.as_str(), value.as_slice())),
                Field::Redacted { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MerkleSigner, rand::rngs::StdRng) {
        (
            MerkleSigner::generate(&mut hc_common::rng::seeded(10), 2),
            hc_common::rng::seeded(11),
        )
    }

    fn sample_fields() -> Vec<(&'static str, &'static [u8])> {
        vec![
            ("name", b"Jane Doe".as_ref()),
            ("diagnosis", b"E11.9 type 2 diabetes".as_ref()),
            ("hba1c", b"7.2".as_ref()),
            ("ssn", b"000-11-2222".as_ref()),
        ]
    }

    #[test]
    fn full_document_verifies() {
        let (mut signer, mut rng) = setup();
        let pk = signer.public_key();
        let doc = RedactableDocument::sign(&sample_fields(), &mut signer, &mut rng).unwrap();
        assert!(doc.verify(&pk));
        assert_eq!(doc.disclosed().len(), 4);
    }

    #[test]
    fn redacted_document_still_verifies() {
        let (mut signer, mut rng) = setup();
        let pk = signer.public_key();
        let mut doc = RedactableDocument::sign(&sample_fields(), &mut signer, &mut rng).unwrap();
        doc.redact(0).unwrap(); // drop name
        doc.redact(3).unwrap(); // drop ssn
        assert!(doc.verify(&pk));
        let disclosed = doc.disclosed();
        assert_eq!(disclosed.len(), 2);
        assert!(disclosed.iter().all(|(n, _)| *n != "ssn" && *n != "name"));
    }

    #[test]
    fn redact_except_keeps_only_named() {
        let (mut signer, mut rng) = setup();
        let pk = signer.public_key();
        let mut doc = RedactableDocument::sign(&sample_fields(), &mut signer, &mut rng).unwrap();
        doc.redact_except(&["hba1c"]).unwrap();
        assert!(doc.verify(&pk));
        assert_eq!(doc.disclosed(), vec![("hba1c", b"7.2".as_ref())]);
    }

    #[test]
    fn tampering_with_disclosed_value_breaks_verification() {
        let (mut signer, mut rng) = setup();
        let pk = signer.public_key();
        let mut doc = RedactableDocument::sign(&sample_fields(), &mut signer, &mut rng).unwrap();
        if let Field::Disclosed { value, .. } = &mut doc.fields[2] {
            value[0] = b'9';
        }
        assert!(!doc.verify(&pk));
    }

    #[test]
    fn renaming_a_field_breaks_verification() {
        let (mut signer, mut rng) = setup();
        let pk = signer.public_key();
        let mut doc = RedactableDocument::sign(&sample_fields(), &mut signer, &mut rng).unwrap();
        if let Field::Disclosed { name, .. } = &mut doc.fields[2] {
            *name = "glucose".into();
        }
        assert!(!doc.verify(&pk));
    }

    #[test]
    fn redaction_is_leakage_free() {
        // Two documents identical except in a redacted field must not
        // expose matching commitments (salts differ).
        let (mut signer, mut rng) = setup();
        let doc1 = RedactableDocument::sign(&sample_fields(), &mut signer, &mut rng).unwrap();
        let doc2 = RedactableDocument::sign(&sample_fields(), &mut signer, &mut rng).unwrap();
        let c1 = doc1.fields[1].commitment();
        let c2 = doc2.fields[1].commitment();
        assert_ne!(c1, c2, "salted commitments must differ across signings");
    }

    #[test]
    fn empty_document_rejected() {
        let (mut signer, mut rng) = setup();
        let err = RedactableDocument::sign(&[], &mut signer, &mut rng).unwrap_err();
        assert_eq!(err, RedactableError::EmptyDocument);
    }

    #[test]
    fn out_of_bounds_redaction_errors() {
        let (mut signer, mut rng) = setup();
        let mut doc = RedactableDocument::sign(&sample_fields(), &mut signer, &mut rng).unwrap();
        assert_eq!(
            doc.redact(99),
            Err(RedactableError::FieldOutOfBounds { index: 99 })
        );
    }

    #[test]
    fn double_redaction_is_idempotent() {
        let (mut signer, mut rng) = setup();
        let pk = signer.public_key();
        let mut doc = RedactableDocument::sign(&sample_fields(), &mut signer, &mut rng).unwrap();
        doc.redact(1).unwrap();
        doc.redact(1).unwrap();
        assert!(doc.verify(&pk));
    }
}
