//! SHA-256 (FIPS 180-4), implemented from the specification.
//!
//! Validated in the test suite against the NIST example vectors for
//! `"abc"`, the empty string, the two-block message, and a one-million-`a`
//! message.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as a sentinel (e.g. genesis previous-hash).
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Returns the digest bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Encodes the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        hc_common::hex::encode(&self.0)
    }

    /// Decodes a digest from 64 hex characters.
    ///
    /// # Errors
    ///
    /// Returns an error if the input is not exactly 64 hex digits.
    pub fn from_hex(s: &str) -> Result<Self, hc_common::hex::DecodeHexError> {
        let bytes = hc_common::hex::decode(s)?;
        let arr: [u8; 32] = bytes
            .try_into()
            .map_err(|_| hc_common::hex::DecodeHexError::OddLength)?;
        Ok(Digest(arr))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", &self.to_hex()[..16])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// An incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use hc_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256::default()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let want = 64 - self.buffer_len;
            let take = want.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Consumes the hasher, producing the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding_byte();
        while self.buffer_len != 56 {
            self.update_zero_byte();
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bit_len.to_be_bytes());
        self.buffer[56..64].copy_from_slice(&len_bytes);
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn update_padding_byte(&mut self) {
        self.buffer[self.buffer_len] = 0x80;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    fn update_zero_byte(&mut self) {
        self.buffer[self.buffer_len] = 0;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Hashes `data` in one shot.
///
/// # Examples
///
/// ```
/// let d = hc_crypto::sha256::hash(b"");
/// assert_eq!(
///     d.to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
/// );
/// ```
pub fn hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hashes the concatenation of several byte slices without allocating.
pub fn hash_parts(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hash(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hash(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_two_block() {
        assert_eq!(
            hash(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hash(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn nist_vector_448_bit_plus_one_block_boundary() {
        // Exactly 56 bytes: forces the length into a second padding block.
        let data = vec![b'x'; 56];
        let d1 = hash(&data);
        let mut h = Sha256::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(d1, h.finalize());
    }

    #[test]
    fn digest_hex_round_trip() {
        let d = hash(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
    }

    #[test]
    fn digest_from_hex_rejects_wrong_length() {
        assert!(Digest::from_hex("abcd").is_err());
    }

    #[test]
    fn hash_parts_equals_concat() {
        let whole = hash(b"hello world");
        let parts = hash_parts(&[b"hello", b" ", b"world"]);
        assert_eq!(whole, parts);
    }

    proptest! {
        #[test]
        fn incremental_equals_oneshot(
            data in proptest::collection::vec(any::<u8>(), 0..1024),
            split in 0usize..1024,
        ) {
            let split = split.min(data.len());
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), hash(&data));
        }

        #[test]
        fn distinct_inputs_distinct_digests(
            a in proptest::collection::vec(any::<u8>(), 0..64),
            b in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            prop_assume!(a != b);
            prop_assert_ne!(hash(&a), hash(&b));
        }
    }
}
