//! KMS audit-log ordering across a full key lifecycle.
//!
//! The posture scanner (`hc-posture`) reconstructs grant-usage and
//! rotation-age state purely from this log, so its event ordering and
//! coverage are load-bearing: every lifecycle transition must append
//! exactly one event, in call order, and denied attempts must be
//! recorded without leaking a `Used` entry.

use hc_common::id::{KeyId, Principal};
use hc_crypto::kms::{KeyManagementSystem, KmsAuditEvent, KmsError};

fn svc(name: &str) -> Principal {
    Principal::Service(name.to_owned())
}

#[test]
fn lifecycle_events_append_in_call_order() {
    let mut rng = hc_common::rng::seeded(7);
    let kms = KeyManagementSystem::new(&mut rng);
    let ingest = svc("ingest");
    let export = svc("export");
    let intruder = svc("intruder");

    let key = kms.create_key(&mut rng, std::slice::from_ref(&ingest));

    // Authorized seal, denied seal, grant, then the grantee's open.
    let sealed = kms.seal(&ingest, key, b"phi-bytes", b"aad").expect("authorized");
    let denied = kms.seal(&intruder, key, b"phi-bytes", b"aad");
    assert!(matches!(denied, Err(KmsError::Unauthorized { .. })));
    kms.grant(key, export.clone()).expect("key exists");
    let opened = kms.open(&export, key, &sealed, b"aad").expect("granted");
    assert_eq!(opened, b"phi-bytes");

    let generation = kms.rotate(&mut rng, key).expect("key exists");
    assert_eq!(generation, 2);
    kms.shred(key);

    assert_eq!(
        kms.audit_log(),
        vec![
            KmsAuditEvent::Created(key),
            KmsAuditEvent::Used(key, ingest),
            KmsAuditEvent::Denied(key, intruder),
            KmsAuditEvent::Used(key, export),
            KmsAuditEvent::Rotated(key, 2),
            KmsAuditEvent::Shredded(key),
        ],
    );
}

#[test]
fn denied_attempts_never_log_a_use() {
    let mut rng = hc_common::rng::seeded(8);
    let kms = KeyManagementSystem::new(&mut rng);
    let owner = svc("owner");
    let outsider = svc("outsider");
    let key = kms.create_key(&mut rng, std::slice::from_ref(&owner));

    for _ in 0..3 {
        assert!(kms.seal(&outsider, key, b"x", b"aad").is_err());
    }
    let log = kms.audit_log();
    let denials = log
        .iter()
        .filter(|e| matches!(e, KmsAuditEvent::Denied(k, p) if *k == key && *p == outsider))
        .count();
    assert_eq!(denials, 3);
    assert!(
        !log.iter().any(|e| matches!(e, KmsAuditEvent::Used(..))),
        "no use may be recorded for a denied principal"
    );
}

#[test]
fn shred_is_terminal_and_idempotent() {
    let mut rng = hc_common::rng::seeded(9);
    let kms = KeyManagementSystem::new(&mut rng);
    let owner = svc("owner");
    let key = kms.create_key(&mut rng, std::slice::from_ref(&owner));
    let sealed = kms.seal(&owner, key, b"phi", b"aad").expect("live key");

    kms.shred(key);
    assert!(!kms.contains(key));

    // Post-shred use fails as unknown-key — with no Denied event, since
    // there is no grant list left to check against…
    assert!(matches!(
        kms.open(&owner, key, &sealed, b"aad"),
        Err(KmsError::UnknownKey(k)) if k == key
    ));
    // …and a second shred appends nothing (idempotent).
    kms.shred(key);

    let shreds = kms
        .audit_log()
        .iter()
        .filter(|e| matches!(e, KmsAuditEvent::Shredded(k) if *k == key))
        .count();
    assert_eq!(shreds, 1);
    let log = kms.audit_log();
    assert!(matches!(log.last(), Some(KmsAuditEvent::Shredded(_))));
}

#[test]
fn rotation_bumps_generation_and_fences_old_ciphertext() {
    let mut rng = hc_common::rng::seeded(10);
    let kms = KeyManagementSystem::new(&mut rng);
    let owner = svc("owner");
    let key = kms.create_key(&mut rng, std::slice::from_ref(&owner));

    let old = kms.seal(&owner, key, b"generation-1", b"aad").expect("live key");
    assert_eq!(kms.rotate(&mut rng, key), Ok(2));
    assert_eq!(kms.rotate(&mut rng, key), Ok(3));

    // Old-generation ciphertext no longer opens (the DEK was replaced);
    // new seals round-trip under the current generation.
    assert!(matches!(
        kms.open(&owner, key, &old, b"aad"),
        Err(KmsError::IntegrityFailure)
    ));
    let fresh = kms.seal(&owner, key, b"generation-3", b"aad").expect("live key");
    assert_eq!(kms.open(&owner, key, &fresh, b"aad").expect("current gen"), b"generation-3");

    // Rotating an unknown key is an error, not a logged event.
    let ghost = KeyId::from_raw(0xdead);
    assert!(matches!(kms.rotate(&mut rng, ghost), Err(KmsError::UnknownKey(k)) if k == ghost));
    let rotations: Vec<u32> = kms
        .audit_log()
        .iter()
        .filter_map(|e| match e {
            KmsAuditEvent::Rotated(k, generation) if *k == key => Some(*generation),
            _ => None,
        })
        .collect();
    assert_eq!(rotations, vec![2, 3]);
}
