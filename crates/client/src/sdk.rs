//! The enhanced client.
//!
//! A client machine holding: a local cache in front of the remote cloud
//! server, a client-side encryption key (data leaves the device sealed),
//! a client-side anonymizer, and an offline queue — operations performed
//! while disconnected are replayed on reconnect.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use hc_cache::policy::{CachePolicy, LruCache};
use hc_common::clock::{SimClock, SimDuration};
use hc_crypto::aead::{self, SecretKey, Sealed};
use hc_fhir::bundle::Bundle;
use hc_privacy::phi::{deidentify_bundle, DeidConfig, Deidentified};

/// A simulated remote cloud store shared by clients and servers.
pub type RemoteStore = Arc<Mutex<HashMap<String, Vec<u8>>>>;

/// Where a read was served from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Served {
    /// From the client's local cache.
    ClientCache,
    /// From the remote server.
    Remote,
    /// The key does not exist.
    Absent,
}

/// The outcome of a client read.
#[derive(Clone, Debug)]
pub struct ClientRead {
    /// The bytes, if found.
    pub value: Option<Vec<u8>>,
    /// Where they came from.
    pub served: Served,
    /// Simulated latency charged.
    pub latency: SimDuration,
}

/// Errors from client operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ClientError {
    /// The client is offline and the operation needs the server now.
    Offline,
    /// Decryption of a fetched record failed.
    DecryptFailed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Offline => f.write_str("client is offline"),
            ClientError::DecryptFailed => f.write_str("client-side decryption failed"),
        }
    }
}

impl std::error::Error for ClientError {}

#[derive(Clone, Debug)]
enum Pending {
    Put { key: String, value: Vec<u8> },
    Delete { key: String },
}

/// The enhanced client.
pub struct EnhancedClient {
    clock: SimClock,
    cache: LruCache<String, Vec<u8>>,
    remote: RemoteStore,
    key: SecretKey,
    deid: DeidConfig,
    offline: bool,
    queue: Vec<Pending>,
    /// Latency of a local cache hit.
    pub local_latency: SimDuration,
    /// Latency of a server round trip.
    pub remote_latency: SimDuration,
}

impl std::fmt::Debug for EnhancedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnhancedClient")
            .field("offline", &self.offline)
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl EnhancedClient {
    /// Creates a client over a shared remote store.
    pub fn new(clock: SimClock, remote: RemoteStore, key: SecretKey, cache_capacity: usize) -> Self {
        EnhancedClient {
            clock,
            cache: LruCache::new(cache_capacity.max(1)),
            remote,
            key,
            deid: DeidConfig::default(),
            offline: false,
            queue: Vec::new(),
            local_latency: SimDuration::from_micros(5),
            remote_latency: SimDuration::from_millis(50),
        }
    }

    /// Whether the client is currently disconnected.
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// Disconnects the client; subsequent writes queue locally.
    pub fn go_offline(&mut self) {
        self.offline = true;
    }

    /// Reconnects, replaying every queued operation against the server.
    /// Returns how many operations were replayed.
    pub fn go_online(&mut self) -> usize {
        self.offline = false;
        let queued = std::mem::take(&mut self.queue);
        let count = queued.len();
        for op in queued {
            match op {
                Pending::Put { key, value } => {
                    self.clock.advance(self.remote_latency);
                    self.remote.lock().insert(key, value);
                }
                Pending::Delete { key } => {
                    self.clock.advance(self.remote_latency);
                    self.remote.lock().remove(&key);
                }
            }
        }
        count
    }

    /// Reads a key: local cache first, then (if online) the server.
    pub fn get(&mut self, key: &str) -> Result<ClientRead, ClientError> {
        if let Some(value) = self.cache.get(&key.to_owned()) {
            self.clock.advance(self.local_latency);
            return Ok(ClientRead {
                value: Some(value),
                served: Served::ClientCache,
                latency: self.local_latency,
            });
        }
        if self.offline {
            return Err(ClientError::Offline);
        }
        self.clock.advance(self.remote_latency);
        let value = self.remote.lock().get(key).cloned();
        if let Some(v) = &value {
            self.cache.put(key.to_owned(), v.clone());
        }
        Ok(ClientRead {
            served: if value.is_some() {
                Served::Remote
            } else {
                Served::Absent
            },
            value,
            latency: self.remote_latency,
        })
    }

    /// Writes raw bytes (queued while offline). The local cache is
    /// updated immediately so disconnected reads see the client's own
    /// writes.
    pub fn put(&mut self, key: &str, value: Vec<u8>) {
        self.cache.put(key.to_owned(), value.clone());
        if self.offline {
            self.queue.push(Pending::Put {
                key: key.to_owned(),
                value,
            });
        } else {
            self.clock.advance(self.remote_latency);
            self.remote.lock().insert(key.to_owned(), value);
        }
    }

    /// Deletes a key everywhere (queued while offline).
    pub fn delete(&mut self, key: &str) {
        self.cache.invalidate(&key.to_owned());
        if self.offline {
            self.queue.push(Pending::Delete {
                key: key.to_owned(),
            });
        } else {
            self.clock.advance(self.remote_latency);
            self.remote.lock().remove(key);
        }
    }

    /// Client-side encryption: seals `plaintext` before it leaves the
    /// device, then stores the envelope under `key_name`.
    pub fn put_encrypted(&mut self, key_name: &str, plaintext: &[u8]) {
        let sealed = aead::seal(&self.key, plaintext, key_name.as_bytes());
        let bytes = serde_json::to_vec(&sealed).expect("sealed serializes");
        self.put(key_name, bytes);
    }

    /// Fetches and opens a client-encrypted record.
    ///
    /// # Errors
    ///
    /// Fails when offline with a cold cache, or when the envelope fails
    /// authentication (tampered server copy).
    pub fn get_encrypted(&mut self, key_name: &str) -> Result<Option<Vec<u8>>, ClientError> {
        let read = self.get(key_name)?;
        let Some(bytes) = read.value else {
            return Ok(None);
        };
        let sealed: Sealed =
            serde_json::from_slice(&bytes).map_err(|_| ClientError::DecryptFailed)?;
        let plain = aead::open(&self.key, &sealed, key_name.as_bytes())
            .map_err(|_| ClientError::DecryptFailed)?;
        Ok(Some(plain))
    }

    /// Client-side anonymization: de-identifies a bundle on the device,
    /// keeping the pseudonym map local and returning the safe bundle.
    /// ("Highly confidential data can be analyzed and encrypted or
    /// anonymized at clients before being sent to servers", §I.)
    pub fn anonymize_local(&self, bundle: &Bundle, salt: &[u8]) -> Deidentified {
        deidentify_bundle(bundle, &self.deid, salt)
    }

    /// Runs an arbitrary computation over locally cached values without
    /// any server round trip (client-side analytics / edge compute).
    pub fn compute_local<T>(
        &mut self,
        keys: &[&str],
        f: impl FnOnce(&[Option<Vec<u8>>]) -> T,
    ) -> (T, SimDuration) {
        let mut inputs = Vec::with_capacity(keys.len());
        let mut latency = SimDuration::ZERO;
        for k in keys {
            inputs.push(self.cache.get(&(*k).to_owned()));
            latency += self.local_latency;
        }
        self.clock.advance(SimDuration::ZERO); // compute time modelled by caller
        (f(&inputs), latency)
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> hc_cache::stats::CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_fhir::bundle::BundleKind;
    use hc_fhir::resource::{Patient, Resource};

    fn setup() -> (EnhancedClient, RemoteStore, SimClock) {
        let clock = SimClock::new();
        let remote: RemoteStore = Arc::new(Mutex::new(HashMap::new()));
        let client = EnhancedClient::new(
            clock.clone(),
            Arc::clone(&remote),
            SecretKey::from_bytes([4u8; 32]),
            16,
        );
        (client, remote, clock)
    }

    #[test]
    fn cached_read_is_orders_of_magnitude_faster() {
        let (mut client, _, _) = setup();
        client.put("k", b"v".to_vec());
        client.cache.invalidate(&"k".to_owned());
        let cold = client.get("k").unwrap();
        assert_eq!(cold.served, Served::Remote);
        let warm = client.get("k").unwrap();
        assert_eq!(warm.served, Served::ClientCache);
        assert!(cold.latency.as_nanos() > 1000 * warm.latency.as_nanos());
    }

    #[test]
    fn offline_writes_queue_and_replay() {
        let (mut client, remote, _) = setup();
        client.go_offline();
        client.put("a", b"1".to_vec());
        client.put("b", b"2".to_vec());
        assert!(remote.lock().is_empty(), "nothing reached the server");
        // Client still reads its own writes.
        assert_eq!(client.get("a").unwrap().value, Some(b"1".to_vec()));
        let replayed = client.go_online();
        assert_eq!(replayed, 2);
        assert_eq!(remote.lock().len(), 2);
    }

    #[test]
    fn offline_cold_read_errors() {
        let (mut client, remote, _) = setup();
        remote.lock().insert("k".into(), b"v".to_vec());
        client.go_offline();
        assert_eq!(client.get("k").unwrap_err(), ClientError::Offline);
    }

    #[test]
    fn offline_delete_replays() {
        let (mut client, remote, _) = setup();
        client.put("k", b"v".to_vec());
        client.go_offline();
        client.delete("k");
        assert!(remote.lock().contains_key("k"));
        client.go_online();
        assert!(!remote.lock().contains_key("k"));
    }

    #[test]
    fn encrypted_put_hides_plaintext_from_server() {
        let (mut client, remote, _) = setup();
        client.put_encrypted("phi", b"hba1c=9.1 patient=jane");
        let server_copy = remote.lock().get("phi").cloned().unwrap();
        let as_text = String::from_utf8_lossy(&server_copy);
        assert!(!as_text.contains("jane"));
        assert_eq!(
            client.get_encrypted("phi").unwrap(),
            Some(b"hba1c=9.1 patient=jane".to_vec())
        );
    }

    #[test]
    fn tampered_server_copy_detected() {
        let (mut client, remote, _) = setup();
        client.put_encrypted("phi", b"secret");
        {
            let mut store = remote.lock();
            let bytes = store.get_mut("phi").unwrap();
            let n = bytes.len();
            bytes[n / 2] ^= 0x01;
        }
        client.cache.clear();
        assert_eq!(
            client.get_encrypted("phi").unwrap_err(),
            ClientError::DecryptFailed
        );
    }

    #[test]
    fn anonymize_local_strips_phi() {
        let (client, _, _) = setup();
        let bundle = Bundle::new(
            BundleKind::Transaction,
            vec![Resource::Patient(
                Patient::builder("p1").name("Doe", "Jane").phone("555").build(),
            )],
        );
        let result = client.anonymize_local(&bundle, b"salt");
        let json = result.bundle.to_json();
        assert!(!json.contains("Jane"));
        assert!(!json.contains("555"));
        assert!(result.pseudonyms.contains_key("p1"));
    }

    #[test]
    fn compute_local_avoids_server() {
        let (mut client, _, clock) = setup();
        client.put("x", vec![1, 2, 3]);
        let before = clock.now();
        let (sum, latency) = client.compute_local(&["x"], |inputs| {
            inputs[0].as_ref().map(|v| v.iter().map(|b| u32::from(*b)).sum::<u32>())
        });
        assert_eq!(sum, Some(6));
        assert!(latency < client.remote_latency);
        // Clock advanced by at most the local work, not a round trip.
        assert!(clock.now().duration_since(before) < client.remote_latency);
    }

    #[test]
    fn absent_key_reported() {
        let (mut client, _, _) = setup();
        let read = client.get("missing").unwrap();
        assert_eq!(read.served, Served::Absent);
        assert!(read.value.is_none());
        assert_eq!(client.get_encrypted("missing").unwrap(), None);
    }
}
