//! The enhanced client.
//!
//! A client machine holding: a local cache in front of the remote cloud
//! server, a client-side encryption key (data leaves the device sealed),
//! a client-side anonymizer, and an offline queue — operations performed
//! while disconnected are replayed on reconnect.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use hc_cache::policy::{CachePolicy, LruCache};
use hc_common::clock::{SimClock, SimDuration};
use hc_crypto::aead::{self, SecretKey, Sealed};
use hc_fhir::bundle::Bundle;
use hc_privacy::phi::{deidentify_bundle, DeidConfig, Deidentified};
use hc_resilience::admission::Tier;
use hc_resilience::TimeoutBudget;

/// A simulated remote cloud store shared by clients and servers.
pub type RemoteStore = Arc<Mutex<HashMap<String, Vec<u8>>>>;

/// Where a read was served from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Served {
    /// From the client's local cache.
    ClientCache,
    /// From the remote server.
    Remote,
    /// The key does not exist.
    Absent,
}

/// The outcome of a client read.
#[derive(Clone, Debug)]
pub struct ClientRead {
    /// The bytes, if found.
    pub value: Option<Vec<u8>>,
    /// Where they came from.
    pub served: Served,
    /// Simulated latency charged.
    pub latency: SimDuration,
}

/// Errors from client operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ClientError {
    /// The client is offline and the operation needs the server now.
    Offline,
    /// Decryption of a fetched record failed.
    DecryptFailed,
    /// The request's deadline budget cannot cover the next hop, so the
    /// client shed it *before* spending a server round trip on an answer
    /// that would arrive too late anyway (deadline propagation).
    DeadlineExceeded,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Offline => f.write_str("client is offline"),
            ClientError::DecryptFailed => f.write_str("client-side decryption failed"),
            ClientError::DeadlineExceeded => {
                f.write_str("deadline budget exhausted before the next hop")
            }
        }
    }
}

impl std::error::Error for ClientError {}

#[derive(Clone, Debug)]
enum Pending {
    Put { key: String, value: Vec<u8> },
    Delete { key: String },
}

/// The enhanced client.
pub struct EnhancedClient {
    clock: SimClock,
    cache: LruCache<String, Vec<u8>>,
    remote: RemoteStore,
    key: SecretKey,
    deid: DeidConfig,
    offline: bool,
    queue: Vec<Pending>,
    /// Latency of a local cache hit.
    pub local_latency: SimDuration,
    /// Latency of a server round trip.
    pub remote_latency: SimDuration,
    /// Per-tier SLO budgets for tiered reads, indexed by [`Tier::index`].
    tier_slos: [SimDuration; 3],
}

impl std::fmt::Debug for EnhancedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnhancedClient")
            .field("offline", &self.offline)
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl EnhancedClient {
    /// Creates a client over a shared remote store.
    pub fn new(clock: SimClock, remote: RemoteStore, key: SecretKey, cache_capacity: usize) -> Self {
        EnhancedClient {
            clock,
            cache: LruCache::new(cache_capacity.max(1)),
            remote,
            key,
            deid: DeidConfig::default(),
            offline: false,
            queue: Vec::new(),
            local_latency: SimDuration::from_micros(5),
            remote_latency: SimDuration::from_millis(50),
            tier_slos: [
                SimDuration::from_millis(250),   // clinical
                SimDuration::from_millis(1000),  // interactive
                SimDuration::from_millis(10_000) // batch
            ],
        }
    }

    /// The SLO budget a [`Tier`] request starts with at this client.
    pub fn tier_slo(&self, tier: Tier) -> SimDuration {
        self.tier_slos[tier.index()] // hc-lint: allow(panic-index)
    }

    /// Overrides a tier's SLO budget.
    pub fn set_tier_slo(&mut self, tier: Tier, slo: SimDuration) {
        self.tier_slos[tier.index()] = slo; // hc-lint: allow(panic-index)
    }

    /// Whether the client is currently disconnected.
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// Disconnects the client; subsequent writes queue locally.
    pub fn go_offline(&mut self) {
        self.offline = true;
    }

    /// Reconnects, replaying every queued operation against the server.
    /// Returns how many operations were replayed.
    pub fn go_online(&mut self) -> usize {
        self.offline = false;
        let queued = std::mem::take(&mut self.queue);
        let count = queued.len();
        for op in queued {
            match op {
                Pending::Put { key, value } => {
                    self.clock.advance(self.remote_latency);
                    self.remote.lock().insert(key, value);
                }
                Pending::Delete { key } => {
                    self.clock.advance(self.remote_latency);
                    self.remote.lock().remove(&key);
                }
            }
        }
        count
    }

    /// Reads a key: local cache first, then (if online) the server.
    pub fn get(&mut self, key: &str) -> Result<ClientRead, ClientError> {
        if let Some(value) = self.cache.get(&key.to_owned()) {
            self.clock.advance(self.local_latency);
            return Ok(ClientRead {
                value: Some(value),
                served: Served::ClientCache,
                latency: self.local_latency,
            });
        }
        if self.offline {
            return Err(ClientError::Offline);
        }
        self.clock.advance(self.remote_latency);
        let value = self.remote.lock().get(key).cloned();
        if let Some(v) = &value {
            self.cache.put(key.to_owned(), v.clone());
        }
        Ok(ClientRead {
            served: if value.is_some() {
                Served::Remote
            } else {
                Served::Absent
            },
            value,
            latency: self.remote_latency,
        })
    }

    /// Reads a key under a deadline budget, shedding the remote hop when
    /// the remaining budget cannot cover it.
    ///
    /// This is the client edge of the platform's deadline propagation:
    /// the *same* budget (or a [`TimeoutBudget::child`] of it) travels
    /// down the client → cache → origin chain, so time spent at one hop
    /// shrinks what the next hop may spend. A cache hit only needs
    /// `local_latency`; on a miss the server round trip is attempted
    /// only if `remote_latency` still fits — otherwise the read fails
    /// fast with [`ClientError::DeadlineExceeded`] *without* wasting a
    /// round trip whose answer would be dead on arrival.
    ///
    /// # Errors
    ///
    /// [`ClientError::DeadlineExceeded`] when the budget cannot cover
    /// the required hop; [`ClientError::Offline`] as for
    /// [`get`](Self::get).
    pub fn get_within(
        &mut self,
        key: &str,
        budget: TimeoutBudget,
    ) -> Result<ClientRead, ClientError> {
        if self.cache.get(&key.to_owned()).is_some() {
            if !budget.admits(&self.clock, self.local_latency) {
                return Err(ClientError::DeadlineExceeded);
            }
            return self.get(key);
        }
        if self.offline {
            return Err(ClientError::Offline);
        }
        // The remote hop inherits what is left of the caller's budget,
        // capped at one round trip; shed early if that cannot fit.
        let hop = budget.child(&self.clock, self.remote_latency);
        if !hop.admits(&self.clock, self.remote_latency) {
            return Err(ClientError::DeadlineExceeded);
        }
        self.get(key)
    }

    /// Reads a key at a priority [`Tier`], starting a deadline budget
    /// from the tier's SLO ([`tier_slo`](Self::tier_slo)).
    ///
    /// # Errors
    ///
    /// As for [`get_within`](Self::get_within).
    pub fn get_tiered(&mut self, key: &str, tier: Tier) -> Result<ClientRead, ClientError> {
        let budget = TimeoutBudget::starting_now(&self.clock, self.tier_slo(tier));
        self.get_within(key, budget)
    }

    /// Writes raw bytes (queued while offline). The local cache is
    /// updated immediately so disconnected reads see the client's own
    /// writes.
    pub fn put(&mut self, key: &str, value: Vec<u8>) {
        self.cache.put(key.to_owned(), value.clone());
        if self.offline {
            self.queue.push(Pending::Put {
                key: key.to_owned(),
                value,
            });
        } else {
            self.clock.advance(self.remote_latency);
            self.remote.lock().insert(key.to_owned(), value);
        }
    }

    /// Deletes a key everywhere (queued while offline).
    pub fn delete(&mut self, key: &str) {
        self.cache.invalidate(&key.to_owned());
        if self.offline {
            self.queue.push(Pending::Delete {
                key: key.to_owned(),
            });
        } else {
            self.clock.advance(self.remote_latency);
            self.remote.lock().remove(key);
        }
    }

    /// Client-side encryption: seals `plaintext` before it leaves the
    /// device, then stores the envelope under `key_name`.
    pub fn put_encrypted(&mut self, key_name: &str, plaintext: &[u8]) {
        let sealed = aead::seal(&self.key, plaintext, key_name.as_bytes());
        let bytes = serde_json::to_vec(&sealed).expect("sealed serializes");
        self.put(key_name, bytes);
    }

    /// Fetches and opens a client-encrypted record.
    ///
    /// # Errors
    ///
    /// Fails when offline with a cold cache, or when the envelope fails
    /// authentication (tampered server copy).
    pub fn get_encrypted(&mut self, key_name: &str) -> Result<Option<Vec<u8>>, ClientError> {
        let read = self.get(key_name)?;
        let Some(bytes) = read.value else {
            return Ok(None);
        };
        let sealed: Sealed =
            serde_json::from_slice(&bytes).map_err(|_| ClientError::DecryptFailed)?;
        let plain = aead::open(&self.key, &sealed, key_name.as_bytes())
            .map_err(|_| ClientError::DecryptFailed)?;
        Ok(Some(plain))
    }

    /// Client-side anonymization: de-identifies a bundle on the device,
    /// keeping the pseudonym map local and returning the safe bundle.
    /// ("Highly confidential data can be analyzed and encrypted or
    /// anonymized at clients before being sent to servers", §I.)
    pub fn anonymize_local(&self, bundle: &Bundle, salt: &[u8]) -> Deidentified {
        deidentify_bundle(bundle, &self.deid, salt)
    }

    /// Runs an arbitrary computation over locally cached values without
    /// any server round trip (client-side analytics / edge compute).
    pub fn compute_local<T>(
        &mut self,
        keys: &[&str],
        f: impl FnOnce(&[Option<Vec<u8>>]) -> T,
    ) -> (T, SimDuration) {
        let mut inputs = Vec::with_capacity(keys.len());
        let mut latency = SimDuration::ZERO;
        for k in keys {
            inputs.push(self.cache.get(&(*k).to_owned()));
            latency += self.local_latency;
        }
        self.clock.advance(SimDuration::ZERO); // compute time modelled by caller
        (f(&inputs), latency)
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> hc_cache::stats::CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_fhir::bundle::BundleKind;
    use hc_fhir::resource::{Patient, Resource};

    fn setup() -> (EnhancedClient, RemoteStore, SimClock) {
        let clock = SimClock::new();
        let remote: RemoteStore = Arc::new(Mutex::new(HashMap::new()));
        let client = EnhancedClient::new(
            clock.clone(),
            Arc::clone(&remote),
            SecretKey::from_bytes([4u8; 32]),
            16,
        );
        (client, remote, clock)
    }

    #[test]
    fn cached_read_is_orders_of_magnitude_faster() {
        let (mut client, _, _) = setup();
        client.put("k", b"v".to_vec());
        client.cache.invalidate(&"k".to_owned());
        let cold = client.get("k").unwrap();
        assert_eq!(cold.served, Served::Remote);
        let warm = client.get("k").unwrap();
        assert_eq!(warm.served, Served::ClientCache);
        assert!(cold.latency.as_nanos() > 1000 * warm.latency.as_nanos());
    }

    #[test]
    fn offline_writes_queue_and_replay() {
        let (mut client, remote, _) = setup();
        client.go_offline();
        client.put("a", b"1".to_vec());
        client.put("b", b"2".to_vec());
        assert!(remote.lock().is_empty(), "nothing reached the server");
        // Client still reads its own writes.
        assert_eq!(client.get("a").unwrap().value, Some(b"1".to_vec()));
        let replayed = client.go_online();
        assert_eq!(replayed, 2);
        assert_eq!(remote.lock().len(), 2);
    }

    #[test]
    fn offline_cold_read_errors() {
        let (mut client, remote, _) = setup();
        remote.lock().insert("k".into(), b"v".to_vec());
        client.go_offline();
        assert_eq!(client.get("k").unwrap_err(), ClientError::Offline);
    }

    #[test]
    fn offline_delete_replays() {
        let (mut client, remote, _) = setup();
        client.put("k", b"v".to_vec());
        client.go_offline();
        client.delete("k");
        assert!(remote.lock().contains_key("k"));
        client.go_online();
        assert!(!remote.lock().contains_key("k"));
    }

    #[test]
    fn encrypted_put_hides_plaintext_from_server() {
        let (mut client, remote, _) = setup();
        client.put_encrypted("phi", b"hba1c=9.1 patient=jane");
        let server_copy = remote.lock().get("phi").cloned().unwrap();
        let as_text = String::from_utf8_lossy(&server_copy);
        assert!(!as_text.contains("jane"));
        assert_eq!(
            client.get_encrypted("phi").unwrap(),
            Some(b"hba1c=9.1 patient=jane".to_vec())
        );
    }

    #[test]
    fn tampered_server_copy_detected() {
        let (mut client, remote, _) = setup();
        client.put_encrypted("phi", b"secret");
        {
            let mut store = remote.lock();
            let bytes = store.get_mut("phi").unwrap();
            let n = bytes.len();
            bytes[n / 2] ^= 0x01;
        }
        client.cache.clear();
        assert_eq!(
            client.get_encrypted("phi").unwrap_err(),
            ClientError::DecryptFailed
        );
    }

    #[test]
    fn anonymize_local_strips_phi() {
        let (client, _, _) = setup();
        let bundle = Bundle::new(
            BundleKind::Transaction,
            vec![Resource::Patient(
                Patient::builder("p1").name("Doe", "Jane").phone("555").build(),
            )],
        );
        let result = client.anonymize_local(&bundle, b"salt");
        let json = result.bundle.to_json();
        assert!(!json.contains("Jane"));
        assert!(!json.contains("555"));
        assert!(result.pseudonyms.contains_key("p1"));
    }

    #[test]
    fn compute_local_avoids_server() {
        let (mut client, _, clock) = setup();
        client.put("x", vec![1, 2, 3]);
        let before = clock.now();
        let (sum, latency) = client.compute_local(&["x"], |inputs| {
            inputs[0].as_ref().map(|v| v.iter().map(|b| u32::from(*b)).sum::<u32>())
        });
        assert_eq!(sum, Some(6));
        assert!(latency < client.remote_latency);
        // Clock advanced by at most the local work, not a round trip.
        assert!(clock.now().duration_since(before) < client.remote_latency);
    }

    #[test]
    fn absent_key_reported() {
        let (mut client, _, _) = setup();
        let read = client.get("missing").unwrap();
        assert_eq!(read.served, Served::Absent);
        assert!(read.value.is_none());
        assert_eq!(client.get_encrypted("missing").unwrap(), None);
    }

    #[test]
    fn deadline_too_tight_for_remote_sheds_without_round_trip() {
        let (mut client, remote, clock) = setup();
        remote.lock().insert("k".into(), b"v".to_vec());
        let before = clock.now();
        // Budget smaller than one server round trip and the cache is
        // cold: the client must fail fast, not pay 50 ms for a late
        // answer.
        let budget = TimeoutBudget::starting_now(&clock, SimDuration::from_millis(1));
        assert_eq!(
            client.get_within("k", budget).unwrap_err(),
            ClientError::DeadlineExceeded
        );
        assert_eq!(clock.now(), before, "no latency charged for a shed read");
        // A warm cache serves the same tight budget fine.
        client.put("k", b"v".to_vec());
        assert_eq!(
            client
                .get_within("k", TimeoutBudget::starting_now(&clock, SimDuration::from_millis(1)))
                .unwrap()
                .served,
            Served::ClientCache
        );
    }

    #[test]
    fn budget_decrements_across_hops_not_per_call() {
        let (mut client, remote, clock) = setup();
        remote.lock().insert("a".into(), b"1".to_vec());
        remote.lock().insert("b".into(), b"2".to_vec());
        // 80 ms covers one 50 ms round trip, not two: the second cold
        // read must be shed because the budget carried over, rather than
        // being re-minted per call.
        let budget = TimeoutBudget::starting_now(&clock, SimDuration::from_millis(80));
        assert!(client.get_within("a", budget).is_ok());
        assert_eq!(
            client.get_within("b", budget).unwrap_err(),
            ClientError::DeadlineExceeded
        );
    }

    #[test]
    fn tiered_reads_start_from_tier_slos() {
        let (mut client, remote, _) = setup();
        remote.lock().insert("k".into(), b"v".to_vec());
        assert!(client.tier_slo(Tier::Clinical) < client.tier_slo(Tier::Batch));
        // Clinical SLO tighter than a round trip: cold read shed.
        client.set_tier_slo(Tier::Clinical, SimDuration::from_millis(10));
        assert_eq!(
            client.get_tiered("k", Tier::Clinical).unwrap_err(),
            ClientError::DeadlineExceeded
        );
        // Batch has time for the origin.
        assert_eq!(
            client.get_tiered("k", Tier::Batch).unwrap().served,
            Served::Remote
        );
        // …and now clinical is served from the warmed cache.
        assert_eq!(
            client.get_tiered("k", Tier::Clinical).unwrap().served,
            Served::ClientCache
        );
    }
}
