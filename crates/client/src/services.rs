//! External AI services: simulation, tracking and selection (§III).
//!
//! "The AI services from different providers offer similar functionality
//! but are not identical. We provide users with a choice of services for
//! similar functionality. In addition, we maintain information on the
//! different services to allow users to pick the best ones. This
//! information includes response times and availability of the services.
//! For some of the services (e.g. text extraction), we have standard
//! tests which we run to test the accuracy of the services … Users can
//! also provide feedback on services."

use std::collections::HashMap;

use hc_common::clock::{SimClock, SimDuration};
use hc_common::fault::{FaultInjector, FaultKind};
use hc_resilience::{BreakerState, CircuitBreaker};
use rand::Rng;

/// Prefix for per-service fault points: scheduling a fault at
/// `service.<name>` on the registry's [`FaultInjector`] makes requests
/// to that provider fail (see [`hc_common::fault`]).
pub const SERVICE_FAULT_PREFIX: &str = "service.";

/// The capability a service provides.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Capability {
    /// Natural-language understanding.
    NaturalLanguage,
    /// Speech recognition.
    Speech,
    /// Visual recognition.
    Vision,
    /// Scientific text extraction.
    TextExtraction,
}

/// A simulated external web service.
#[derive(Clone, Debug)]
pub struct SimulatedService {
    /// Provider name.
    pub name: String,
    /// What it does.
    pub capability: Capability,
    /// Mean response time.
    pub mean_latency: SimDuration,
    /// Uniform jitter applied around the mean (fraction of mean, 0–1).
    pub jitter: f64,
    /// Probability a request succeeds.
    pub availability: f64,
    /// Probability an answer is correct (measured by standard tests).
    pub accuracy: f64,
}

/// One invocation result.
#[derive(Clone, Copy, Debug)]
pub struct ServiceResponse {
    /// How long it took.
    pub latency: SimDuration,
    /// Whether the answer was correct (observable only in tests).
    pub correct: bool,
}

/// Tracked statistics for one service.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Exponentially weighted average response time (ns).
    pub ewma_latency_ns: f64,
    /// Requests attempted.
    pub requests: u64,
    /// Requests that failed (unavailable).
    pub failures: u64,
    /// Failures since the last success — what the circuit breaker
    /// watches, and a leading indicator monitoring scrapes.
    pub consecutive_failures: u32,
    /// Accuracy measured by the platform's standard tests, if run.
    pub tested_accuracy: Option<f64>,
    /// Mean user feedback rating in [1, 5], if any.
    pub feedback: Option<f64>,
    feedback_count: u64,
}

impl ServiceStats {
    /// Observed availability in `[0, 1]` (1.0 when untried).
    pub fn availability(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            1.0 - self.failures as f64 / self.requests as f64
        }
    }
}

/// The registry of external services with tracking and selection.
pub struct ServiceRegistry {
    clock: SimClock,
    services: Vec<SimulatedService>,
    stats: HashMap<String, ServiceStats>,
    ewma_alpha: f64,
    breakers: HashMap<String, CircuitBreaker>,
    injector: FaultInjector,
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRegistry")
            .field("services", &self.services.len())
            .finish()
    }
}

/// Errors from service invocation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServiceError {
    /// No registered service has the capability.
    NoProvider(&'static str),
    /// Unknown service name.
    Unknown(String),
    /// The service was unavailable for this request.
    Unavailable(String),
    /// The service's circuit breaker is open; the provider was not
    /// consulted.
    CircuitOpen(String),
    /// Every qualifying provider of the capability failed or is
    /// circuit-broken.
    AllProvidersFailed(&'static str),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::NoProvider(c) => write!(f, "no provider for {c}"),
            ServiceError::Unknown(n) => write!(f, "unknown service `{n}`"),
            ServiceError::Unavailable(n) => write!(f, "service `{n}` unavailable"),
            ServiceError::CircuitOpen(n) => {
                write!(f, "circuit breaker for `{n}` is open")
            }
            ServiceError::AllProvidersFailed(c) => {
                write!(f, "all providers for {c} failed")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new(clock: SimClock) -> Self {
        ServiceRegistry {
            clock,
            services: Vec::new(),
            stats: HashMap::new(),
            ewma_alpha: 0.3,
            breakers: HashMap::new(),
            injector: FaultInjector::disabled(),
        }
    }

    /// Registers a service.
    pub fn register(&mut self, service: SimulatedService) {
        self.stats
            .insert(service.name.clone(), ServiceStats::default());
        self.breakers.insert(
            service.name.clone(),
            CircuitBreaker::new(self.clock.clone())
                .with_trip_threshold(3)
                .with_cooldown(SimDuration::from_millis(500)),
        );
        self.services.push(service);
    }

    /// Installs a fault injector consulted (at `service.<name>`) on
    /// every resilient invocation.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = injector;
    }

    /// The circuit breaker state for a service, if registered.
    pub fn breaker_state(&mut self, name: &str) -> Option<BreakerState> {
        self.breakers.get_mut(name).map(|b| b.state())
    }

    /// Invokes a service by name, tracking latency and availability.
    ///
    /// # Errors
    ///
    /// Fails for unknown names or when the provider is down this request.
    pub fn invoke<R: Rng + ?Sized>(
        &mut self,
        name: &str,
        rng: &mut R,
    ) -> Result<ServiceResponse, ServiceError> {
        let service = self
            .services
            .iter()
            .find(|s| s.name == name)
            .cloned()
            .ok_or_else(|| ServiceError::Unknown(name.to_owned()))?;
        // A scripted outage at `service.<name>` beats the availability
        // draw: the provider is down, full stop.
        let scripted_outage = matches!(
            self.injector
                .check(&format!("{SERVICE_FAULT_PREFIX}{name}")),
            Some(
                FaultKind::HostCrash
                    | FaultKind::TransientError
                    | FaultKind::NetworkPartition
            )
        );
        let stats = self.stats.entry(service.name.clone()).or_default();
        stats.requests += 1;
        if scripted_outage || !rng.gen_bool(service.availability.clamp(0.0, 1.0)) {
            stats.failures += 1;
            stats.consecutive_failures += 1;
            return Err(ServiceError::Unavailable(name.to_owned()));
        }
        stats.consecutive_failures = 0;
        let jitter_span = service.mean_latency.as_nanos() as f64 * service.jitter;
        let latency_ns = service.mean_latency.as_nanos() as f64
            + rng.gen_range(-jitter_span..=jitter_span.max(1e-9));
        let latency = SimDuration::from_nanos(latency_ns.max(0.0) as u64);
        self.clock.advance(latency);
        if stats.ewma_latency_ns == 0.0 {
            stats.ewma_latency_ns = latency.as_nanos() as f64;
        } else {
            stats.ewma_latency_ns = (1.0 - self.ewma_alpha) * stats.ewma_latency_ns
                + self.ewma_alpha * latency.as_nanos() as f64;
        }
        Ok(ServiceResponse {
            latency,
            correct: rng.gen_bool(service.accuracy.clamp(0.0, 1.0)),
        })
    }

    /// Invokes a service through its circuit breaker: an open breaker
    /// rejects immediately without consulting the provider, and the
    /// outcome feeds the breaker's state machine.
    ///
    /// # Errors
    ///
    /// [`ServiceError::CircuitOpen`] when the breaker rejects, plus all
    /// [`invoke`](Self::invoke) errors.
    pub fn invoke_resilient<R: Rng + ?Sized>(
        &mut self,
        name: &str,
        rng: &mut R,
    ) -> Result<ServiceResponse, ServiceError> {
        if let Some(breaker) = self.breakers.get_mut(name) {
            if !breaker.allow() {
                return Err(ServiceError::CircuitOpen(name.to_owned()));
            }
        }
        let outcome = self.invoke(name, rng);
        if let Some(breaker) = self.breakers.get_mut(name) {
            match &outcome {
                Ok(_) => breaker.record_success(),
                Err(ServiceError::Unavailable(_)) => breaker.record_failure(),
                Err(_) => {}
            }
        }
        outcome
    }

    /// Invokes the best provider of a capability, failing over past
    /// circuit-broken or unavailable providers in ranked order. Returns
    /// the provider that answered along with its response.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoProvider`] when nothing offers the capability;
    /// [`ServiceError::AllProvidersFailed`] when every ranked provider
    /// was circuit-broken or failed this request.
    pub fn invoke_with_failover<R: Rng + ?Sized>(
        &mut self,
        capability: Capability,
        min_accuracy: f64,
        rng: &mut R,
    ) -> Result<(String, ServiceResponse), ServiceError> {
        let ranked = self.ranked_candidates(capability, min_accuracy);
        if ranked.is_empty() {
            return Err(ServiceError::NoProvider("capability"));
        }
        for name in ranked {
            match self.invoke_resilient(&name, rng) {
                Ok(response) => return Ok((name, response)),
                Err(ServiceError::CircuitOpen(_) | ServiceError::Unavailable(_)) => {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(ServiceError::AllProvidersFailed("capability"))
    }

    /// Runs the platform's standard accuracy test (`trials` invocations)
    /// against a service and records the measured accuracy.
    ///
    /// # Errors
    ///
    /// Propagates unknown-service errors.
    pub fn run_accuracy_test<R: Rng + ?Sized>(
        &mut self,
        name: &str,
        trials: usize,
        rng: &mut R,
    ) -> Result<f64, ServiceError> {
        let mut correct = 0usize;
        let mut completed = 0usize;
        for _ in 0..trials.max(1) {
            match self.invoke(name, rng) {
                Ok(r) => {
                    completed += 1;
                    if r.correct {
                        correct += 1;
                    }
                }
                Err(ServiceError::Unavailable(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        let accuracy = if completed == 0 {
            0.0
        } else {
            correct as f64 / completed as f64
        };
        self.stats
            .get_mut(name)
            .expect("stats exist after invoke")
            .tested_accuracy = Some(accuracy);
        Ok(accuracy)
    }

    /// Records a user feedback rating in `[1, 5]` (clamped). Note the
    /// paper's caution: feedback "should be used with caution as it may
    /// not be accurate" — selection only uses it as a tie-breaker.
    pub fn record_feedback(&mut self, name: &str, rating: f64) {
        if let Some(stats) = self.stats.get_mut(name) {
            let rating = rating.clamp(1.0, 5.0);
            let count = stats.feedback_count as f64;
            let mean = stats.feedback.unwrap_or(0.0);
            stats.feedback = Some((mean * count + rating) / (count + 1.0));
            stats.feedback_count += 1;
        }
    }

    /// Tracked statistics of a service.
    pub fn stats(&self, name: &str) -> Option<&ServiceStats> {
        self.stats.get(name)
    }

    /// Picks the best provider for a capability by expected cost:
    /// `ewma_latency / availability`, with tested accuracy as a filter
    /// (must be ≥ `min_accuracy` when measured) and feedback as a final
    /// tie-breaker.
    ///
    /// # Errors
    ///
    /// Fails when no provider of the capability qualifies.
    pub fn select_best(
        &self,
        capability: Capability,
        min_accuracy: f64,
    ) -> Result<&str, ServiceError> {
        let ranked = self.ranked_candidates(capability, min_accuracy);
        let best = ranked.first().ok_or(ServiceError::NoProvider("capability"))?;
        Ok(&self
            .services
            .iter()
            .find(|s| &s.name == best)
            .expect("exists")
            .name)
    }

    /// Qualifying providers of a capability, best first, by the same
    /// expected-cost score [`select_best`](Self::select_best) uses.
    pub fn ranked_candidates(
        &self,
        capability: Capability,
        min_accuracy: f64,
    ) -> Vec<String> {
        let mut candidates: Vec<&SimulatedService> = self
            .services
            .iter()
            .filter(|s| s.capability == capability)
            .filter(|s| {
                self.stats
                    .get(&s.name)
                    .and_then(|st| st.tested_accuracy)
                    .map(|a| a >= min_accuracy)
                    .unwrap_or(true)
            })
            .collect();
        let score = |s: &SimulatedService| -> (f64, f64) {
            let st = self.stats.get(&s.name);
            let latency = st
                .map(|st| {
                    if st.ewma_latency_ns > 0.0 {
                        st.ewma_latency_ns
                    } else {
                        s.mean_latency.as_nanos() as f64
                    }
                })
                .unwrap_or(s.mean_latency.as_nanos() as f64);
            let availability = st.map(|st| st.availability()).unwrap_or(1.0).max(1e-6);
            let feedback = st.and_then(|st| st.feedback).unwrap_or(3.0);
            (latency / availability, -feedback)
        };
        candidates.sort_by(|a, b| score(a).partial_cmp(&score(b)).expect("finite"));
        candidates.into_iter().map(|s| s.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ServiceRegistry {
        let mut reg = ServiceRegistry::new(SimClock::new());
        reg.register(SimulatedService {
            name: "fast-nlu".into(),
            capability: Capability::NaturalLanguage,
            mean_latency: SimDuration::from_millis(30),
            jitter: 0.1,
            availability: 0.99,
            accuracy: 0.9,
        });
        reg.register(SimulatedService {
            name: "slow-nlu".into(),
            capability: Capability::NaturalLanguage,
            mean_latency: SimDuration::from_millis(300),
            jitter: 0.1,
            availability: 0.99,
            accuracy: 0.95,
        });
        reg.register(SimulatedService {
            name: "flaky-nlu".into(),
            capability: Capability::NaturalLanguage,
            mean_latency: SimDuration::from_millis(20),
            jitter: 0.1,
            availability: 0.4,
            accuracy: 0.9,
        });
        reg.register(SimulatedService {
            name: "vision-1".into(),
            capability: Capability::Vision,
            mean_latency: SimDuration::from_millis(80),
            jitter: 0.2,
            availability: 0.99,
            accuracy: 0.85,
        });
        reg
    }

    #[test]
    fn invocation_tracks_latency() {
        let mut reg = registry();
        let mut rng = hc_common::rng::seeded(1);
        for _ in 0..20 {
            let _ = reg.invoke("fast-nlu", &mut rng);
        }
        let stats = reg.stats("fast-nlu").unwrap();
        assert!(stats.requests == 20);
        let ewma_ms = stats.ewma_latency_ns / 1e6;
        assert!((25.0..35.0).contains(&ewma_ms), "ewma={ewma_ms}ms");
    }

    #[test]
    fn flaky_service_penalized_in_selection() {
        let mut reg = registry();
        let mut rng = hc_common::rng::seeded(2);
        for _ in 0..60 {
            let _ = reg.invoke("fast-nlu", &mut rng);
            let _ = reg.invoke("flaky-nlu", &mut rng);
            let _ = reg.invoke("slow-nlu", &mut rng);
        }
        let best = reg.select_best(Capability::NaturalLanguage, 0.0).unwrap();
        assert_eq!(best, "fast-nlu", "fast + available beats flaky-but-fast");
    }

    #[test]
    fn accuracy_gate_filters_providers() {
        let mut reg = registry();
        let mut rng = hc_common::rng::seeded(3);
        // 2000 trials keeps the 0.90-vs-0.95 separation many standard
        // deviations wide, so the ordering assertion below is stable for
        // any RNG stream rather than marginal at ~3σ.
        let fast_acc = reg.run_accuracy_test("fast-nlu", 2000, &mut rng).unwrap();
        let flaky_acc = reg.run_accuracy_test("flaky-nlu", 2000, &mut rng).unwrap();
        let slow_acc = reg.run_accuracy_test("slow-nlu", 2000, &mut rng).unwrap();
        assert!((0.8..1.0).contains(&fast_acc), "acc={fast_acc}");
        assert!(slow_acc > fast_acc.max(flaky_acc), "slow measures best");
        // Demand accuracy above the cheaper providers → slow-nlu wins
        // despite its latency.
        let gate = fast_acc.max(flaky_acc) + 0.005;
        let best = reg
            .select_best(Capability::NaturalLanguage, gate.min(0.99))
            .unwrap();
        assert_eq!(best, "slow-nlu");
    }

    #[test]
    fn unknown_and_missing_capability_errors() {
        let mut reg = registry();
        let mut rng = hc_common::rng::seeded(4);
        assert!(matches!(
            reg.invoke("nope", &mut rng),
            Err(ServiceError::Unknown(_))
        ));
        assert!(matches!(
            reg.select_best(Capability::Speech, 0.0),
            Err(ServiceError::NoProvider(_))
        ));
    }

    #[test]
    fn feedback_recorded_and_clamped() {
        let mut reg = registry();
        reg.record_feedback("vision-1", 4.0);
        reg.record_feedback("vision-1", 99.0); // clamped to 5
        let stats = reg.stats("vision-1").unwrap();
        assert!((stats.feedback.unwrap() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn breaker_opens_on_scripted_outage_and_failover_routes_around() {
        use hc_common::fault::{FaultInjector, FaultKind, FaultSpec};
        let clock = SimClock::new();
        let mut reg = ServiceRegistry::new(clock.clone());
        for (name, latency_ms) in [("primary-nlu", 20), ("backup-nlu", 200)] {
            reg.register(SimulatedService {
                name: name.into(),
                capability: Capability::NaturalLanguage,
                mean_latency: SimDuration::from_millis(latency_ms),
                jitter: 0.0,
                availability: 1.0,
                accuracy: 0.9,
            });
        }
        let injector = FaultInjector::new(clock.clone(), 21);
        injector.schedule(
            "service.primary-nlu",
            FaultSpec::always(FaultKind::HostCrash),
        );
        reg.set_fault_injector(injector.clone());
        let mut rng = hc_common::rng::seeded(21);
        // The outage makes direct calls fail; three in a row trip the
        // primary's breaker.
        for _ in 0..3 {
            assert!(matches!(
                reg.invoke_resilient("primary-nlu", &mut rng),
                Err(ServiceError::Unavailable(_))
            ));
        }
        assert_eq!(reg.breaker_state("primary-nlu"), Some(BreakerState::Open));
        assert!(matches!(
            reg.invoke_resilient("primary-nlu", &mut rng),
            Err(ServiceError::CircuitOpen(_))
        ));
        // Failover keeps answering through the backup, without even
        // consulting the circuit-broken primary.
        let before = reg.stats("primary-nlu").unwrap().requests;
        for _ in 0..3 {
            let (who, _) = reg
                .invoke_with_failover(Capability::NaturalLanguage, 0.0, &mut rng)
                .unwrap();
            assert_eq!(who, "backup-nlu");
        }
        assert_eq!(
            reg.stats("primary-nlu").unwrap().requests,
            before,
            "open breaker short-circuits the dead provider"
        );
        assert!(reg.stats("primary-nlu").unwrap().consecutive_failures >= 3);
        // Heal + cooldown: probes close the breaker and the primary wins
        // selection again.
        injector.heal("service.primary-nlu");
        clock.advance(SimDuration::from_millis(500));
        for _ in 0..3 {
            let _ = reg.invoke_resilient("primary-nlu", &mut rng);
        }
        assert_eq!(
            reg.breaker_state("primary-nlu"),
            Some(BreakerState::Closed)
        );
        assert_eq!(
            reg.stats("primary-nlu").unwrap().consecutive_failures,
            0,
            "success resets the consecutive-failure counter"
        );
    }

    #[test]
    fn unavailable_requests_counted() {
        let mut reg = registry();
        let mut rng = hc_common::rng::seeded(5);
        let mut failures = 0;
        for _ in 0..100 {
            if reg.invoke("flaky-nlu", &mut rng).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 30, "flaky service should fail often: {failures}");
        let stats = reg.stats("flaky-nlu").unwrap();
        assert!(stats.availability() < 0.7);
    }
}
