//! Client-side vs server-side processing comparisons (E10).
//!
//! §I: "Allowing processing to take place at the clients conceptually
//! moves computing to the edges of networks. It offloads computing from
//! servers … It can also improve performance by allowing certain
//! computations to take place at the client without the need to incur
//! latency for communication with a remote cloud server."

use hc_common::clock::SimDuration;
use hc_fhir::bundle::Bundle;
use hc_privacy::phi::{deidentify_bundle, DeidConfig};

/// The cost report of one processing plan.
#[derive(Clone, Copy, Debug)]
pub struct OffloadReport {
    /// Round trips to the server.
    pub round_trips: u32,
    /// Total simulated latency.
    pub latency: SimDuration,
    /// Bytes that crossed the network.
    pub bytes_sent: u64,
    /// Whether PHI ever left the client in identifiable form.
    pub phi_left_device: bool,
}

/// Plan A (the paper's design): anonymize on the client, then send the
/// de-identified bundle once.
pub fn client_side_plan(
    bundle: &Bundle,
    client_compute: SimDuration,
    uplink_latency: SimDuration,
) -> OffloadReport {
    let deidentified = deidentify_bundle(bundle, &DeidConfig::default(), b"offload");
    let bytes = deidentified.bundle.to_bytes().len() as u64;
    OffloadReport {
        round_trips: 1,
        latency: client_compute + uplink_latency,
        bytes_sent: bytes,
        phi_left_device: false,
    }
}

/// Plan B (the baseline): send raw PHI to the server, anonymize there,
/// and fetch the acknowledgement — two round trips and identifiable data
/// in flight.
pub fn server_side_plan(
    bundle: &Bundle,
    server_compute: SimDuration,
    uplink_latency: SimDuration,
) -> OffloadReport {
    let bytes = bundle.to_bytes().len() as u64;
    OffloadReport {
        round_trips: 2,
        latency: uplink_latency + server_compute + uplink_latency,
        bytes_sent: bytes,
        phi_left_device: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_fhir::bundle::BundleKind;
    use hc_fhir::resource::{Patient, Resource};

    fn bundle() -> Bundle {
        Bundle::new(
            BundleKind::Transaction,
            vec![Resource::Patient(
                Patient::builder("p1")
                    .name("Doe", "Jane")
                    .phone("555-0100")
                    .identifier("ssn", "000-11-2222")
                    .build(),
            )],
        )
    }

    #[test]
    fn client_plan_keeps_phi_on_device() {
        let report = client_side_plan(
            &bundle(),
            SimDuration::from_millis(3),
            SimDuration::from_millis(50),
        );
        assert!(!report.phi_left_device);
        assert_eq!(report.round_trips, 1);
    }

    #[test]
    fn client_plan_is_faster_when_compute_is_cheap() {
        let client = client_side_plan(
            &bundle(),
            SimDuration::from_millis(3),
            SimDuration::from_millis(50),
        );
        let server = server_side_plan(
            &bundle(),
            SimDuration::from_millis(1),
            SimDuration::from_millis(50),
        );
        assert!(client.latency < server.latency);
        assert!(server.phi_left_device);
    }

    #[test]
    fn client_plan_sends_fewer_identifying_bytes() {
        let client = client_side_plan(
            &bundle(),
            SimDuration::from_millis(3),
            SimDuration::from_millis(50),
        );
        let server = server_side_plan(
            &bundle(),
            SimDuration::from_millis(1),
            SimDuration::from_millis(50),
        );
        // De-identified bundles drop names/identifiers → smaller.
        assert!(client.bytes_sent < server.bytes_sent);
    }

    #[test]
    fn slow_client_can_lose_on_latency() {
        // A very weak device with huge compute cost loses on time (but
        // still wins on privacy) — the trade-off E10 sweeps.
        let client = client_side_plan(
            &bundle(),
            SimDuration::from_secs(2),
            SimDuration::from_millis(50),
        );
        let server = server_side_plan(
            &bundle(),
            SimDuration::from_millis(1),
            SimDuration::from_millis(50),
        );
        assert!(client.latency > server.latency);
        assert!(!client.phi_left_device);
    }
}
