//! The enhanced client SDK (§III-A, Fig. 4).
//!
//! "We provide enhanced clients which offer additional functionality for
//! client machines … These enhanced clients provide features such as
//! caching, data analytics, and encryption." Clients can also "perform
//! processing and analysis while disconnected from servers" and
//! "anonymize the data … before sending information to servers".
//!
//! * [`sdk`] — the [`sdk::EnhancedClient`]: client-side cache, client-side
//!   encryption, client-side anonymization, offline operation with a
//!   replay queue, and latency accounting against the simulated clock.
//! * [`services`] — the external AI-service registry (§III): simulated
//!   NLU/speech/vision services with drifting latency and availability,
//!   response-time tracking, accuracy tests, user feedback, and
//!   best-service selection.
//! * [`offload`] — client-side vs server-side processing comparisons
//!   (E10): where should anonymization and analytics run?

#![forbid(unsafe_code)]

pub mod offload;
pub mod sdk;
pub mod services;
