//! The trusted healthcare data analytics cloud platform.
//!
//! This crate is the paper's *system*: it wires every substrate —
//! trusted infrastructure ([`hc_attest`], [`hc_cloudsim`]), secure data
//! management ([`hc_crypto`], [`hc_storage`], [`hc_ingest`]), privacy
//! management ([`hc_access`], [`hc_privacy`]), provenance ([`hc_ledger`])
//! and analytics ([`hc_analytics`], [`hc_kb`]) — into one
//! [`platform::HealthCloudPlatform`] exposing the end-to-end compliant
//! flows of the paper:
//!
//! * register a tenant, users (RBAC-scoped) and patient devices;
//! * ingest encrypted FHIR bundles through the asynchronous pipeline
//!   (validate → scan → consent → de-identify → store → anchor);
//! * attest hosts/VMs/containers before running workloads on them;
//! * run the bioinformatics studies of §V (JMF repositioning, DELT) over
//!   consented, de-identified data;
//! * export (anonymized or consented-full), audit, and forget.
//!
//! # Examples
//!
//! ```
//! use hc_core::platform::{HealthCloudPlatform, PlatformConfig};
//!
//! let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
//! let device = platform.register_patient_device(hc_common::id::PatientId::from_raw(1));
//! let bundle = hc_core::platform::demo_bundle("p1", true);
//! let url = platform.upload(&device, &bundle).unwrap();
//! platform.process_ingestion();
//! assert!(platform.ingestion_status(url).unwrap().is_stored());
//! ```

#![forbid(unsafe_code)]

pub mod compliance;
pub mod monitoring;
pub mod platform;
pub mod serving;
pub mod studies;
