//! The logging and monitoring service (Fig. 1).
//!
//! "The Logging and Monitoring service provides secure log and monitoring
//! data for both infrastructure services as well as for platform
//! services." This module aggregates the per-subsystem counters into one
//! scrapeable [`HealthReport`] and evaluates simple compliance alarms
//! over it (the paper's §IV-E audit posture).

use hc_ingest::pipeline::PipelineStats;
use hc_ledger::chain::ChainStatus;
use hc_resilience::HealthState;
use hc_telemetry::TelemetrySnapshot;

use crate::platform::HealthCloudPlatform;

/// A point-in-time platform health snapshot.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Ingestion pipeline counters.
    pub pipeline: PipelineStats,
    /// Ledger height (committed blocks).
    pub ledger_height: u64,
    /// Whether the chain verifies.
    pub ledger_status: ChainStatus,
    /// (attestations, rejections) so far.
    pub attestation: (u64, u64),
    /// KMS audit events recorded.
    pub kms_events: usize,
    /// API decisions recorded by the gateway.
    pub gateway_decisions: usize,
    /// API denials among them.
    pub gateway_denials: usize,
    /// Live (non-tombstoned) records in the data lake.
    pub live_records: usize,
    /// Aggregate platform health (refreshed at collection time).
    pub health: HealthState,
    /// Simulated time elapsed since boot, in milliseconds.
    pub uptime_ms: u64,
}

/// Alarms raised by compliance monitoring.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Alarm {
    /// The provenance chain failed verification — an integrity incident.
    LedgerCorrupt(String),
    /// More than half of recent API decisions were denials.
    ExcessiveDenials {
        /// Denials observed.
        denials: usize,
        /// Total decisions.
        total: usize,
    },
    /// Malware detections occurred.
    MalwareDetected(u64),
    /// The platform is running in degraded mode.
    DegradedOperation {
        /// The impaired subsystems.
        subsystems: Vec<String>,
    },
    /// A critical subsystem is down; the platform is unavailable.
    PlatformUnavailable,
    /// The ingestion dead-letter queue holds a backlog of failed jobs.
    DeadLetterBacklog {
        /// Jobs currently parked in the DLQ (`ingest.dlq.depth`).
        depth: i64,
    },
    /// A circuit breaker is currently open — a dependency is being
    /// shielded from further calls.
    BreakerOpen {
        /// The breaker's registered name.
        name: String,
    },
    /// Anchor transactions are buffered awaiting ledger reachability.
    AnchorsBuffered {
        /// Anchors waiting for replay (`ingest.anchors.buffered`).
        count: i64,
    },
}

/// Collects a health report from a running platform.
pub fn collect(platform: &HealthCloudPlatform) -> HealthReport {
    let (ledger_height, ledger_status) = {
        let provenance = platform.provenance.lock();
        (
            provenance.ledger().height(),
            provenance.ledger().verify_chain(),
        )
    };
    let gateway_log_len;
    let gateway_denials;
    {
        let gateway = platform.gateway.lock();
        let log = gateway.audit_log();
        gateway_log_len = log.len();
        gateway_denials = log.iter().filter(|r| !r.allowed).count();
    }
    // refresh_health takes the lake/provenance locks itself, so it must
    // run before the struct literal below keeps guards alive.
    let health = platform.refresh_health();
    let live_records = platform.lake.lock().live_count();
    HealthReport {
        pipeline: platform.pipeline.stats(),
        ledger_height,
        ledger_status,
        attestation: platform.attestation.lock().stats(),
        kms_events: platform.kms.audit_log().len(),
        gateway_decisions: gateway_log_len,
        gateway_denials,
        live_records,
        health,
        uptime_ms: platform.clock.now().as_millis(),
    }
}

/// Evaluates the alarm rules over a report.
pub fn alarms(report: &HealthReport) -> Vec<Alarm> {
    let mut alarms = Vec::new();
    if let ChainStatus::CorruptAt { height, reason } = &report.ledger_status {
        alarms.push(Alarm::LedgerCorrupt(format!("height {height}: {reason}")));
    }
    if report.gateway_decisions >= 10 && report.gateway_denials * 2 > report.gateway_decisions {
        alarms.push(Alarm::ExcessiveDenials {
            denials: report.gateway_denials,
            total: report.gateway_decisions,
        });
    }
    if report.pipeline.rejected_malware > 0 {
        alarms.push(Alarm::MalwareDetected(report.pipeline.rejected_malware));
    }
    match &report.health {
        HealthState::Healthy => {}
        HealthState::Degraded(subsystems) => alarms.push(Alarm::DegradedOperation {
            subsystems: subsystems.clone(),
        }),
        HealthState::Unavailable => alarms.push(Alarm::PlatformUnavailable),
    }
    alarms
}

/// Dead-letter depth at or above this raises [`Alarm::DeadLetterBacklog`].
pub const DLQ_BACKLOG_THRESHOLD: i64 = 3;

/// Evaluates the alarm rules over a report *and* a telemetry snapshot.
///
/// Extends [`alarms`] with rules that read the metrics registry
/// (see [`crate::platform::HealthCloudPlatform::telemetry_snapshot`]):
///
/// * `ingest.dlq.depth` ≥ [`DLQ_BACKLOG_THRESHOLD`] →
///   [`Alarm::DeadLetterBacklog`];
/// * any `resilience.breaker.<name>.state` gauge at
///   `Open` → [`Alarm::BreakerOpen`];
/// * `ingest.anchors.buffered` > 0 → [`Alarm::AnchorsBuffered`].
pub fn alarms_with_telemetry(
    report: &HealthReport,
    telemetry: &TelemetrySnapshot,
) -> Vec<Alarm> {
    let mut raised = alarms(report);
    if let Some(depth) = telemetry.gauge("ingest.dlq.depth") {
        if depth >= DLQ_BACKLOG_THRESHOLD {
            raised.push(Alarm::DeadLetterBacklog { depth });
        }
    }
    for gauge in &telemetry.gauges {
        let Some(rest) = gauge.name.strip_prefix("resilience.breaker.") else {
            continue;
        };
        let Some(name) = rest.strip_suffix(".state") else {
            continue;
        };
        if gauge.value == hc_resilience::BreakerState::Open.as_gauge() {
            raised.push(Alarm::BreakerOpen { name: name.to_string() });
        }
    }
    if let Some(count) = telemetry.gauge("ingest.anchors.buffered") {
        if count > 0 {
            raised.push(Alarm::AnchorsBuffered { count });
        }
    }
    raised
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{demo_bundle, PlatformConfig};
    use hc_common::id::PatientId;

    #[test]
    fn healthy_platform_reports_cleanly() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let device = platform.register_patient_device(PatientId::from_raw(1));
        platform.upload(&device, &demo_bundle("p1", true)).unwrap();
        platform.process_ingestion();
        let report = collect(&platform);
        assert_eq!(report.pipeline.stored, 1);
        assert_eq!(report.live_records, 1);
        assert!(alarms(&report).is_empty(), "{:?}", alarms(&report));
    }

    #[test]
    fn ledger_corruption_raises_alarm() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig {
            ledger_batch: 1,
            ..PlatformConfig::default()
        });
        let device = platform.register_patient_device(PatientId::from_raw(1));
        platform.upload(&device, &demo_bundle("p1", true)).unwrap();
        platform.process_ingestion();
        {
            let mut provenance = platform.provenance.lock();
            provenance.ledger_mut().blocks_mut()[0].transactions[0].payload = b"{}".to_vec();
        }
        let report = collect(&platform);
        let raised = alarms(&report);
        assert!(matches!(raised.first(), Some(Alarm::LedgerCorrupt(_))));
    }

    #[test]
    fn health_state_machine_degrades_and_recovers() {
        use hc_common::fault::{FaultInjector, FaultKind, FaultSpec};
        use hc_ingest::pipeline::fault_points;
        use hc_resilience::SubsystemStatus;

        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let injector = FaultInjector::new(platform.clock.clone(), 0xAB);
        platform
            .pipeline
            .enable_resilience(platform.clock.clone(), injector.clone(), 77);
        assert_eq!(platform.refresh_health(), hc_resilience::HealthState::Healthy);

        // Partition the provenance ledger mid-ingestion: anchors buffer,
        // the pipeline keeps storing, and the platform reports Degraded.
        injector.schedule(
            fault_points::LEDGER_PARTITION,
            FaultSpec::always(FaultKind::NetworkPartition),
        );
        let device = platform.register_patient_device(PatientId::from_raw(5));
        platform.upload(&device, &demo_bundle("p5", true)).unwrap();
        platform.process_ingestion();
        let report = collect(&platform);
        assert_eq!(report.pipeline.stored, 1);
        assert_eq!(
            report.health,
            hc_resilience::HealthState::Degraded(vec!["ingest".into()])
        );
        assert!(alarms(&report).contains(&Alarm::DegradedOperation {
            subsystems: vec!["ingest".into()]
        }));

        // A critical subsystem going down escalates to Unavailable.
        platform.set_subsystem_status("storage", SubsystemStatus::Down);
        assert_eq!(
            platform.health_state(),
            hc_resilience::HealthState::Unavailable
        );
        platform.set_subsystem_status("storage", SubsystemStatus::Up);

        // Heal the partition, replay the buffered anchors: Healthy again.
        injector.heal(fault_points::LEDGER_PARTITION);
        assert!(platform.pipeline.replay_buffered_anchors() > 0);
        let report = collect(&platform);
        assert_eq!(report.health, hc_resilience::HealthState::Healthy);
        assert!(alarms(&report).is_empty(), "{:?}", alarms(&report));
    }

    #[test]
    fn telemetry_snapshot_feeds_alarm_rules() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let device = platform.register_patient_device(PatientId::from_raw(1));
        platform.upload(&device, &demo_bundle("p1", true)).unwrap();
        platform.process_ingestion();
        let report = collect(&platform);
        let snap = platform.telemetry_snapshot();
        assert!(
            !snap.is_empty(),
            "bootstrap wires the pipeline into the registry"
        );
        assert!(alarms_with_telemetry(&report, &snap).is_empty());

        // Simulate a DLQ backlog and an open breaker via a synthetic
        // registry: both telemetry-only rules must fire.
        let registry = hc_telemetry::Registry::new();
        registry.gauge("ingest.dlq.depth").set(DLQ_BACKLOG_THRESHOLD);
        registry
            .gauge("resilience.breaker.ledger.state")
            .set(hc_resilience::BreakerState::Open.as_gauge());
        registry.gauge("ingest.anchors.buffered").set(2);
        let raised = alarms_with_telemetry(&report, &registry.snapshot());
        assert!(raised.contains(&Alarm::DeadLetterBacklog {
            depth: DLQ_BACKLOG_THRESHOLD
        }));
        assert!(raised.contains(&Alarm::BreakerOpen {
            name: "ledger".into()
        }));
        assert!(raised.contains(&Alarm::AnchorsBuffered { count: 2 }));
    }

    #[test]
    fn malware_rejection_raises_alarm() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let device = platform.register_patient_device(PatientId::from_raw(1));
        let mut bundle = demo_bundle("p1", true);
        if let hc_fhir::resource::Resource::Patient(p) = &mut bundle.entries[0] {
            p.name = Some(hc_fhir::types::HumanName::new(
                String::from_utf8_lossy(hc_ingest::scanner::TEST_SIGNATURE).to_string(),
                "J",
            ));
        }
        platform.upload(&device, &bundle).unwrap();
        platform.process_ingestion();
        let report = collect(&platform);
        assert!(alarms(&report).contains(&Alarm::MalwareDetected(1)));
    }
}
