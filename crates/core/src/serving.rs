//! The overload-protected serving path and its closed-loop driver.
//!
//! This module is the platform's *front door under pressure*: it
//! composes the `hc-resilience` overload machinery — token-bucket
//! [`AdmissionController`] with per-tier reserves, hysteretic
//! [`LoadShedder`], deadline propagation via [`TimeoutBudget`], and the
//! shed-rate-driven [`DegradedMode`] controller — around the sharded
//! read path (`ShardedCache` → origin) with sampled provenance recorded
//! to the PBFT ledger. The [`run_overload`] driver then closes the loop:
//! a seeded population of simulated users (diurnal [`LoadCurve`], flash
//! crowds, Zipf keys) offers traffic, the stack admits/sheds/serves on
//! the simulated clock, and the report carries per-tier latency
//! percentiles, goodput and shed rates that the E19 experiment asserts
//! SLOs against.
//!
//! # The fluid-queue service model
//!
//! Serving capacity is modelled as `cores` parallel workers draining a
//! shared backlog of outstanding work (nanoseconds of service time).
//! Each admitted request appends its service cost (cache hit vs. origin
//! miss) to the backlog; queue delay is `backlog / cores`; every tick
//! drains `cores × tick` of backlog. The origin is a second, smaller
//! fluid queue: every miss dispatches a fetch (adding `origin_fetch_cost`
//! to the origin backlog) and the miss's service cost includes the
//! origin's *current* queue delay — a serving worker is blocked for the
//! whole fetch. Cache fills are *asynchronous*: a miss inserts its key
//! only once the simulated fetch completes, so while a hot key's fill is
//! in flight every further read of it also misses. Together these give
//! cold-start miss storms their real shape: the herd of duplicate
//! fetches saturates the origin, origin delay inflates miss cost, which
//! backs up the serving queue and delays the very fills that would end
//! the storm. This deterministic fluid approximation stays bit-identical
//! across hosts (no wall clock, no OS scheduler).
//!
//! # Why the ledger runs on its own clock
//!
//! PBFT consensus *advances* its `SimClock` to model network rounds. The
//! provenance plane is asynchronous by design (batched, sampled); if it
//! shared the serving clock, every committed batch would inject
//! consensus latency into the read path's timeline. The stack therefore
//! drives the ledger on a private clock: provenance ordering is
//! preserved, serving timing is not distorted.

use hc_cache::fleet::{CacheFleet, FleetConfig, FleetRead};
use hc_cache::shard::ShardedCache;
use hc_cache::stats::CacheStats;
use hc_cloudsim::net::{Location, NetworkModel};
use hc_common::clock::{SimClock, SimDuration, SimInstant};
use hc_common::conc::{percentile, zipf_key_fast, LoadCurve};
use hc_common::rng::seeded_stream;
use hc_ledger::chain::Ledger;
use hc_ledger::consensus::PbftCluster;
use hc_ledger::policy::ProvenancePolicy;
use hc_ledger::provenance::{ProvenanceAction, ProvenanceEvent, ProvenanceNetwork};
use hc_resilience::admission::{AdmissionController, Tier};
use hc_resilience::shed::{DegradedConfig, DegradedMode, LoadShedder, ShedConfig, ShedReason};
use hc_resilience::{DegradationTracker, HealthState, SubsystemStatus, TimeoutBudget};
use hc_telemetry::{Counter, Gauge, Registry};
use rand::Rng;

/// Which overload defences are armed — the experiment's independent
/// variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protection {
    /// No defences: every request is queued and served, however late.
    /// The baseline that demonstrably violates SLOs under overload.
    None,
    /// Admission control only: the token bucket caps the sustained rate,
    /// but nothing reacts to queue growth from miss storms.
    AdmissionOnly,
    /// Admission control, queue-delay load shedding and deadline-based
    /// early shedding.
    Full,
}

impl Protection {
    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            Protection::None => "none",
            Protection::AdmissionOnly => "admission",
            Protection::Full => "full",
        }
    }
}

/// Configuration of the optional distributed cache fleet tier: a
/// replicated, region-aware [`CacheFleet`] probed between the local
/// cache and the origin. Local miss → fleet read (paying the replica
/// round trip on the calibrated network) → origin only when the fleet
/// misses too. `None` (the default) keeps the PR-6 single-process path
/// bit-identical.
#[derive(Clone, Debug)]
pub struct FleetTierConfig {
    /// Regions hosting cache nodes.
    pub regions: usize,
    /// Cache nodes per region.
    pub nodes_per_region: usize,
    /// Replicas per key.
    pub replication: usize,
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Entry capacity of each fleet node.
    pub node_capacity: usize,
    /// Lock stripes inside each fleet node (non-zero power of two).
    pub node_shards: usize,
    /// Where the serving front door sits on the topology.
    pub client: Location,
    /// Latency/bandwidth model for fleet traffic.
    pub network: NetworkModel,
    /// Fault schedule: `(node, crash_at, restore_at)` windows applied
    /// deterministically as the simulated clock passes them.
    pub crash_windows: Vec<(usize, SimInstant, SimInstant)>,
    /// Fault schedule: `(region, cut_at, heal_at)` partition windows.
    pub partition_windows: Vec<(usize, SimInstant, SimInstant)>,
}

impl Default for FleetTierConfig {
    fn default() -> Self {
        FleetTierConfig {
            regions: 3,
            nodes_per_region: 2,
            replication: 3,
            vnodes: 128,
            node_capacity: 4096,
            node_shards: 8,
            // Region 0, on a host of its own next to the region's nodes.
            client: Location::new(0, 99),
            network: NetworkModel::default(),
            crash_windows: Vec::new(),
            partition_windows: Vec::new(),
        }
    }
}

/// Static configuration of one serving stack.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Parallel service capacity draining the backlog.
    pub cores: u32,
    /// Service cost of a cache hit.
    pub hit_cost: SimDuration,
    /// Base service cost of a miss: the origin round trip + fill at an
    /// *idle* origin. The origin's current queue delay is added on top,
    /// since a serving worker stays blocked for the whole fetch.
    pub miss_cost: SimDuration,
    /// Origin-side work per fetch (added to the origin backlog on every
    /// dispatched miss).
    pub origin_fetch_cost: SimDuration,
    /// Origin-side parallelism draining fetch work.
    pub origin_cores: u32,
    /// Total cache capacity (entries) across all shards.
    pub cache_capacity: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Admission bucket refill rate (requests/simulated second).
    pub admission_rate: f64,
    /// Admission bucket depth.
    pub admission_burst: f64,
    /// Load-shedder thresholds and hysteresis.
    pub shed: ShedConfig,
    /// Degraded-mode windowing and hysteresis.
    pub degraded: DegradedConfig,
    /// Per-tier latency SLOs, indexed by [`Tier::index`]; each request's
    /// deadline budget starts from its tier's SLO.
    pub tier_slos: [SimDuration; 3],
    /// Record one in this many served reads to the provenance ledger
    /// (0 disables the ledger entirely).
    pub provenance_sample: u64,
    /// Sampling divisor while degraded (coarser, to shed ledger load
    /// along with everything else).
    pub degraded_provenance_sample: u64,
    /// Provenance batch size (events per consensus round).
    pub provenance_batch: usize,
    /// Which defences are armed.
    pub protection: Protection,
    /// Deterministic seed for shard routing.
    pub seed: u64,
    /// Optional distributed cache fleet between the local cache and the
    /// origin. `None` preserves the single-process serving path exactly.
    pub fleet: Option<FleetTierConfig>,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            cores: 8,
            hit_cost: SimDuration::from_micros(50),
            miss_cost: SimDuration::from_micros(800),
            origin_fetch_cost: SimDuration::from_millis(1),
            origin_cores: 8,
            cache_capacity: 4096,
            cache_shards: 8,
            admission_rate: 60_000.0,
            admission_burst: 2_000.0,
            shed: ShedConfig::default(),
            degraded: DegradedConfig::default(),
            tier_slos: [
                SimDuration::from_millis(250),
                SimDuration::from_millis(1_000),
                SimDuration::from_millis(10_000),
            ],
            provenance_sample: 1024,
            degraded_provenance_sample: 16_384,
            provenance_batch: 64,
            protection: Protection::Full,
            seed: 0x5E12_71E5,
            fleet: None,
        }
    }
}

/// The outcome of one request offered to the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Served end to end.
    Served {
        /// Queue delay plus service time.
        latency: SimDuration,
        /// Whether the cache answered (vs. an origin miss).
        hit: bool,
        /// Whether the latency met the tier's SLO.
        within_slo: bool,
    },
    /// Dropped before consuming service capacity.
    Shed(ShedReason),
}

impl RequestOutcome {
    /// Whether the request was served (late or not).
    pub fn is_served(self) -> bool {
        matches!(self, RequestOutcome::Served { .. })
    }
}

/// `slo.*` registry handles.
struct SloInstruments {
    offered: Counter,
    served: Counter,
    served_within: Counter,
    shed_admission: Counter,
    shed_overload: Counter,
    shed_deadline: Counter,
    violations: [Counter; 3],
    queue_delay_us: Gauge,
    origin_delay_us: Gauge,
}

/// The fleet tier plus its fault schedule's progress flags.
struct FleetTier {
    fleet: CacheFleet<u64, u64>,
    client: Location,
    crash_windows: Vec<(usize, SimInstant, SimInstant)>,
    partition_windows: Vec<(usize, SimInstant, SimInstant)>,
    /// Per crash window: (crash applied, restore applied).
    crash_state: Vec<(bool, bool)>,
    /// Per partition window: (cut applied, heal applied).
    partition_state: Vec<(bool, bool)>,
}

impl FleetTier {
    fn new(cfg: &FleetTierConfig, clock: SimClock, seed: u64) -> Self {
        let fleet_cfg = FleetConfig {
            replication: cfg.replication,
            vnodes: cfg.vnodes,
            node_capacity: cfg.node_capacity,
            node_shards: cfg.node_shards,
            seed: hc_common::rng::split(seed, 0xF1EE7),
            network: cfg.network,
            ..FleetConfig::default()
        };
        let fleet =
            CacheFleet::with_topology(fleet_cfg, clock, cfg.regions, cfg.nodes_per_region);
        FleetTier {
            fleet,
            client: cfg.client,
            crash_state: vec![(false, false); cfg.crash_windows.len()],
            partition_state: vec![(false, false); cfg.partition_windows.len()],
            crash_windows: cfg.crash_windows.clone(),
            partition_windows: cfg.partition_windows.clone(),
        }
    }

    /// Fires every crash/restore and cut/heal whose scheduled instant
    /// the clock has passed. Idempotent per window edge.
    fn apply_schedule(&mut self, now: SimInstant) {
        for i in 0..self.crash_windows.len() {
            let (node, start, end) = self.crash_windows[i]; // hc-lint: allow(panic-index)
            let (crashed, restored) = self.crash_state[i]; // hc-lint: allow(panic-index)
            if !crashed && now >= start {
                self.fleet.crash_node(node);
                self.crash_state[i].0 = true; // hc-lint: allow(panic-index)
            } else if crashed && !restored && now >= end {
                self.fleet.restore_node(node);
                self.crash_state[i].1 = true; // hc-lint: allow(panic-index)
            }
        }
        for i in 0..self.partition_windows.len() {
            let (region, start, end) = self.partition_windows[i]; // hc-lint: allow(panic-index)
            let (cut, healed) = self.partition_state[i]; // hc-lint: allow(panic-index)
            if !cut && now >= start {
                self.fleet.partition_region(region);
                self.partition_state[i].0 = true; // hc-lint: allow(panic-index)
            } else if cut && !healed && now >= end {
                self.fleet.heal_region(region);
                self.partition_state[i].1 = true; // hc-lint: allow(panic-index)
            }
        }
    }
}

/// Fleet-tier outcomes over a closed-loop run, carried by
/// [`OverloadReport`] when the fleet is configured.
#[derive(Clone, Copy, Debug)]
pub struct FleetReportStats {
    /// Fleet reads served by some replica.
    pub hits: u64,
    /// Fleet reads no replica could serve.
    pub misses: u64,
    /// `hits / (hits + misses)`.
    pub hit_ratio: f64,
    /// Probes that found a node dead or unreachable.
    pub probe_failures: u64,
    /// Probes suppressed by an open per-node circuit breaker.
    pub breaker_skips: u64,
    /// Stale or missing replica copies rewritten by read-repair.
    pub read_repairs: u64,
}

/// The overload-protected serving stack: admission → shedding → deadline
/// → sharded cache → origin, with degraded-mode tracking and sampled
/// ledger provenance.
pub struct ServingStack {
    clock: SimClock,
    cfg: ServingConfig,
    admission: AdmissionController,
    shedder: LoadShedder,
    degraded: DegradedMode,
    tracker: DegradationTracker,
    cache: ShardedCache<u64, u64, hc_cache::policy::LruCache<u64, u64>>,
    fleet: Option<FleetTier>,
    provenance: Option<ProvenanceNetwork>,
    /// Backlog of admitted-but-unserved work, in nanoseconds of service
    /// time across all cores.
    backlog_ns: u64,
    /// Outstanding origin-side fetch work, in nanoseconds across the
    /// origin's cores.
    origin_backlog_ns: u64,
    /// Origin fetches in flight, keyed by completion instant (min-heap:
    /// completion order is not arrival order once queue delays shift).
    /// The key lands in the cache only once its fetch completes.
    pending_fills: std::collections::BinaryHeap<std::cmp::Reverse<(SimInstant, u64)>>,
    peak_queue_delay: SimDuration,
    peak_origin_delay: SimDuration,
    served: u64,
    provenance_recorded: u64,
    provenance_errors: u64,
    instruments: Option<SloInstruments>,
}

impl ServingStack {
    /// A stack on `clock` with the given configuration. The provenance
    /// ledger (when enabled) runs on a private clock — see the module
    /// docs.
    pub fn new(clock: SimClock, cfg: ServingConfig) -> Self {
        let admission =
            AdmissionController::new(clock.clone(), cfg.admission_rate, cfg.admission_burst);
        let shedder = LoadShedder::new(clock.clone(), cfg.shed);
        let degraded = DegradedMode::new(clock.clone(), cfg.degraded);
        let cache = ShardedCache::lru(cfg.cache_capacity, cfg.cache_shards.max(1), cfg.seed);
        let fleet = cfg
            .fleet
            .as_ref()
            .map(|fc| FleetTier::new(fc, clock.clone(), cfg.seed));
        let provenance = (cfg.provenance_sample > 0).then(|| {
            let ledger_clock = SimClock::new();
            let cluster = PbftCluster::new(4, SimDuration::from_millis(1), ledger_clock.clone())
                .expect("4-node PBFT cluster is always constructible"); // hc-lint: allow(panic-expect)
            let mut ledger = Ledger::new(cluster, ledger_clock.clone());
            ledger.install_policy(Box::new(ProvenancePolicy));
            ProvenanceNetwork::new(ledger, ledger_clock, cfg.provenance_batch.max(1))
        });
        let mut tracker = DegradationTracker::new();
        tracker.register("serving", true);
        ServingStack {
            clock,
            cfg,
            admission,
            shedder,
            degraded,
            tracker,
            cache,
            fleet,
            provenance,
            backlog_ns: 0,
            origin_backlog_ns: 0,
            pending_fills: std::collections::BinaryHeap::new(),
            peak_queue_delay: SimDuration::ZERO,
            peak_origin_delay: SimDuration::ZERO,
            served: 0,
            provenance_recorded: 0,
            provenance_errors: 0,
            instruments: None,
        }
    }

    /// Mirrors the stack into `registry`: the `admission.*` and `shed.*`
    /// families from the underlying controllers plus the `slo.*` family
    /// (offered/served/within, shed-by-reason, per-tier violations, and
    /// the current queue delay).
    pub fn instrument(&mut self, registry: &Registry) {
        self.admission.instrument(registry);
        self.shedder.instrument(registry);
        self.degraded.instrument(registry);
        if let Some(tier) = self.fleet.as_mut() {
            tier.fleet.instrument(registry);
        }
        let inst = SloInstruments {
            offered: registry.counter("slo.offered"),
            served: registry.counter("slo.served"),
            served_within: registry.counter("slo.served_within"),
            shed_admission: registry.counter("slo.shed.admission"),
            shed_overload: registry.counter("slo.shed.overload"),
            shed_deadline: registry.counter("slo.shed.deadline"),
            violations: [
                registry.counter("slo.clinical.violations"),
                registry.counter("slo.interactive.violations"),
                registry.counter("slo.batch.violations"),
            ],
            queue_delay_us: registry.gauge("slo.queue_delay_us"),
            origin_delay_us: registry.gauge("slo.origin_delay_us"),
        };
        self.instruments = Some(inst);
    }

    /// The current queue delay implied by the backlog.
    pub fn queue_delay(&self) -> SimDuration {
        SimDuration::from_nanos(self.backlog_ns / u64::from(self.cfg.cores.max(1)))
    }

    /// The origin's current queue delay: what a fetch dispatched now
    /// waits behind the outstanding fetch backlog.
    pub fn origin_delay(&self) -> SimDuration {
        SimDuration::from_nanos(self.origin_backlog_ns / u64::from(self.cfg.origin_cores.max(1)))
    }

    /// Offers one `tier` request for `key`, deciding admission, shedding
    /// and deadline feasibility before spending service capacity.
    pub fn request(&mut self, tier: Tier, key: u64) -> RequestOutcome {
        self.degraded.roll_window();
        let budget = TimeoutBudget::starting_now(&self.clock, self.cfg.tier_slos[tier.index()]); // hc-lint: allow(panic-index)
        let queue_delay = self.queue_delay();
        let origin_delay = self.origin_delay();
        if let Some(inst) = &self.instruments {
            inst.offered.inc();
            inst.queue_delay_us.set((queue_delay.as_nanos() / 1_000) as i64);
            inst.origin_delay_us.set((origin_delay.as_nanos() / 1_000) as i64);
        }

        if self.cfg.protection != Protection::None
            && !self.admission.try_admit(tier).is_admitted()
        {
            return self.shed(ShedReason::Admission);
        }
        if self.cfg.protection == Protection::Full {
            self.shedder.observe(queue_delay);
            if self.shedder.should_shed(tier) {
                return self.shed(ShedReason::Overload);
            }
        }

        // Probe the cache before the deadline check: hit vs. miss decides
        // the true service cost (a miss waits out the origin's queue),
        // and a deadline-aware server sheds exactly the requests whose
        // known cost cannot fit in the remaining budget. On a local miss
        // the fleet (when configured) is probed next: a fleet hit pays
        // the serving replica's round trip; a fleet miss pays the probe
        // fan-out before falling through to the origin.
        let local_hit = self.cache.get(&key).is_some();
        let mut fleet_served = false;
        let cost = if local_hit {
            self.cfg.hit_cost
        } else if let Some(tier_state) = self.fleet.as_mut() {
            match tier_state.fleet.read(&key, tier_state.client, &budget) {
                FleetRead::Hit { cost: rtt, .. } => {
                    fleet_served = true;
                    // The response carried the value, so the local cache
                    // warms synchronously — no origin fetch to wait on.
                    self.cache.put(key, 1);
                    self.cfg.hit_cost.saturating_add(rtt)
                }
                FleetRead::Miss { cost: probe } => self
                    .cfg
                    .miss_cost
                    .saturating_add(origin_delay)
                    .saturating_add(probe),
            }
        } else {
            self.cfg.miss_cost.saturating_add(origin_delay)
        };
        let hit = local_hit || fleet_served;
        let latency = queue_delay.saturating_add(cost);
        if self.cfg.protection == Protection::Full {
            // Deadline propagation: the service hop inherits what is
            // left of the tier SLO; shed now rather than serve a
            // guaranteed-late answer (or burn an origin fetch on one).
            let hop = budget.child(&self.clock, self.cfg.tier_slos[tier.index()]); // hc-lint: allow(panic-index)
            if !hop.admits(&self.clock, latency) {
                return self.shed(ShedReason::Deadline);
            }
        }

        self.backlog_ns = self.backlog_ns.saturating_add(cost.as_nanos());
        self.peak_queue_delay = self.peak_queue_delay.max(self.queue_delay());
        if !hit {
            // The fetch is dispatched (asynchronously) on arrival and
            // queues at the origin; the fill lands only when it
            // completes, so until then further reads of this key keep
            // missing (thundering herd), and every duplicate fetch adds
            // origin load that delays the fills further.
            self.origin_backlog_ns = self
                .origin_backlog_ns
                .saturating_add(self.cfg.origin_fetch_cost.as_nanos());
            self.peak_origin_delay = self.peak_origin_delay.max(self.origin_delay());
            let ready = self
                .clock
                .now()
                .saturating_add(self.cfg.miss_cost.saturating_add(origin_delay));
            self.pending_fills.push(std::cmp::Reverse((ready, key)));
        }
        let within_slo = budget.admits(&self.clock, latency);
        self.served += 1;
        self.record_provenance(key);
        self.degraded.on_request(false);
        self.sync_health();
        if let Some(inst) = &self.instruments {
            inst.served.inc();
            if within_slo {
                inst.served_within.inc();
            } else {
                inst.violations[tier.index()].inc(); // hc-lint: allow(panic-index)
            }
        }
        RequestOutcome::Served { latency, hit, within_slo }
    }

    /// Advances the fluid queue by one tick: `cores × tick` of backlog is
    /// drained, origin fetches whose completion time has passed land in
    /// the cache, and the degraded-mode window rolls even during silence.
    pub fn drain(&mut self, tick: SimDuration) {
        let drained = tick.as_nanos().saturating_mul(u64::from(self.cfg.cores.max(1)));
        self.backlog_ns = self.backlog_ns.saturating_sub(drained);
        let origin_drained = tick
            .as_nanos()
            .saturating_mul(u64::from(self.cfg.origin_cores.max(1)));
        self.origin_backlog_ns = self.origin_backlog_ns.saturating_sub(origin_drained);
        let now = self.clock.now();
        while let Some(&std::cmp::Reverse((ready, key))) = self.pending_fills.peek() {
            if ready > now {
                break;
            }
            self.cache.put(key, 1);
            // An origin fetch warms the fleet too: the fill propagates
            // to every live replica of the key.
            if let Some(tier) = self.fleet.as_mut() {
                tier.fleet.fill(&key, &1, 1, tier.client);
            }
            self.pending_fills.pop();
        }
        if let Some(tier) = self.fleet.as_mut() {
            tier.apply_schedule(now);
            tier.fleet.tick(now);
        }
        self.degraded.roll_window();
        self.sync_health();
    }

    fn shed(&mut self, reason: ShedReason) -> RequestOutcome {
        self.degraded.on_request(true);
        self.sync_health();
        if let Some(inst) = &self.instruments {
            match reason {
                ShedReason::Admission => inst.shed_admission.inc(),
                ShedReason::Overload => inst.shed_overload.inc(),
                ShedReason::Deadline => inst.shed_deadline.inc(),
            }
        }
        RequestOutcome::Shed(reason)
    }

    /// Samples one in N served reads into the provenance ledger; the
    /// divisor coarsens while degraded so the audit plane sheds load in
    /// sympathy with the serving plane.
    fn record_provenance(&mut self, key: u64) {
        let Some(net) = self.provenance.as_mut() else {
            return;
        };
        let divisor = if self.degraded.is_degraded() {
            self.cfg.degraded_provenance_sample.max(1)
        } else {
            self.cfg.provenance_sample.max(1)
        };
        if !self.served.is_multiple_of(divisor) {
            return;
        }
        let event = ProvenanceEvent {
            record: hc_common::id::ReferenceId::from_raw(u128::from(key)),
            data_hash: hc_crypto::sha256::hash(&key.to_le_bytes()),
            action: ProvenanceAction::Accessed,
            actor: "serving-path".to_owned(),
            detail: format!("sampled 1/{divisor}"),
        };
        match net.record(&event) {
            Ok(_) => self.provenance_recorded += 1,
            Err(_) => self.provenance_errors += 1,
        }
    }

    /// Folds the degraded-mode flag into the platform health tracker.
    fn sync_health(&mut self) {
        let status = if self.degraded.is_degraded() {
            SubsystemStatus::Degraded
        } else {
            SubsystemStatus::Up
        };
        if self.tracker.status_of("serving") != Some(status) {
            self.tracker.set_status("serving", status);
        }
    }

    /// Aggregate platform health as seen through the serving subsystem.
    pub fn health(&self) -> HealthState {
        self.tracker.state()
    }

    /// Whether the stack is currently in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_degraded()
    }

    /// Healthy↔degraded transitions so far.
    pub fn degraded_transitions(&self) -> u64 {
        self.degraded.transitions()
    }

    /// Cache statistics across all shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Highest queue delay observed so far.
    pub fn peak_queue_delay(&self) -> SimDuration {
        self.peak_queue_delay
    }

    /// Highest origin queue delay observed so far.
    pub fn peak_origin_delay(&self) -> SimDuration {
        self.peak_origin_delay
    }

    /// Fleet-tier outcomes so far, `None` when no fleet is configured.
    pub fn fleet_report(&self) -> Option<FleetReportStats> {
        self.fleet.as_ref().map(|tier| {
            let s = tier.fleet.stats();
            let reads = s.hits + s.misses;
            FleetReportStats {
                hits: s.hits,
                misses: s.misses,
                hit_ratio: if reads > 0 {
                    s.hits as f64 / reads as f64
                } else {
                    0.0
                },
                probe_failures: s.probe_failures,
                breaker_skips: s.breaker_skips,
                read_repairs: s.read_repairs,
            }
        })
    }

    /// Provenance events recorded (committed or pending) and record
    /// errors so far.
    pub fn provenance_counts(&self) -> (u64, u64) {
        (self.provenance_recorded, self.provenance_errors)
    }

    /// Flushes any pending provenance batch; returns the ledger height
    /// (0 when the ledger is disabled).
    pub fn finish_provenance(&mut self) -> u64 {
        let Some(net) = self.provenance.as_mut() else {
            return 0;
        };
        if net.pending_count() > 0 && net.flush().is_err() {
            self.provenance_errors += 1;
        }
        net.ledger().height()
    }
}

/// The offered-load side of the closed loop.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Concurrent-user population over time.
    pub curve: LoadCurve,
    /// Mean request rate per user per simulated second.
    pub req_per_user_per_sec: f64,
    /// Tier mix (clinical, interactive, batch); normalised internally.
    pub tier_mix: [f64; 3],
    /// Zipf keyspace size.
    pub keyspace: usize,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Tick length (arrival batching granularity).
    pub tick: SimDuration,
    /// Seed for the arrival/tier/key streams.
    pub seed: u64,
    /// Labelled report windows (start, end) in simulated time; stats are
    /// also always accumulated over the whole run.
    pub windows: Vec<(String, SimInstant, SimInstant)>,
}

/// Per-tier outcome statistics over one report segment.
#[derive(Clone, Debug, Default)]
pub struct TierStats {
    /// Requests offered.
    pub offered: u64,
    /// Requests served (late or not).
    pub served: u64,
    /// Requests served within the tier SLO.
    pub within_slo: u64,
    /// Sheds by reason, indexed admission/overload/deadline.
    pub shed: [u64; 3],
    /// Latency percentiles over served requests, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile latency, microseconds.
    pub p999_us: u64,
}

impl TierStats {
    /// Fraction of offered requests that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed.iter().sum::<u64>() as f64 / self.offered as f64
        }
    }

    /// Fraction of offered requests served within SLO.
    pub fn goodput_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.within_slo as f64 / self.offered as f64
        }
    }
}

/// One report segment (the whole run or a labelled window).
#[derive(Clone, Debug)]
pub struct SegmentReport {
    /// Segment label (`overall` for the whole run).
    pub label: String,
    /// Segment length in simulated seconds.
    pub span_secs: f64,
    /// Per-tier statistics, indexed by [`Tier::index`].
    pub tiers: [TierStats; 3],
}

impl SegmentReport {
    /// Requests offered across tiers.
    pub fn offered(&self) -> u64 {
        self.tiers.iter().map(|t| t.offered).sum()
    }

    /// Requests served within SLO across tiers.
    pub fn within_slo(&self) -> u64 {
        self.tiers.iter().map(|t| t.within_slo).sum()
    }

    /// SLO-meeting throughput over the segment, requests/second.
    pub fn goodput_rps(&self) -> f64 {
        if self.span_secs <= 0.0 {
            0.0
        } else {
            self.within_slo() as f64 / self.span_secs
        }
    }

    /// Shed fraction across tiers.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            return 0.0;
        }
        let shed: u64 = self.tiers.iter().map(|t| t.shed.iter().sum::<u64>()).sum();
        shed as f64 / offered as f64
    }
}

/// The closed-loop run's full report.
#[derive(Clone, Debug)]
pub struct OverloadReport {
    /// Which defences were armed.
    pub protection: Protection,
    /// Whole-run statistics.
    pub overall: SegmentReport,
    /// One segment per configured window, in configuration order.
    pub windows: Vec<SegmentReport>,
    /// Healthy↔degraded transitions over the run.
    pub degraded_transitions: u64,
    /// Whether the stack ended the run degraded.
    pub degraded_at_end: bool,
    /// Cache hit ratio over the run.
    pub cache_hit_ratio: f64,
    /// Highest queue delay reached, microseconds.
    pub peak_queue_delay_us: u64,
    /// Highest origin queue delay reached, microseconds.
    pub peak_origin_delay_us: u64,
    /// Provenance events recorded and ledger height after the final
    /// flush.
    pub provenance_recorded: u64,
    /// Ledger height after the final flush.
    pub ledger_height: u64,
    /// Peak concurrent users offered by the load curve.
    pub peak_users: f64,
    /// Fleet-tier outcomes, when a fleet was configured.
    pub fleet: Option<FleetReportStats>,
}

impl OverloadReport {
    /// The window segment with the given label, if configured.
    pub fn window(&self, label: &str) -> Option<&SegmentReport> {
        self.windows.iter().find(|w| w.label == label)
    }
}

/// Latency samples and outcome tallies for one segment under
/// accumulation.
#[derive(Default)]
struct SegmentAcc {
    tiers: [TierStats; 3],
    latencies: [Vec<u64>; 3],
}

impl SegmentAcc {
    fn record(&mut self, tier: Tier, outcome: RequestOutcome) {
        let t = &mut self.tiers[tier.index()]; // hc-lint: allow(panic-index)
        t.offered += 1;
        match outcome {
            RequestOutcome::Served { latency, within_slo, .. } => {
                t.served += 1;
                if within_slo {
                    t.within_slo += 1;
                }
                self.latencies[tier.index()].push(latency.as_nanos()); // hc-lint: allow(panic-index)
            }
            RequestOutcome::Shed(reason) => {
                let slot = match reason {
                    ShedReason::Admission => 0,
                    ShedReason::Overload => 1,
                    ShedReason::Deadline => 2,
                };
                t.shed[slot] += 1; // hc-lint: allow(panic-index)
            }
        }
    }

    fn finish(mut self, label: String, span: SimDuration) -> SegmentReport {
        for (stats, lat) in self.tiers.iter_mut().zip(self.latencies.iter_mut()) {
            lat.sort_unstable();
            stats.p50_us = percentile(lat, 0.50) / 1_000;
            stats.p99_us = percentile(lat, 0.99) / 1_000;
            stats.p999_us = percentile(lat, 0.999) / 1_000;
        }
        SegmentReport {
            label,
            span_secs: span.as_secs_f64(),
            tiers: self.tiers,
        }
    }
}

/// Draws a tier from the (normalised) mix with one uniform coin.
fn draw_tier<R: Rng + ?Sized>(rng: &mut R, mix: &[f64; 3]) -> Tier {
    let total: f64 = mix.iter().sum();
    let coin = rng.gen::<f64>() * if total > 0.0 { total } else { 1.0 };
    if coin < mix[0] { // hc-lint: allow(panic-index)
        Tier::Clinical
    } else if coin < mix[0] + mix[1] { // hc-lint: allow(panic-index)
        Tier::Interactive
    } else {
        Tier::Batch
    }
}

/// Runs the closed loop: each tick, the load curve dictates the
/// concurrent-user population, arrivals are drawn deterministically from
/// the seeded stream, offered to `stack`, and the clock advances while
/// the fluid queue drains. Returns the segmented report.
pub fn run_overload(mut stack: ServingStack, workload: &WorkloadConfig) -> OverloadReport {
    let mut rng = seeded_stream(workload.seed, 0xE19);
    let mut overall = SegmentAcc::default();
    let mut windows: Vec<SegmentAcc> = workload
        .windows
        .iter()
        .map(|_| SegmentAcc::default())
        .collect();
    let start = stack.clock.now();
    let end = start.saturating_add(workload.duration);
    let tick_secs = workload.tick.as_secs_f64();
    let mut carry = 0.0_f64;
    let protection = stack.cfg.protection;

    while stack.clock.now() < end {
        let now = stack.clock.now();
        let users = workload.curve.users_at(now);
        let expected = users * workload.req_per_user_per_sec * tick_secs + carry;
        let arrivals = expected.floor() as u64;
        carry = expected - arrivals as f64;
        for _ in 0..arrivals {
            let tier = draw_tier(&mut rng, &workload.tier_mix);
            let key = zipf_key_fast(&mut rng, workload.keyspace) as u64;
            let outcome = stack.request(tier, key);
            overall.record(tier, outcome);
            for (acc, (_, w_start, w_end)) in windows.iter_mut().zip(&workload.windows) {
                if now >= *w_start && now < *w_end {
                    acc.record(tier, outcome);
                }
            }
        }
        stack.clock.advance(workload.tick);
        stack.drain(workload.tick);
    }

    let ledger_height = stack.finish_provenance();
    let (provenance_recorded, _) = stack.provenance_counts();
    let fleet = stack.fleet_report();
    OverloadReport {
        protection,
        overall: overall.finish("overall".to_owned(), workload.duration),
        windows: windows
            .into_iter()
            .zip(&workload.windows)
            .map(|(acc, (label, w_start, w_end))| {
                acc.finish(label.clone(), w_end.duration_since(*w_start))
            })
            .collect(),
        degraded_transitions: stack.degraded_transitions(),
        degraded_at_end: stack.is_degraded(),
        cache_hit_ratio: stack.cache_stats().hit_ratio(),
        peak_queue_delay_us: stack.peak_queue_delay().as_nanos() / 1_000,
        peak_origin_delay_us: stack.peak_origin_delay().as_nanos() / 1_000,
        provenance_recorded,
        ledger_height,
        peak_users: workload.curve.peak_users(4096),
        fleet,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(protection: Protection) -> ServingConfig {
        ServingConfig {
            cores: 4,
            hit_cost: SimDuration::from_micros(50),
            miss_cost: SimDuration::from_micros(500),
            cache_capacity: 512,
            cache_shards: 4,
            admission_rate: 20_000.0,
            admission_burst: 500.0,
            tier_slos: [
                SimDuration::from_millis(50),
                SimDuration::from_millis(200),
                SimDuration::from_millis(2_000),
            ],
            provenance_sample: 64,
            degraded_provenance_sample: 1_024,
            provenance_batch: 8,
            protection,
            ..ServingConfig::default()
        }
    }

    fn workload(seed: u64, secs: u64, users: f64) -> WorkloadConfig {
        WorkloadConfig {
            curve: LoadCurve::new(users),
            req_per_user_per_sec: 1.0,
            tier_mix: [0.1, 0.6, 0.3],
            keyspace: 2_000,
            duration: SimDuration::from_secs(secs),
            tick: SimDuration::from_millis(1),
            seed,
            windows: Vec::new(),
        }
    }

    #[test]
    fn underload_serves_everything_within_slo() {
        let stack = ServingStack::new(SimClock::new(), small_cfg(Protection::Full));
        let report = run_overload(stack, &workload(7, 5, 2_000.0));
        assert!(report.overall.offered() > 5_000);
        assert_eq!(report.overall.shed_rate(), 0.0);
        for tier in &report.overall.tiers {
            assert_eq!(tier.served, tier.within_slo);
        }
        assert_eq!(report.degraded_transitions, 0);
        assert!(!report.degraded_at_end);
    }

    #[test]
    fn baseline_overload_violates_slo_protected_does_not() {
        // Offered work ≈ 3× capacity: the unprotected queue grows without
        // bound and the tail blows through every SLO; the protected stack
        // sheds to stay inside them.
        let offered = workload(11, 8, 40_000.0);
        let base = run_overload(
            ServingStack::new(SimClock::new(), small_cfg(Protection::None)),
            &offered,
        );
        let full = run_overload(
            ServingStack::new(SimClock::new(), small_cfg(Protection::Full)),
            &offered,
        );
        let base_clin = &base.overall.tiers[Tier::Clinical.index()];
        let full_clin = &full.overall.tiers[Tier::Clinical.index()];
        assert!(
            base_clin.p999_us > 50_000,
            "baseline clinical p999 {}µs should blow the 50ms SLO",
            base_clin.p999_us
        );
        assert!(
            full_clin.p999_us <= 50_000,
            "protected clinical p999 {}µs must stay inside the 50ms SLO",
            full_clin.p999_us
        );
        assert!(full.overall.shed_rate() > 0.1, "protection must be shedding");
        assert!(full.overall.goodput_rps() > base.overall.goodput_rps());
        // Tiered shedding: batch sheds at a higher rate than clinical.
        let full_batch = &full.overall.tiers[Tier::Batch.index()];
        assert!(full_batch.shed_rate() > full_clin.shed_rate());
    }

    #[test]
    fn sustained_overload_enters_degraded_and_recovers() {
        let mut wl = workload(13, 20, 0.0);
        wl.curve = LoadCurve::new(3_000.0).with_flash_crowd(
            SimInstant::from_nanos(SimDuration::from_secs(2).as_nanos()),
            SimInstant::from_nanos(SimDuration::from_secs(10).as_nanos()),
            12.0,
        );
        let report = run_overload(
            ServingStack::new(SimClock::new(), small_cfg(Protection::Full)),
            &wl,
        );
        assert_eq!(
            report.degraded_transitions, 2,
            "one clean enter + one clean exit, no flapping"
        );
        assert!(!report.degraded_at_end);
    }

    #[test]
    fn identical_seeds_reproduce_bit_identical_reports() {
        let wl = workload(99, 6, 30_000.0);
        let a = run_overload(
            ServingStack::new(SimClock::new(), small_cfg(Protection::Full)),
            &wl,
        );
        let b = run_overload(
            ServingStack::new(SimClock::new(), small_cfg(Protection::Full)),
            &wl,
        );
        assert_eq!(format!("{:?}", a.overall), format!("{:?}", b.overall));
        assert_eq!(a.degraded_transitions, b.degraded_transitions);
        assert_eq!(a.cache_hit_ratio, b.cache_hit_ratio);
        assert_eq!(a.ledger_height, b.ledger_height);
    }

    #[test]
    fn provenance_sampled_and_committed() {
        let stack = ServingStack::new(SimClock::new(), small_cfg(Protection::Full));
        let report = run_overload(stack, &workload(21, 5, 2_000.0));
        assert!(report.provenance_recorded > 0);
        assert!(report.ledger_height > 0);
        let served: u64 = report.overall.tiers.iter().map(|t| t.served).sum();
        assert!(
            report.provenance_recorded <= served / 32,
            "sampling must keep the ledger far below the serving rate"
        );
    }

    #[test]
    fn windows_segment_the_run() {
        let mut wl = workload(5, 6, 2_000.0);
        let s = |secs: u64| SimInstant::from_nanos(SimDuration::from_secs(secs).as_nanos());
        wl.windows = vec![
            ("warm".to_owned(), s(0), s(2)),
            ("steady".to_owned(), s(2), s(6)),
        ];
        let report = run_overload(
            ServingStack::new(SimClock::new(), small_cfg(Protection::Full)),
            &wl,
        );
        let warm = report.window("warm").unwrap();
        let steady = report.window("steady").unwrap();
        assert!(warm.offered() > 0 && steady.offered() > 0);
        assert_eq!(
            warm.offered() + steady.offered(),
            report.overall.offered(),
            "windows tile the run"
        );
    }

    #[test]
    fn fleet_tier_serves_local_misses_before_origin() {
        let mut cfg = small_cfg(Protection::Full);
        cfg.cache_capacity = 64; // tiny local cache → plenty of fleet reads
        cfg.fleet = Some(FleetTierConfig {
            node_capacity: 8_192,
            ..FleetTierConfig::default()
        });
        let stack = ServingStack::new(SimClock::new(), cfg);
        // Re-read-heavy workload: a keyspace small enough that keys the
        // tiny local cache evicts come around again while the fleet
        // still holds them.
        let mut wl = workload(17, 10, 2_000.0);
        wl.keyspace = 500;
        let report = run_overload(stack, &wl);
        let fleet = report.fleet.expect("fleet stats must be reported");
        assert!(fleet.hits + fleet.misses > 0, "local misses probed the fleet");
        assert!(
            fleet.hit_ratio > 0.5,
            "origin fills warm the fleet, so evicted-then-reread keys hit it: {}",
            fleet.hit_ratio
        );
    }

    #[test]
    fn fleet_crash_schedule_fires_and_replication_masks_it() {
        let s = |secs: u64| SimInstant::from_nanos(SimDuration::from_secs(secs).as_nanos());
        let mut cfg = small_cfg(Protection::Full);
        cfg.cache_capacity = 64;
        cfg.fleet = Some(FleetTierConfig {
            node_capacity: 8_192,
            crash_windows: vec![(0, s(3), s(7))],
            ..FleetTierConfig::default()
        });
        let stack = ServingStack::new(SimClock::new(), cfg);
        let mut wl = workload(23, 10, 2_000.0);
        wl.keyspace = 500;
        let report = run_overload(stack, &wl);
        let fleet = report.fleet.expect("fleet stats must be reported");
        assert!(fleet.probe_failures > 0, "the crashed node was probed");
        assert!(
            fleet.hit_ratio > 0.4,
            "R=3 keeps serving through one crash: {}",
            fleet.hit_ratio
        );
    }

    #[test]
    fn disabled_fleet_keeps_the_report_shape() {
        let stack = ServingStack::new(SimClock::new(), small_cfg(Protection::Full));
        let report = run_overload(stack, &workload(7, 2, 1_000.0));
        assert!(report.fleet.is_none());
    }

    #[test]
    fn instrumented_slo_counters_reconcile() {
        let clock = SimClock::new();
        let registry = Registry::new();
        let mut stack = ServingStack::new(clock.clone(), small_cfg(Protection::Full));
        stack.instrument(&registry);
        let report = run_overload(stack, &workload(31, 4, 30_000.0));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("slo.offered"), Some(report.overall.offered()));
        let served: u64 = report.overall.tiers.iter().map(|t| t.served).sum();
        assert_eq!(snap.counter("slo.served"), Some(served));
        assert_eq!(
            snap.counter("slo.served_within"),
            Some(report.overall.within_slo())
        );
        let shed_total = snap.counter("slo.shed.admission").unwrap_or(0)
            + snap.counter("slo.shed.overload").unwrap_or(0)
            + snap.counter("slo.shed.deadline").unwrap_or(0);
        assert_eq!(served + shed_total, report.overall.offered());
    }
}
