//! The platform facade.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;

use hc_access::consent::ConsentRegistry;
use hc_access::gateway::{ApiGateway, Denial};
use hc_access::identity::{AuthToken, LocalDirectory, TokenService};
use hc_access::model::Permission;
use hc_access::rbac::{EnvKind, RbacEngine};
use hc_attest::attestation::{AttestationService, Verdict};
use hc_attest::change::ChangeManagement;
use hc_attest::image::ImageRegistry;
use hc_attest::measure::{measured_boot, Component};
use hc_attest::tpm::Tpm;
use hc_cloudsim::infra::InfraCloud;
use hc_common::clock::{SimClock, SimDuration};
use hc_common::id::{EnvId, GroupId, OrgId, PatientId, ReferenceId, TenantId, UserId};
use hc_crypto::kms::KeyManagementSystem;
use hc_fhir::bundle::{Bundle, BundleKind};
use hc_fhir::resource::{Consent, Gender, Observation, Patient, Resource};
use hc_fhir::types::{CodeableConcept, Quantity, SimDate};
use hc_ingest::pipeline::{DeviceCredential, IngestionPipeline, PipelineDeps};
use hc_ingest::status::{IngestionStatus, StatusUrl};
use hc_ledger::audit::AuditorView;
use hc_ledger::identity::{Credential, DidError, DidRegistry, Holder, IdentityMixer};
use hc_ledger::chain::{ChainStatus, Ledger};
use hc_ledger::consensus::PbftCluster;
use hc_ledger::policy::{MalwarePolicy, PrivacyPolicy, ProvenancePolicy};
use hc_ledger::provenance::{ProvenanceEvent, ProvenanceNetwork};
use hc_resilience::{DegradationTracker, HealthState, SubsystemStatus};
use hc_storage::datalake::DataLake;

/// Platform bootstrap configuration.
#[derive(Clone, Debug)]
pub struct PlatformConfig {
    /// Master determinism seed.
    pub seed: u64,
    /// Blockchain peers (≥ 4).
    pub consensus_peers: usize,
    /// Ledger batch size (transactions per block).
    pub ledger_batch: usize,
    /// The study/program this deployment ingests for.
    pub study_name: String,
    /// Tenant display name.
    pub tenant_name: String,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            seed: 42,
            consensus_peers: 4,
            ledger_batch: 4,
            study_name: "diabetes-rwe".to_owned(),
            tenant_name: "acme-health".to_owned(),
        }
    }
}

/// The assembled platform.
pub struct HealthCloudPlatform {
    /// The shared simulated clock.
    pub clock: SimClock,
    /// Key management.
    pub kms: Arc<KeyManagementSystem>,
    /// The data lake.
    pub lake: Arc<Mutex<DataLake>>,
    /// Consent management.
    pub consent: Arc<Mutex<ConsentRegistry>>,
    /// The provenance blockchain network.
    pub provenance: Arc<Mutex<ProvenanceNetwork>>,
    /// RBAC.
    pub rbac: Mutex<RbacEngine>,
    /// Token issuing/verification.
    pub tokens: TokenService,
    /// The local credential directory.
    pub directory: Mutex<LocalDirectory>,
    /// The API gateway.
    pub gateway: Mutex<ApiGateway>,
    /// The attestation service.
    pub attestation: Mutex<AttestationService>,
    /// The signed-image registry.
    pub images: Mutex<ImageRegistry>,
    /// Change management.
    pub changes: Mutex<ChangeManagement>,
    /// The infrastructure cloud.
    pub infra: Mutex<InfraCloud>,
    /// Model lifecycle management.
    pub lifecycle: Mutex<hc_analytics::lifecycle::ModelLifecycle>,
    /// The ingestion pipeline.
    pub pipeline: IngestionPipeline,
    /// The bootstrap tenant.
    pub tenant: TenantId,
    /// The default organization.
    pub org: OrgId,
    /// The production environment.
    pub prod_env: EnvId,
    /// The study group.
    pub study: GroupId,
    /// The self-sovereign identity network (§IV-B1).
    pub identity_network: Mutex<DidRegistry>,
    /// The identity-mixer credential issuer.
    pub mixer: IdentityMixer,
    /// Subsystem health aggregation (Healthy → Degraded → Unavailable).
    pub health: Mutex<DegradationTracker>,
    /// The platform-wide metric registry (see `OBSERVABILITY.md`).
    /// Every subsystem bootstrapped here reports into it; snapshot it
    /// via [`HealthCloudPlatform::telemetry_snapshot`].
    pub telemetry: hc_telemetry::Registry,
    rng: Mutex<StdRng>,
}

impl std::fmt::Debug for HealthCloudPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthCloudPlatform")
            .field("tenant", &self.tenant)
            .field("study", &self.study)
            .finish()
    }
}

impl HealthCloudPlatform {
    /// Boots the whole platform from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `consensus_peers < 4` (PBFT needs 3f+1 ≥ 4).
    pub fn bootstrap(config: PlatformConfig) -> Self {
        Self::bootstrap_instrumented(config, true)
    }

    /// [`bootstrap`](Self::bootstrap) with telemetry optional.
    ///
    /// With `telemetry_on = false` no subsystem is instrumented and the
    /// platform's registry stays empty — the baseline E16 measures
    /// instrumentation overhead against. Note the analytics recorder is
    /// crate-global, so an uninstrumented platform should not share a
    /// process with an instrumented one whose analytics metrics matter.
    pub fn bootstrap_instrumented(config: PlatformConfig, telemetry_on: bool) -> Self {
        let clock = SimClock::new();
        let mut rng = hc_common::rng::seeded(config.seed);
        let telemetry = hc_telemetry::Registry::new();

        let kms = Arc::new(KeyManagementSystem::new(&mut rng));
        let lake = Arc::new(Mutex::new(DataLake::new(clock.clone())));
        let consent = Arc::new(Mutex::new(ConsentRegistry::new(clock.clone())));

        let cluster = PbftCluster::new(
            config.consensus_peers,
            SimDuration::from_millis(1),
            clock.clone(),
        )
        .expect("config.consensus_peers must be >= 4");
        let mut ledger = Ledger::new(cluster, clock.clone());
        ledger.install_policy(Box::new(ProvenancePolicy));
        ledger.install_policy(Box::new(MalwarePolicy));
        ledger.install_policy(Box::new(PrivacyPolicy { min_k: 2 }));
        let mut provenance_net = ProvenanceNetwork::new(ledger, clock.clone(), config.ledger_batch);
        if telemetry_on {
            provenance_net.instrument(&telemetry);
        }
        let provenance = Arc::new(Mutex::new(provenance_net));

        let mut rbac = RbacEngine::new();
        let (tenant, org, _dev_env) = rbac.register_tenant(&mut rng, &config.tenant_name);
        let prod_env = rbac
            .add_env(&mut rng, org, "prod", EnvKind::Production)
            .expect("org exists");
        let study = rbac
            .add_group(&mut rng, org, &config.study_name)
            .expect("org exists");

        let mut token_key = [0u8; 32];
        rand::Rng::fill(&mut rng, &mut token_key);
        let tokens = TokenService::new(token_key, clock.clone());

        let pipeline = IngestionPipeline::new(
            PipelineDeps {
                kms: Arc::clone(&kms),
                lake: Arc::clone(&lake),
                consent: Arc::clone(&consent),
                provenance: Arc::clone(&provenance),
            },
            study,
            &config.study_name,
            config.seed,
        );
        if telemetry_on {
            pipeline.enable_telemetry(&telemetry);
            // Analytics kernels (JMF/DELT) report through the crate-wide
            // recorder; the platform's registry is the natural home.
            hc_analytics::telemetry::install(&telemetry);
        }

        // The identity blockchain is a *separate* permissioned network,
        // as the paper describes for its per-purpose networks.
        let identity_cluster = PbftCluster::new(
            config.consensus_peers,
            SimDuration::from_millis(1),
            clock.clone(),
        )
        .expect("checked above");
        let identity_network = DidRegistry::new(
            Ledger::new(identity_cluster, clock.clone()),
            clock.clone(),
        );
        let mixer = IdentityMixer::new(&mut rng);

        // The health tracker mirrors Fig. 1: the ledger and the data
        // lake are load-bearing (losing either takes the platform
        // down); ingestion and external AI services degrade gracefully.
        let mut health = DegradationTracker::new();
        health.register("ledger", true);
        health.register("storage", true);
        health.register("ingest", false);
        health.register("ai-services", false);

        HealthCloudPlatform {
            clock: clock.clone(),
            kms,
            lake,
            consent,
            provenance,
            rbac: Mutex::new(rbac),
            tokens,
            directory: Mutex::new(LocalDirectory::new()),
            gateway: Mutex::new(ApiGateway::new(clock, 100.0, 20.0)),
            attestation: Mutex::new(AttestationService::new()),
            images: Mutex::new(ImageRegistry::new()),
            changes: Mutex::new(ChangeManagement::new()),
            infra: Mutex::new(InfraCloud::new()),
            lifecycle: Mutex::new(hc_analytics::lifecycle::ModelLifecycle::new()),
            pipeline,
            tenant,
            org,
            prod_env,
            study,
            identity_network: Mutex::new(identity_network),
            mixer,
            health: Mutex::new(health),
            telemetry,
            rng: Mutex::new(hc_common::rng::seeded_stream(config.seed, 1001)),
        }
    }

    /// A point-in-time view of every metric the platform's subsystems
    /// have reported (see `OBSERVABILITY.md` for the name catalogue).
    /// Feed it to [`crate::monitoring::alarms_with_telemetry`] or an
    /// exporter in [`hc_telemetry::export`].
    pub fn telemetry_snapshot(&self) -> hc_telemetry::TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// Re-derives subsystem statuses from live platform signals and
    /// returns the aggregate health state:
    ///
    /// * `ledger` — [`SubsystemStatus::Down`] when the provenance chain
    ///   fails verification (critical: the platform goes
    ///   [`HealthState::Unavailable`]).
    /// * `storage` — `Down` when the data lake diverges from its WAL
    ///   (critical), e.g. after a crash mid-append before recovery.
    /// * `ingest` — [`SubsystemStatus::Degraded`] while the pipeline is
    ///   buffering provenance anchors through a ledger partition.
    ///
    /// Other subsystems (e.g. `ai-services`) are reported externally via
    /// [`set_subsystem_status`](Self::set_subsystem_status).
    pub fn refresh_health(&self) -> HealthState {
        let ledger_ok = matches!(
            self.provenance.lock().ledger().verify_chain(),
            ChainStatus::Valid
        );
        let storage_ok = self.lake.lock().verify_against_wal().is_empty();
        let ingest_degraded = self.pipeline.is_degraded();
        let mut health = self.health.lock();
        health.set_status(
            "ledger",
            if ledger_ok {
                SubsystemStatus::Up
            } else {
                SubsystemStatus::Down
            },
        );
        health.set_status(
            "storage",
            if storage_ok {
                SubsystemStatus::Up
            } else {
                SubsystemStatus::Down
            },
        );
        health.set_status(
            "ingest",
            if ingest_degraded {
                SubsystemStatus::Degraded
            } else {
                SubsystemStatus::Up
            },
        );
        health.state()
    }

    /// Reports a subsystem's status into the health tracker (for signals
    /// the platform cannot observe itself, like external AI services).
    pub fn set_subsystem_status(&self, subsystem: &str, status: SubsystemStatus) {
        self.health.lock().set_status(subsystem, status);
    }

    /// The aggregate health state as last refreshed.
    pub fn health_state(&self) -> HealthState {
        self.health.lock().state()
    }

    /// Creates and registers a self-sovereign identity on the identity
    /// blockchain network (§IV-B1).
    ///
    /// # Errors
    ///
    /// Propagates registry errors (consensus failure, duplicates).
    pub fn register_ssi_holder(&self) -> Result<Holder, DidError> {
        let mut holder = {
            let mut rng = self.rng.lock();
            Holder::generate(&mut *rng)
        };
        self.identity_network.lock().register(&mut holder)?;
        Ok(holder)
    }

    /// Issues an unlinkable per-context credential to a registered SSI
    /// holder via the identity mixer.
    ///
    /// # Errors
    ///
    /// Fails for unregistered or revoked holders.
    pub fn issue_context_credential(
        &self,
        holder: &mut Holder,
        context: &str,
    ) -> Result<Credential, DidError> {
        let registry = self.identity_network.lock();
        self.mixer.issue(&registry, holder, context)
    }

    /// Registers a platform user with a role in the production
    /// environment and returns a login token.
    ///
    /// # Panics
    ///
    /// Panics when the role name is unknown.
    pub fn register_user(&self, username: &str, secret: &[u8], role: &str) -> (UserId, AuthToken) {
        let user = {
            let mut rng = self.rng.lock();
            let mut rbac = self.rbac.lock();
            let user = rbac
                .add_user(&mut *rng, self.tenant, username)
                .expect("bootstrap tenant exists");
            rbac.assign(user, self.org, self.prod_env, role)
                .expect("built-in role");
            user
        };
        let mut directory = self.directory.lock();
        directory.enroll(username, secret, user);
        let token = self
            .tokens
            .login(&*directory, username, secret)
            .expect("just enrolled");
        (user, token)
    }

    /// One API authorization decision through the gateway.
    ///
    /// # Errors
    ///
    /// Propagates gateway denials (authn, rate limit, authz).
    pub fn authorize(
        &self,
        token: &AuthToken,
        permission: Permission,
        operation: &str,
    ) -> Result<UserId, Denial> {
        let rbac = self.rbac.lock();
        self.gateway.lock().authorize(
            &self.tokens,
            &rbac,
            token,
            self.org,
            self.prod_env,
            permission,
            operation,
        )
    }

    /// Registers a patient device (issues its encryption key).
    pub fn register_patient_device(&self, patient: PatientId) -> DeviceCredential {
        self.pipeline.register_device(patient)
    }

    /// Client-side seal + upload of a bundle.
    ///
    /// # Errors
    ///
    /// Propagates KMS errors for invalid credentials.
    pub fn upload(
        &self,
        credential: &DeviceCredential,
        bundle: &Bundle,
    ) -> Result<StatusUrl, hc_crypto::kms::KmsError> {
        let sealed = self.pipeline.seal_upload(credential, bundle)?;
        Ok(self.pipeline.submit(*credential, sealed))
    }

    /// Drains the ingestion queue inline; returns uploads processed.
    pub fn process_ingestion(&self) -> usize {
        self.pipeline.process_all()
    }

    /// Polls an upload's status.
    pub fn ingestion_status(&self, url: StatusUrl) -> Option<IngestionStatus> {
        self.pipeline.status(url)
    }

    /// Boots and attests a host running `stack`; on success the host's
    /// TPM key is trusted and a quote-verified verdict returned.
    pub fn attested_boot(&self, host_name: &str, stack: &[Component], register_golden: bool) -> (Tpm, Verdict) {
        let mut rng = self.rng.lock();
        let mut tpm = Tpm::generate(&mut *rng, host_name);
        drop(rng);
        // Golden-value registration and quote verification must be one
        // atomic attestation transaction; the loop is bounded by the
        // host's component stack. hc-lint: allow(lock-held-long)
        let mut attestation = self.attestation.lock();
        if register_golden {
            for c in stack {
                attestation.register_golden(c);
            }
        }
        attestation.trust_signer(tpm.public_key());
        let nonce = b"platform-boot-nonce";
        let quote = measured_boot(&mut tpm, stack, nonce).expect("fresh TPM has keys");
        // Record the verdict against the host's name so posture scans can
        // later distinguish verified workloads from never-verified ones.
        let verdict = attestation.verify_quote_for(host_name, &quote, stack, nonce);
        (tpm, verdict)
    }

    /// The committed provenance history of a record.
    pub fn audit_record(&self, record: ReferenceId) -> Vec<ProvenanceEvent> {
        let provenance = self.provenance.lock();
        let view = AuditorView::new(provenance.ledger());
        view.record_history(record)
    }

    /// Flushes pending provenance events and re-verifies the whole chain.
    pub fn verify_ledger(&self) -> ChainStatus {
        let mut provenance = self.provenance.lock();
        let _ = provenance.flush(); // empty batch is fine
        provenance.ledger().verify_chain()
    }

    /// Right-to-forget for a patient across the platform.
    pub fn forget_patient(&self, patient: PatientId) -> usize {
        self.pipeline.forget_patient(patient)
    }

    /// The export service bound to this platform's study.
    pub fn export_service(&self) -> hc_ingest::export::ExportService {
        self.pipeline.export_service()
    }

    /// Scores the study's holistic anonymization degree (§IV-C): builds
    /// quasi-identifier records from the anonymized export, runs Mondrian
    /// at `k_required`, verifies the claim, and anchors the score on the
    /// privacy blockchain channel ("Such a blockchain records the privacy
    /// levels of each record received").
    ///
    /// # Errors
    ///
    /// Returns `None` when the study holds fewer than `k_required`
    /// patients (no k-anonymous representation exists).
    pub fn score_study_privacy(&self, k_required: usize) -> Option<hc_privacy::verify::AnonymizationDegree> {
        let export = self.export_service().export_anonymized().ok()?;
        let records: Vec<hc_privacy::kanon::QiRecord> = export
            .iter()
            .filter_map(|r| match r {
                Resource::Patient(p) => {
                    let zip: u32 = p
                        .address
                        .as_ref()
                        .map(|a| {
                            a.postal_code
                                .chars()
                                .filter(|c| c.is_ascii_digit())
                                .collect::<String>()
                                .parse()
                                .unwrap_or(0)
                        })
                        .unwrap_or(0);
                    let gender_code = match p.gender {
                        Gender::Female => 0,
                        Gender::Male => 1,
                        Gender::Other => 2,
                        Gender::Unknown => 3,
                    };
                    Some(hc_privacy::kanon::QiRecord::new(
                        p.birth_year.unwrap_or(1970),
                        zip,
                        gender_code,
                        &p.id,
                    ))
                }
                _ => None,
            })
            .collect();
        let table = hc_privacy::kanon::mondrian(&records, k_required).ok()?;
        let degree = hc_privacy::verify::measure(&table.classes);
        // Anchor on the privacy channel.
        let tx = hc_ledger::block::Transaction {
            id: hc_common::id::TxId::from_raw(self.clock.now().as_nanos() as u128 + 1),
            channel: "privacy".into(),
            kind: "privacy-scored".into(),
            payload: format!("record=study-{};k={}", self.study, degree.k).into_bytes(),
            submitter: "anonymization-verification".into(),
            timestamp: self.clock.now(),
        };
        let mut provenance = self.provenance.lock();
        let _ = provenance.ledger_mut().submit(vec![tx]);
        Some(degree)
    }

    /// A deterministic RNG handle for platform-driven experiments.
    pub fn rng(&self) -> parking_lot::MutexGuard<'_, StdRng> {
        self.rng.lock()
    }
}

/// Builds a small demonstration bundle: one patient with an HbA1c
/// observation, optionally consenting to the default study.
pub fn demo_bundle(patient_id: &str, with_consent: bool) -> Bundle {
    let mut entries = vec![
        Resource::Patient(
            Patient::builder(patient_id)
                .name("Doe", "Jane")
                .gender(Gender::Female)
                .birth_year(1968)
                .address("12 Main St", "Springfield", "IL", "62704")
                .phone("555-0100")
                .build(),
        ),
        Resource::Observation(Observation {
            id: format!("{patient_id}-hba1c"),
            subject: patient_id.to_owned(),
            code: CodeableConcept::hba1c(),
            value: Quantity::new(7.4, "%"),
            effective: SimDate(420),
        }),
    ];
    if with_consent {
        entries.push(Resource::Consent(Consent {
            id: format!("{patient_id}-consent"),
            subject: patient_id.to_owned(),
            study: "diabetes-rwe".to_owned(),
            granted: true,
        }));
    }
    Bundle::new(BundleKind::Transaction, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_access::model::{Action, ResourceKind};
    use hc_attest::measure::Layer;

    #[test]
    fn bootstrap_and_ingest_end_to_end() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let patient = PatientId::from_raw(7);
        let device = platform.register_patient_device(patient);
        let url = platform.upload(&device, &demo_bundle("p7", true)).unwrap();
        assert_eq!(platform.process_ingestion(), 1);
        let status = platform.ingestion_status(url).unwrap();
        assert!(status.is_stored(), "{status:?}");
        let IngestionStatus::Stored { references } = status else {
            unreachable!()
        };
        // Events may still sit in the consensus batch; flushing through
        // verify_ledger commits them.
        assert_eq!(platform.verify_ledger(), ChainStatus::Valid);
        let history = platform.audit_record(references[0]);
        assert_eq!(history.len(), 2);
    }

    #[test]
    fn rbac_flow_through_gateway() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let (_user, token) = platform.register_user("alice", b"pw", "researcher");
        // Researcher may read anonymized data…
        assert!(platform
            .authorize(
                &token,
                Permission::new(ResourceKind::AnonymizedData, Action::Read),
                "export-anon",
            )
            .is_ok());
        // …but not identified PHI.
        assert!(matches!(
            platform.authorize(
                &token,
                Permission::new(ResourceKind::PatientData, Action::Read),
                "read-phi",
            ),
            Err(Denial::Authorization { .. })
        ));
    }

    #[test]
    fn attested_boot_trusts_honest_host_only() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let stack = vec![
            Component::new(Layer::Hardware, "bios", b"bios-v1"),
            Component::new(Layer::Hypervisor, "kvm", b"kvm-v1"),
        ];
        let (_tpm, verdict) = platform.attested_boot("host-1", &stack, true);
        assert!(verdict.trusted, "{:?}", verdict.failures);

        // Second host boots a tampered hypervisor but claims the golden one.
        let tampered = vec![
            Component::new(Layer::Hardware, "bios", b"bios-v1"),
            Component::new(Layer::Hypervisor, "kvm", b"kvm-v1-rootkit"),
        ];
        let mut rng = hc_common::rng::seeded(9);
        let mut tpm2 = Tpm::generate(&mut rng, "host-2");
        let mut attestation = platform.attestation.lock();
        attestation.trust_signer(tpm2.public_key());
        let quote = measured_boot(&mut tpm2, &tampered, b"n2").unwrap();
        let verdict = attestation.verify_quote(&quote, &stack, b"n2");
        assert!(!verdict.trusted);
    }

    #[test]
    fn forget_patient_end_to_end() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let patient = PatientId::from_raw(7);
        let device = platform.register_patient_device(patient);
        platform.upload(&device, &demo_bundle("p7", true)).unwrap();
        platform.process_ingestion();
        assert_eq!(platform.forget_patient(patient), 1);
        let export = platform.export_service();
        let merged = export.export_anonymized().unwrap();
        assert!(merged.is_empty());
    }

    #[test]
    fn ssi_lifecycle_through_platform() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let mut holder = platform.register_ssi_holder().unwrap();
        // Unlinkable credentials for two care contexts.
        let hospital = platform
            .issue_context_credential(&mut holder, "hospital-a")
            .unwrap();
        let insurer = platform
            .issue_context_credential(&mut holder, "insurer-b")
            .unwrap();
        assert!(platform.mixer.verify(&hospital, "hospital-a"));
        assert!(platform.mixer.verify(&insurer, "insurer-b"));
        assert_ne!(hospital.pseudonym, insurer.pseudonym);
        // The identity network is a real chain.
        let registry = platform.identity_network.lock();
        assert_eq!(
            registry.ledger().verify_chain(),
            hc_ledger::chain::ChainStatus::Valid
        );
        assert!(registry.resolve(holder.did()).is_some());
    }

    #[test]
    fn demo_bundle_validates() {
        let report = hc_fhir::validation::Validator::strict().validate_bundle(&demo_bundle("p1", true));
        assert!(report.is_valid());
    }
}
