//! End-to-end research studies (§V) run *through the platform*:
//! data enters via the compliant ingestion pipeline, analytics run on the
//! de-identified export, and models pass the lifecycle gate before
//! deployment is anchored on the ledger.

use hc_analytics::delt::{self, DeltConfig};
use hc_analytics::eval::auc_roc;
use hc_analytics::jmf::{self, holdout_scores, JmfConfig};
use hc_analytics::kmeans::purity;
use hc_analytics::lifecycle::Stage;
use hc_analytics::mf::{self, MfConfig};
use hc_common::id::PatientId;
use hc_crypto::sha256;
use hc_fhir::resource::Resource;
use hc_kb::biobank::{
    disease_similarity_sources, drug_similarity_sources, Biobank,
};
use hc_kb::emr::{EmrCohort, EmrConfig, EmrPatient, Exposure, LabMeasurement};
use hc_ledger::provenance::{ProvenanceAction, ProvenanceEvent};

use crate::platform::HealthCloudPlatform;

/// The outcome of the DDI (drug–drug interaction) study (§V-A, Tiresias).
#[derive(Clone, Copy, Debug)]
pub struct DdiReport {
    /// AUC of the multi-source pairwise model.
    pub model_auc: f64,
    /// AUC of the chemical-similarity-only baseline.
    pub baseline_auc: f64,
}

/// Runs Tiresias-style drug–drug interaction prediction over the biobank.
pub fn run_ddi_study(bank: &Biobank, interaction_rate: f64, seed: u64) -> DdiReport {
    let (model_auc, baseline_auc) = hc_analytics::ddi::evaluate(bank, interaction_rate, seed);
    DdiReport {
        model_auc,
        baseline_auc,
    }
}

/// The outcome of the JMF drug-repositioning study (E8).
#[derive(Clone, Debug)]
pub struct RepositioningReport {
    /// Hold-out AUC of JMF (all sources, learned weights).
    pub jmf_auc: f64,
    /// Hold-out AUC of plain matrix factorization.
    pub mf_auc: f64,
    /// Hold-out AUC of JMF with uniform (unlearned) weights — ablation.
    pub jmf_uniform_auc: f64,
    /// Learned drug-source weights (chemical, target, side-effect).
    pub drug_weights: Vec<f64>,
    /// Learned disease-source weights (phenotype, ontology, gene).
    pub disease_weights: Vec<f64>,
    /// Purity of discovered drug groups against generator classes.
    pub group_purity: f64,
    /// Whether the model passed the deployment gate.
    pub deployed: bool,
}

/// Runs the repositioning study end to end: fit, evaluate, gate, deploy,
/// anchor.
pub fn run_repositioning_study(
    platform: &HealthCloudPlatform,
    bank: &Biobank,
    config: &JmfConfig,
    holdout_fraction: f64,
    seed: u64,
) -> RepositioningReport {
    let (train, held_out) = bank.split_associations(holdout_fraction, seed);
    let drug_sims = drug_similarity_sources(bank);
    let disease_sims = disease_similarity_sources(bank);

    let jmf_model = jmf::fit(&train, &drug_sims, &disease_sims, config, seed);
    let jmf_auc = auc_roc(&holdout_scores(&jmf_model.score_matrix(), &train, &held_out));

    let uniform_model = jmf::fit(
        &train,
        &drug_sims,
        &disease_sims,
        &JmfConfig {
            learn_weights: false,
            ..*config
        },
        seed,
    );
    let jmf_uniform_auc = auc_roc(&holdout_scores(
        &uniform_model.score_matrix(),
        &train,
        &held_out,
    ));

    let mf_model = mf::factorize(
        &train,
        &MfConfig {
            k: config.k,
            iters: config.iters,
            ..MfConfig::default()
        },
        seed,
    );
    let mf_auc = auc_roc(&holdout_scores(&mf_model.score_matrix(), &train, &held_out));

    let n_groups = bank.drugs.iter().map(|d| d.class).max().unwrap_or(0) + 1;
    let groups = jmf_model.drug_groups(n_groups, seed);
    let truth: Vec<usize> = bank.drugs.iter().map(|d| d.class).collect();
    let group_purity = purity(&groups, &truth);

    // Lifecycle: register → test → (gate) deploy; anchor on success.
    let deployed = {
        let mut lifecycle = platform.lifecycle.lock();
        let model_id = lifecycle.register("jmf-repositioning", b"jmf-artifact");
        lifecycle.advance(model_id, 1, Stage::Generated).expect("fresh model");
        lifecycle.advance(model_id, 1, Stage::Testing).expect("generated");
        lifecycle
            .record_metric(model_id, 1, "holdout_auc", jmf_auc)
            .expect("testing");
        let ok = lifecycle.deploy(model_id, 1, "holdout_auc", 0.6).is_ok();
        if ok {
            let mut provenance = platform.provenance.lock();
            let _ = provenance.record(&ProvenanceEvent {
                record: hc_common::id::ReferenceId::from_raw(model_id.as_u128()),
                data_hash: sha256::hash(b"jmf-artifact"),
                action: ProvenanceAction::ModelDeployed,
                actor: "analytics-platform".into(),
                detail: format!("holdout_auc={jmf_auc:.3}"),
            });
        }
        ok
    };

    RepositioningReport {
        jmf_auc,
        mf_auc,
        jmf_uniform_auc,
        drug_weights: jmf_model.drug_weights,
        disease_weights: jmf_model.disease_weights,
        group_purity,
        deployed,
    }
}

/// Uploads an EMR cohort through the compliant ingestion pipeline, one
/// patient bundle at a time (each with in-bundle consent). Returns how
/// many bundles stored.
pub fn ingest_emr_cohort(platform: &HealthCloudPlatform, cohort: &EmrCohort) -> usize {
    for (i, _) in cohort.patients.iter().enumerate() {
        let patient = PatientId::from_raw(10_000 + i as u128);
        let device = platform.register_patient_device(patient);
        let mut bundle = cohort.patient_bundle(i);
        bundle
            .entries
            .push(Resource::Consent(hc_fhir::resource::Consent {
                id: format!("emr-p{i}-consent"),
                subject: format!("emr-p{i}"),
                study: "diabetes-rwe".to_owned(),
                granted: true,
            }));
        // `upload` is ingress into the compliant pipeline (encrypted,
        // consent-checked), not an egress sink — PHI is supposed to
        // enter here.
        platform
            // hc-lint: allow(taint-phi-to-sink)
            .upload(&device, &bundle)
            .expect("registered device");
    }
    platform.pipeline.process_all_parallel(4);
    platform.pipeline.stats().stored as usize
}

/// Reconstructs an analyzable cohort from the platform's *anonymized
/// export* — the form a researcher actually receives.
///
/// # Panics
///
/// Panics if the export contains a drug code outside `n_drugs`.
pub fn cohort_from_export(
    platform: &HealthCloudPlatform,
    n_drugs: usize,
) -> EmrCohort {
    let export = platform
        .export_service()
        .export_anonymized()
        .expect("export never fails on readable records");

    use std::collections::HashMap;
    let mut patients: HashMap<String, EmrPatient> = HashMap::new();
    let mut order: Vec<String> = Vec::new();

    for resource in &export {
        match resource {
            Resource::Patient(p) => {
                let entry = patients.entry(p.id.clone()).or_insert_with(|| {
                    order.push(p.id.clone());
                    EmrPatient {
                        index: 0,
                        baseline: 0.0,
                        drift_per_year: 0.0,
                        gender: p.gender,
                        birth_year: p.birth_year.unwrap_or(1970),
                        exposures: Vec::new(),
                        measurements: Vec::new(),
                    }
                });
                entry.gender = p.gender;
            }
            Resource::Observation(o) if o.code.code == "4548-4" => {
                let entry = patients.entry(o.subject.clone()).or_insert_with(|| {
                    order.push(o.subject.clone());
                    EmrPatient {
                        index: 0,
                        baseline: 0.0,
                        drift_per_year: 0.0,
                        gender: hc_fhir::resource::Gender::Unknown,
                        birth_year: 1970,
                        exposures: Vec::new(),
                        measurements: Vec::new(),
                    }
                });
                entry.measurements.push(LabMeasurement {
                    day: o.effective,
                    value: o.value.value,
                });
            }
            Resource::MedicationRequest(m) => {
                let drug: usize = m
                    .medication
                    .code
                    .strip_prefix('D')
                    .and_then(|s| s.parse().ok())
                    .expect("synthetic drug code D<idx>");
                assert!(drug < n_drugs, "drug code {drug} out of range");
                let entry = patients.entry(m.subject.clone()).or_insert_with(|| {
                    order.push(m.subject.clone());
                    EmrPatient {
                        index: 0,
                        baseline: 0.0,
                        drift_per_year: 0.0,
                        gender: hc_fhir::resource::Gender::Unknown,
                        birth_year: 1970,
                        exposures: Vec::new(),
                        measurements: Vec::new(),
                    }
                });
                entry.exposures.push(Exposure {
                    drug,
                    period: m.period,
                });
            }
            _ => {}
        }
    }

    let mut list: Vec<EmrPatient> = order
        .into_iter()
        .filter_map(|k| patients.remove(&k))
        .collect();
    for (i, p) in list.iter_mut().enumerate() {
        p.index = i;
        p.measurements.sort_by_key(|m| m.day);
    }
    EmrCohort {
        patients: list,
        config: EmrConfig {
            n_patients: 0,
            n_drugs,
            planted_effects: Vec::new(),
            ..EmrConfig::default()
        },
    }
}

/// The outcome of the DELT drug-safety study (E9).
#[derive(Clone, Debug)]
pub struct DeltReport {
    /// RMSE of DELT's β against the planted effects.
    pub delt_rmse: f64,
    /// RMSE of the marginal-correlation baseline.
    pub marginal_rmse: f64,
    /// Precision@k of DELT's lowering-drug ranking.
    pub delt_precision: f64,
    /// Precision@k of the marginal baseline's ranking.
    pub marginal_precision: f64,
    /// k used for the precision metric (number of planted lowering drugs).
    pub k: usize,
}

/// Runs DELT on the platform's anonymized export and scores both DELT and
/// the marginal baseline against the generator's planted truth.
pub fn run_delt_study(
    platform: &HealthCloudPlatform,
    original: &EmrCohort,
    config: &DeltConfig,
) -> DeltReport {
    let exported = cohort_from_export(platform, original.config.n_drugs);
    let truth = original.true_effects();
    let lowering = original.lowering_drugs();
    let k = lowering.len().max(1);

    let model = delt::fit(&exported, config);
    let delt_rmse = model.beta_rmse(&truth);
    let delt_precision = delt::lowering_precision_at_k(&model.lowering_candidates(), &lowering, k);

    let marginal = delt::marginal_effects(&exported);
    let marginal_rmse = {
        let sq: f64 = marginal
            .iter()
            .zip(&truth)
            .map(|(e, t)| (e - t) * (e - t))
            .sum();
        (sq / truth.len() as f64).sqrt()
    };
    let mut marginal_ranking: Vec<usize> = (0..marginal.len()).collect();
    marginal_ranking.sort_by(|&a, &b| marginal[a].partial_cmp(&marginal[b]).expect("finite"));
    let marginal_precision = delt::lowering_precision_at_k(&marginal_ranking, &lowering, k);

    DeltReport {
        delt_rmse,
        marginal_rmse,
        delt_precision,
        marginal_precision,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformConfig;
    use hc_kb::biobank::BiobankConfig;

    #[test]
    fn repositioning_study_runs_and_deploys() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let bank = Biobank::generate(
            &BiobankConfig {
                n_drugs: 40,
                n_diseases: 30,
                n_clusters: 4,
                association_rate: 0.08,
                ..BiobankConfig::default()
            },
            5,
        );
        let report = run_repositioning_study(
            &platform,
            &bank,
            &JmfConfig {
                k: 8,
                iters: 100,
                ..JmfConfig::default()
            },
            0.25,
            5,
        );
        assert!(report.jmf_auc > 0.65, "jmf auc {}", report.jmf_auc);
        assert!(report.deployed);
        assert!((report.drug_weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Deployment was anchored.
        let provenance = platform.provenance.lock();
        let deployed = provenance
            .ledger()
            .channel_transactions("provenance")
            .iter()
            .filter(|t| t.kind == "model-deployed")
            .count();
        drop(provenance);
        // Batch may still be pending; flush through verify.
        assert!(deployed > 0 || platform.verify_ledger() == hc_ledger::chain::ChainStatus::Valid);
    }

    #[test]
    fn delt_study_over_the_real_pipeline() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let cohort = EmrCohort::generate(
            EmrConfig {
                n_patients: 60,
                n_drugs: 12,
                planted_effects: vec![(0, -0.9), (1, -0.6), (2, 0.5)],
                measurements_per_patient: 8,
                ..EmrConfig::default()
            },
            11,
        );
        let stored = ingest_emr_cohort(&platform, &cohort);
        assert_eq!(stored, 60);
        let report = run_delt_study(&platform, &cohort, &DeltConfig::default());
        assert!(
            report.delt_rmse <= report.marginal_rmse,
            "delt {} vs marginal {}",
            report.delt_rmse,
            report.marginal_rmse
        );
        assert!(report.delt_precision >= 0.5, "p@k {}", report.delt_precision);
    }

    #[test]
    fn export_reconstruction_preserves_measurements() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let cohort = EmrCohort::generate(
            EmrConfig {
                n_patients: 10,
                n_drugs: 5,
                planted_effects: vec![(0, -0.5)],
                measurements_per_patient: 6,
                ..EmrConfig::default()
            },
            3,
        );
        ingest_emr_cohort(&platform, &cohort);
        let rebuilt = cohort_from_export(&platform, 5);
        assert_eq!(rebuilt.patients.len(), 10);
        let original_count: usize = cohort.patients.iter().map(|p| p.measurements.len()).sum();
        let rebuilt_count: usize = rebuilt.patients.iter().map(|p| p.measurements.len()).sum();
        assert_eq!(original_count, rebuilt_count);
    }
}
