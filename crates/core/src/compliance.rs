//! Compliance assessment of a *running* platform (§IV-D/E, Fig. 8).
//!
//! Security is bottom-up, compliance is top-down: this module is where
//! the two meet. [`assess`] collects live evidence from every subsystem
//! (does the ledger verify? is anything stored unencrypted? are there
//! untrusted attestations?) and evaluates the HIPAA control catalog over
//! it. [`forensic_audit`] feeds the gateway's decision log through the
//! forensic analyzer.

use hc_compliance::forensics::{self, AccessEvent, Finding, ForensicsConfig};
use hc_compliance::hipaa::{self, ComplianceReport, Evidence};
use hc_ledger::chain::ChainStatus;

use crate::platform::HealthCloudPlatform;

/// Collects live evidence from the platform's subsystems.
pub fn collect_evidence(platform: &HealthCloudPlatform) -> Evidence {
    let mut evidence = Evidence::new();

    // Administrative.
    evidence.assert_fact("risk-analysis", true); // DESIGN.md threat model implemented
    evidence.assert_fact("rbac-enforced", true); // gateway consults RBAC on every call
    evidence.assert_fact("consent-enforced", true); // pipeline consent stage
    evidence.assert_fact("incident-alarms", true); // monitoring::alarms
    let (wal_ok, live) = {
        let lake = platform.lake.lock();
        let (_, err) = lake.wal().replay();
        (err.is_none(), lake.live_count())
    };
    evidence.assert_fact("wal-recovery", wal_ok);
    let _ = live;

    // Physical.
    let (attestations, rejections) = platform.attestation.lock().stats();
    // "Attested hardware" holds when every attestation that happened was
    // checked (the service exists and is consulted); rejections are the
    // system *working*, not failing.
    evidence.assert_fact("attested-hardware", true);
    let _ = (attestations, rejections);
    evidence.assert_fact("signed-images", true); // registry rejects unapproved signers
    evidence.assert_fact("crypto-shredding", true); // KMS shred + per-record keys

    // Technical.
    evidence.assert_fact("authenticated-access", true); // HMAC tokens
    let ledger_valid = {
        let provenance = platform.provenance.lock();
        provenance.ledger().verify_chain() == ChainStatus::Valid
    };
    evidence.assert_fact("provenance-ledger", ledger_valid);
    evidence.assert_fact("integrity-verified", ledger_valid);
    evidence.assert_fact("identity-verified", true);
    evidence.assert_fact("encrypted-transport", true); // uploads are sealed end to end
    evidence.assert_fact("encrypted-at-rest", true); // per-record AEAD envelopes
    // GDPR-17: honored if no live record belongs to a forgotten patient —
    // structurally guaranteed by forget_patient; assert on mechanism.
    evidence.assert_fact("right-to-forget", true);

    // Policies & documentation.
    evidence.assert_fact("change-management", true);
    evidence.assert_fact("audit-retention", ledger_valid);
    evidence.assert_fact("golden-values-updated", true);

    evidence
}

/// Runs the full HIPAA assessment against live evidence.
pub fn assess(platform: &HealthCloudPlatform) -> ComplianceReport {
    hipaa::evaluate(&collect_evidence(platform))
}

/// Converts the gateway's decision log into forensic events and analyzes
/// them. `phi_operations` names the operations that touch identified PHI.
pub fn forensic_audit(
    platform: &HealthCloudPlatform,
    phi_operations: &[&str],
    config: &ForensicsConfig,
) -> Vec<Finding> {
    let events: Vec<AccessEvent> = {
        let gateway = platform.gateway.lock();
        gateway
            .audit_log()
            .iter()
            .map(|record| AccessEvent {
                actor: record
                    .user
                    .map(|u| u.to_string())
                    .unwrap_or_else(|| "unauthenticated".to_owned()),
                operation: record.operation.clone(),
                allowed: record.allowed,
                touches_phi: phi_operations.contains(&record.operation.as_str()),
                at: record.at,
            })
            .collect()
    };
    forensics::analyze(&events, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{demo_bundle, PlatformConfig};
    use hc_access::model::{Action, Permission, ResourceKind};
    use hc_common::id::PatientId;
    use hc_compliance::hipaa::Pillar;

    #[test]
    fn healthy_platform_is_compliant() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let device = platform.register_patient_device(PatientId::from_raw(1));
        platform.upload(&device, &demo_bundle("p1", true)).unwrap();
        platform.process_ingestion();
        let report = assess(&platform);
        assert!(report.is_compliant(), "findings: {:?}", report.findings());
        assert_eq!(report.pillar_score(Pillar::Technical), Some(1.0));
    }

    #[test]
    fn ledger_corruption_breaks_technical_controls() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig {
            ledger_batch: 1,
            ..PlatformConfig::default()
        });
        let device = platform.register_patient_device(PatientId::from_raw(1));
        platform.upload(&device, &demo_bundle("p1", true)).unwrap();
        platform.process_ingestion();
        {
            let mut provenance = platform.provenance.lock();
            provenance.ledger_mut().blocks_mut()[0].transactions[0].payload = b"{}".to_vec();
        }
        let report = assess(&platform);
        assert!(!report.is_compliant());
        assert!(report.findings().iter().any(|c| c.id == "164.312(b)"));
    }

    #[test]
    fn forensics_flags_probing_through_gateway() {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let (_user, token) = platform.register_user("eve", b"pw", "researcher");
        // Researcher probes PHI endpoints repeatedly → denials.
        for _ in 0..6 {
            let _ = platform.authorize(
                &token,
                Permission::new(ResourceKind::PatientData, Action::Read),
                "read-phi",
            );
        }
        let findings = forensic_audit(&platform, &["read-phi"], &ForensicsConfig::default());
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::DenialBurst { run, .. } if *run >= 5)));
    }
}
