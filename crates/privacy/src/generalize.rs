//! Generalization hierarchies for quasi-identifiers.

use serde::{Deserialize, Serialize};

/// An inclusive numeric range produced by generalization.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Range {
    /// Smallest value in the class.
    pub lo: u32,
    /// Largest value in the class.
    pub hi: u32,
}

impl Range {
    /// A single-value range.
    pub const fn point(v: u32) -> Self {
        Range { lo: v, hi: v }
    }

    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "range lo must not exceed hi");
        Range { lo, hi }
    }

    /// Whether `v` falls in the range.
    pub const fn contains(&self, v: u32) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Width of the range (0 for a point).
    pub const fn width(&self) -> u32 {
        self.hi - self.lo
    }
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "{}-{}", self.lo, self.hi)
        }
    }
}

/// Generalizes an age to a fixed-width band (e.g. 37 → 35–39 for width 5).
pub fn age_band(age: u32, width: u32) -> Range {
    let width = width.max(1);
    let lo = (age / width) * width;
    Range::new(lo, lo + width - 1)
}

/// Truncates a ZIP code to its first `keep` digits (Safe Harbor keeps 3).
///
/// Non-digit input is masked entirely.
pub fn zip_prefix(zip: &str, keep: usize) -> String {
    if !zip.chars().all(|c| c.is_ascii_digit()) || zip.is_empty() {
        return "*****".to_owned();
    }
    let keep = keep.min(zip.len());
    let mut out: String = zip.chars().take(keep).collect();
    for _ in keep..zip.len() {
        out.push('*');
    }
    out
}

/// Generalizes a simulated day number to its year.
pub fn day_to_year(day: u32) -> u32 {
    day / 365
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn age_bands() {
        assert_eq!(age_band(37, 5), Range::new(35, 39));
        assert_eq!(age_band(40, 5), Range::new(40, 44));
        assert_eq!(age_band(0, 10), Range::new(0, 9));
        assert_eq!(age_band(7, 1), Range::point(7));
    }

    #[test]
    fn zip_truncation() {
        assert_eq!(zip_prefix("62701", 3), "627**");
        assert_eq!(zip_prefix("62701", 5), "62701");
        assert_eq!(zip_prefix("627", 5), "627");
        assert_eq!(zip_prefix("abcde", 3), "*****");
        assert_eq!(zip_prefix("", 3), "*****");
    }

    #[test]
    fn range_display() {
        assert_eq!(Range::new(35, 39).to_string(), "35-39");
        assert_eq!(Range::point(7).to_string(), "7");
    }

    #[test]
    #[should_panic(expected = "lo must not exceed")]
    fn inverted_range_panics() {
        let _ = Range::new(5, 1);
    }

    proptest! {
        #[test]
        fn age_always_in_its_band(age in 0u32..120, width in 1u32..20) {
            prop_assert!(age_band(age, width).contains(age));
        }

        #[test]
        fn band_width_is_constant(age in 0u32..120, width in 1u32..20) {
            prop_assert_eq!(age_band(age, width).width(), width - 1);
        }
    }
}
