//! HIPAA Safe Harbor de-identification of FHIR resources.
//!
//! §II-B step iii: "the data is de-identified and stored in the backend
//! storage system (Data Lake) with a reference-id, and the reference-id to
//! identity the mapping is stored in the metadata." This module removes
//! the Safe Harbor direct identifiers (names, MRNs/SSNs, phone numbers,
//! street addresses), generalizes quasi-identifiers (birth year → band,
//! ZIP → 3-digit prefix) and replaces patient logical ids with pseudonyms,
//! returning the pseudonym map separately so re-identification stays a
//! privileged, auditable operation.

use std::collections::HashMap;

use hc_fhir::bundle::Bundle;
use hc_fhir::resource::{Patient, Resource};

use crate::generalize::{age_band, zip_prefix};

/// The result of de-identifying a bundle.
#[derive(Clone, Debug)]
pub struct Deidentified {
    /// The scrubbed bundle (safe for the analytics data lake).
    pub bundle: Bundle,
    /// original logical id → pseudonym. Stored separately (metadata DB).
    pub pseudonyms: HashMap<String, String>,
}

/// Configuration for de-identification.
#[derive(Clone, Copy, Debug)]
pub struct DeidConfig {
    /// Width of the birth-year generalization band.
    pub birth_year_band: u32,
    /// ZIP digits kept (Safe Harbor: 3).
    pub zip_digits: usize,
}

impl Default for DeidConfig {
    fn default() -> Self {
        DeidConfig {
            birth_year_band: 5,
            zip_digits: 3,
        }
    }
}

fn pseudonym(original: &str, salt: &[u8]) -> String {
    let digest = hc_crypto_like_hash(original.as_bytes(), salt);
    format!("anon-{digest}")
}

// A tiny FNV-1a keyed hash for pseudonyms. Pseudonym unlinkability across
// deployments comes from the salt; collision resistance requirements are
// modest (logical ids within one bundle), so a 64-bit hash suffices and
// keeps this crate free of a crypto dependency.
fn hc_crypto_like_hash(data: &[u8], salt: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in salt.iter().chain(data.iter()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    format!("{h:016x}")
}

/// De-identifies one patient in place, per Safe Harbor.
pub fn scrub_patient(patient: &mut Patient, config: &DeidConfig) {
    patient.name = None;
    patient.identifiers.clear();
    patient.phone = None;
    if let Some(address) = &mut patient.address {
        address.line.clear();
        address.city.clear();
        address.postal_code = zip_prefix(&address.postal_code, config.zip_digits);
        // State is retained: it is not a Safe Harbor identifier.
    }
    if let Some(year) = patient.birth_year {
        patient.birth_year = Some(age_band(year, config.birth_year_band).lo);
    }
}

/// De-identifies a whole bundle: scrubs every patient and pseudonymizes
/// every logical id and subject reference.
pub fn deidentify_bundle(bundle: &Bundle, config: &DeidConfig, salt: &[u8]) -> Deidentified {
    let mut pseudonyms: HashMap<String, String> = HashMap::new();
    let mut entries = Vec::with_capacity(bundle.len());

    let map_id = |id: &str, pseudonyms: &mut HashMap<String, String>| -> String {
        pseudonyms
            .entry(id.to_owned())
            .or_insert_with(|| pseudonym(id, salt))
            .clone()
    };

    for resource in bundle {
        let mut resource = resource.clone();
        match &mut resource {
            Resource::Patient(p) => {
                p.id = map_id(&p.id, &mut pseudonyms);
                scrub_patient(p, config);
            }
            Resource::Observation(o) => {
                o.id = map_id(&o.id, &mut pseudonyms);
                o.subject = map_id(&o.subject, &mut pseudonyms);
            }
            Resource::Condition(c) => {
                c.id = map_id(&c.id, &mut pseudonyms);
                c.subject = map_id(&c.subject, &mut pseudonyms);
            }
            Resource::MedicationRequest(m) => {
                m.id = map_id(&m.id, &mut pseudonyms);
                m.subject = map_id(&m.subject, &mut pseudonyms);
            }
            Resource::Consent(c) => {
                c.id = map_id(&c.id, &mut pseudonyms);
                c.subject = map_id(&c.subject, &mut pseudonyms);
            }
        }
        entries.push(resource);
    }

    Deidentified {
        bundle: Bundle::new(bundle.kind, entries),
        pseudonyms,
    }
}

/// Re-identifies a pseudonymized subject given the (privileged) map.
///
/// Returns `None` when the pseudonym is unknown — e.g. after the mapping
/// was destroyed for a right-to-forget request.
pub fn reidentify<'a>(pseudonyms: &'a HashMap<String, String>, pseudonym: &str) -> Option<&'a str> {
    pseudonyms
        .iter()
        .find(|(_, v)| v.as_str() == pseudonym)
        .map(|(k, _)| k.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_fhir::bundle::BundleKind;
    use hc_fhir::resource::{Gender, Observation};
    use hc_fhir::types::{CodeableConcept, Quantity, SimDate};

    fn bundle() -> Bundle {
        Bundle::new(
            BundleKind::Transaction,
            vec![
                Resource::Patient(
                    Patient::builder("p1")
                        .name("Doe", "Jane")
                        .gender(Gender::Female)
                        .birth_year(1977)
                        .identifier("urn:ssn", "000-11-2222")
                        .address("1 Main St", "Springfield", "IL", "62701")
                        .phone("555-0100")
                        .build(),
                ),
                Resource::Observation(Observation {
                    id: "o1".into(),
                    subject: "p1".into(),
                    code: CodeableConcept::hba1c(),
                    value: Quantity::new(6.5, "%"),
                    effective: SimDate(100),
                }),
            ],
        )
    }

    #[test]
    fn direct_identifiers_removed() {
        let result = deidentify_bundle(&bundle(), &DeidConfig::default(), b"salt");
        let Resource::Patient(p) = &result.bundle.entries[0] else {
            panic!("first entry is the patient");
        };
        assert!(p.name.is_none());
        assert!(p.identifiers.is_empty());
        assert!(p.phone.is_none());
        let addr = p.address.as_ref().unwrap();
        assert!(addr.line.is_empty());
        assert!(addr.city.is_empty());
        assert_eq!(addr.postal_code, "627**");
        assert_eq!(addr.state, "IL");
    }

    #[test]
    fn birth_year_generalized() {
        let result = deidentify_bundle(&bundle(), &DeidConfig::default(), b"salt");
        let Resource::Patient(p) = &result.bundle.entries[0] else {
            panic!("patient expected");
        };
        assert_eq!(p.birth_year, Some(1975)); // 1977 → band [1975, 1979]
    }

    #[test]
    fn references_stay_consistent() {
        let result = deidentify_bundle(&bundle(), &DeidConfig::default(), b"salt");
        let Resource::Patient(p) = &result.bundle.entries[0] else {
            panic!("patient expected");
        };
        let Resource::Observation(o) = &result.bundle.entries[1] else {
            panic!("observation expected");
        };
        assert_eq!(o.subject, p.id, "subject follows the pseudonym");
        assert_ne!(p.id, "p1");
        assert!(p.id.starts_with("anon-"));
    }

    #[test]
    fn clinical_values_untouched() {
        let result = deidentify_bundle(&bundle(), &DeidConfig::default(), b"salt");
        let Resource::Observation(o) = &result.bundle.entries[1] else {
            panic!("observation expected");
        };
        assert_eq!(o.value.value, 6.5);
        assert_eq!(o.code.code, "4548-4");
        assert_eq!(o.effective, SimDate(100));
    }

    #[test]
    fn pseudonym_map_reidentifies() {
        let result = deidentify_bundle(&bundle(), &DeidConfig::default(), b"salt");
        let pseudo = result.pseudonyms.get("p1").unwrap();
        assert_eq!(reidentify(&result.pseudonyms, pseudo), Some("p1"));
        assert_eq!(reidentify(&result.pseudonyms, "anon-deadbeef"), None);
    }

    #[test]
    fn different_salts_unlink_pseudonyms() {
        let a = deidentify_bundle(&bundle(), &DeidConfig::default(), b"salt-a");
        let b = deidentify_bundle(&bundle(), &DeidConfig::default(), b"salt-b");
        assert_ne!(a.pseudonyms.get("p1"), b.pseudonyms.get("p1"));
    }

    #[test]
    fn same_salt_is_deterministic() {
        let a = deidentify_bundle(&bundle(), &DeidConfig::default(), b"s");
        let b = deidentify_bundle(&bundle(), &DeidConfig::default(), b"s");
        assert_eq!(a.pseudonyms, b.pseudonyms);
    }
}
