//! The anonymization verification service.
//!
//! §IV-B1: "the ingestion service may use another service, 'anonymization
//! verification service', in order to verify how good the anonymization on
//! the incoming record is. If the anonymization verification service
//! determines that a claimed anonymized record is not properly anonymized,
//! then such a record is dropped." §IV-C: the degree has a part
//! "independent of other data objects and another that is determined
//! holistically with respect to other data objects" — here: per-record
//! direct-identifier checks (independent) and equivalence-class / linkage
//! analysis over the whole dataset (holistic).

use std::collections::HashMap;

use hc_fhir::resource::{Patient, Resource};

use crate::kanon::{EquivalenceClass, QI_DIMS};

/// The measured degree of anonymization of a dataset.
#[derive(Clone, PartialEq, Debug)]
pub struct AnonymizationDegree {
    /// Achieved k (smallest equivalence class).
    pub k: usize,
    /// Achieved l-diversity (min distinct sensitive values per class).
    pub l: usize,
    /// Average re-identification risk (mean 1/|class|).
    pub average_risk: f64,
    /// Worst-case risk (1/min class size).
    pub max_risk: f64,
}

/// The verdict on a claimed anonymization.
#[derive(Clone, PartialEq, Debug)]
pub enum AnonVerdict {
    /// Meets or exceeds the claimed k (and l, if demanded).
    Accepted(AnonymizationDegree),
    /// Fails the claim; the record set must be dropped per the paper.
    Rejected {
        /// What was measured.
        degree: AnonymizationDegree,
        /// Why it fails.
        reasons: Vec<String>,
    },
}

impl AnonVerdict {
    /// Whether the dataset was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, AnonVerdict::Accepted(_))
    }
}

/// Measures the holistic degree of anonymization of equivalence classes.
pub fn measure(classes: &[EquivalenceClass]) -> AnonymizationDegree {
    let k = classes.iter().map(EquivalenceClass::len).min().unwrap_or(0);
    let l = classes
        .iter()
        .map(EquivalenceClass::distinct_sensitive)
        .min()
        .unwrap_or(0);
    let total: usize = classes.iter().map(EquivalenceClass::len).sum();
    // Average over records of 1/|class| = (#classes)/total records.
    let average_risk = if total == 0 {
        1.0
    } else {
        classes.len() as f64 / total as f64
    };
    AnonymizationDegree {
        k,
        l,
        average_risk,
        max_risk: if k == 0 { 1.0 } else { 1.0 / k as f64 },
    }
}

/// Verifies a claimed `(k, l)` against the measured degree.
pub fn verify_claim(classes: &[EquivalenceClass], claimed_k: usize, required_l: usize) -> AnonVerdict {
    let degree = measure(classes);
    let mut reasons = Vec::new();
    if degree.k < claimed_k {
        reasons.push(format!("claimed k={claimed_k} but measured k={}", degree.k));
    }
    if degree.l < required_l {
        reasons.push(format!(
            "required l={required_l} but measured l={}",
            degree.l
        ));
    }
    if reasons.is_empty() {
        AnonVerdict::Accepted(degree)
    } else {
        AnonVerdict::Rejected { degree, reasons }
    }
}

/// Record-independent check: does a claimed-anonymous FHIR resource still
/// carry direct identifiers?
///
/// Returns the list of violations (empty = clean).
pub fn scan_resource_for_phi(resource: &Resource) -> Vec<String> {
    let mut violations = Vec::new();
    if let Resource::Patient(p) = resource {
        scan_patient(p, &mut violations);
    }
    violations
}

fn scan_patient(p: &Patient, violations: &mut Vec<String>) {
    if p.name.is_some() {
        violations.push("patient name present".to_owned());
    }
    if !p.identifiers.is_empty() {
        violations.push("business identifiers present".to_owned());
    }
    if p.phone.is_some() {
        violations.push("phone number present".to_owned());
    }
    if let Some(a) = &p.address {
        if !a.line.is_empty() {
            violations.push("street address present".to_owned());
        }
        if !a.city.is_empty() {
            violations.push("city present".to_owned());
        }
        if a.postal_code.chars().filter(|c| c.is_ascii_digit()).count() > 3 {
            violations.push("ZIP code beyond 3 digits".to_owned());
        }
    }
}

/// A holistic linkage attack: given an external identified dataset keyed
/// by the same quasi-identifiers, what fraction of anonymized classes pin
/// down a *unique* external identity?
///
/// `external` maps a QI vector to an identity; a class is linkable when
/// exactly one external row falls inside its ranges.
pub fn linkage_attack(
    classes: &[EquivalenceClass],
    external: &HashMap<[u32; QI_DIMS], String>,
) -> f64 {
    if classes.is_empty() {
        return 0.0;
    }
    let mut linkable = 0usize;
    for class in classes {
        let matches = external
            .keys()
            .filter(|qi| (0..QI_DIMS).all(|d| class.ranges[d].contains(qi[d])))
            .count();
        if matches == 1 {
            linkable += 1;
        }
    }
    linkable as f64 / classes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalize::Range;
    use crate::kanon::{mondrian, QiRecord};
    use hc_fhir::resource::Gender;

    fn records(n: usize) -> Vec<QiRecord> {
        let mut rng = hc_common::rng::seeded(9);
        use rand::Rng;
        (0..n)
            .map(|_| {
                QiRecord::new(
                    rng.gen_range(20..80),
                    rng.gen_range(10000..20000),
                    rng.gen_range(0..2),
                    ["A", "B", "C"][rng.gen_range(0..3)],
                )
            })
            .collect()
    }

    #[test]
    fn honest_claim_accepted() {
        let table = mondrian(&records(100), 5).unwrap();
        let verdict = verify_claim(&table.classes, 5, 1);
        assert!(verdict.is_accepted());
    }

    #[test]
    fn inflated_claim_rejected() {
        let table = mondrian(&records(100), 2).unwrap();
        let verdict = verify_claim(&table.classes, 50, 1);
        assert!(!verdict.is_accepted());
        if let AnonVerdict::Rejected { reasons, .. } = verdict {
            assert!(reasons[0].contains("claimed k=50"));
        }
    }

    #[test]
    fn l_diversity_requirement_enforced() {
        // All-same sensitive values → l = 1 < 2.
        let classes = vec![EquivalenceClass {
            ranges: [Range::point(1), Range::point(2), Range::point(0)],
            sensitive: vec!["X".into(); 10],
        }];
        let verdict = verify_claim(&classes, 10, 2);
        assert!(!verdict.is_accepted());
    }

    #[test]
    fn degree_measures_risk() {
        let table = mondrian(&records(100), 10).unwrap();
        let degree = measure(&table.classes);
        assert!(degree.k >= 10);
        assert!(degree.max_risk <= 0.1);
        assert!(degree.average_risk <= degree.max_risk);
    }

    #[test]
    fn scan_flags_identified_patient() {
        let p = Resource::Patient(
            Patient::builder("p")
                .name("Doe", "Jane")
                .phone("555")
                .identifier("ssn", "1")
                .address("1 Main", "Springfield", "IL", "62701")
                .gender(Gender::Female)
                .build(),
        );
        let violations = scan_resource_for_phi(&p);
        assert!(violations.len() >= 4, "{violations:?}");
    }

    #[test]
    fn scan_passes_scrubbed_patient() {
        let mut patient = Patient::builder("p")
            .address("", "", "IL", "627**")
            .build();
        patient.address.as_mut().unwrap().line.clear();
        let violations = scan_resource_for_phi(&Resource::Patient(patient));
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn linkage_attack_measures_uniqueness() {
        // One tight class around a unique external row → fully linkable.
        let classes = vec![EquivalenceClass {
            ranges: [Range::new(40, 41), Range::point(62701), Range::point(1)],
            sensitive: vec!["X".into(); 5],
        }];
        let mut external = HashMap::new();
        external.insert([40, 62701, 1], "Jane Doe".to_owned());
        assert_eq!(linkage_attack(&classes, &external), 1.0);
        // Add a second matching row → ambiguous → not linkable.
        external.insert([41, 62701, 1], "John Roe".to_owned());
        assert_eq!(linkage_attack(&classes, &external), 0.0);
    }

    #[test]
    fn empty_classes_zero_linkage() {
        assert_eq!(linkage_attack(&[], &HashMap::new()), 0.0);
    }
}
