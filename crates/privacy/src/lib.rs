//! De-identification, anonymization and anonymization verification.
//!
//! The paper's privacy stack (§IV-C): "The enhanced client can anonymize
//! the data it is sending to the system. Our anonymization verification
//! service verifies the degree of anonymization of the receiving data …
//! The degree of anonymization/privacy has two parts – one independent of
//! other data objects and another that is determined holistically with
//! respect to other data objects."
//!
//! * [`phi`] — HIPAA Safe Harbor de-identification of FHIR resources:
//!   direct identifiers removed, quasi-identifiers generalized, and a
//!   pseudonym map retained (separately!) for authorized re-identification.
//! * [`generalize`] — generalization hierarchies (age bands, ZIP prefixes,
//!   date → year).
//! * [`kanon`] — Mondrian-style multidimensional k-anonymity with
//!   information-loss (NCP) accounting, plus l-diversity checking.
//! * [`verify`] — the anonymization verification service: measures the
//!   *achieved* k, l and linkage risk of a dataset (record-independent and
//!   holistic parts), so the platform can reject under-anonymized uploads.

#![forbid(unsafe_code)]

pub mod generalize;
pub mod kanon;
pub mod phi;
pub mod verify;
