//! Mondrian-style multidimensional k-anonymity.
//!
//! Records are quasi-identifier vectors (age, ZIP, gender code) with a
//! sensitive attribute. The greedy Mondrian algorithm recursively splits
//! the cohort at the median of the widest (normalized) dimension while
//! both halves keep at least `k` records; leaves become equivalence
//! classes whose quasi-identifiers are generalized to ranges. Information
//! loss is reported as Normalized Certainty Penalty (NCP), the standard
//! utility metric for E7.

use serde::{Deserialize, Serialize};

use crate::generalize::Range;

/// Number of quasi-identifier dimensions.
pub const QI_DIMS: usize = 3;

/// A record entering anonymization: quasi-identifiers + sensitive value.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct QiRecord {
    /// Quasi-identifiers: `[age, zip, gender_code]`.
    pub qi: [u32; QI_DIMS],
    /// The sensitive attribute (e.g. diagnosis code).
    pub sensitive: String,
}

impl QiRecord {
    /// Creates a record.
    pub fn new(age: u32, zip: u32, gender_code: u32, sensitive: &str) -> Self {
        QiRecord {
            qi: [age, zip, gender_code],
            sensitive: sensitive.to_owned(),
        }
    }
}

/// An equivalence class of the anonymized output.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EquivalenceClass {
    /// Generalized ranges, one per QI dimension.
    pub ranges: [Range; QI_DIMS],
    /// Sensitive values of the member records.
    pub sensitive: Vec<String>,
}

impl EquivalenceClass {
    /// Number of records in the class.
    pub fn len(&self) -> usize {
        self.sensitive.len()
    }

    /// Whether the class is empty (never true in valid output).
    pub fn is_empty(&self) -> bool {
        self.sensitive.is_empty()
    }

    /// Number of distinct sensitive values (the class's l-diversity).
    pub fn distinct_sensitive(&self) -> usize {
        let mut values: Vec<&str> = self.sensitive.iter().map(String::as_str).collect();
        values.sort_unstable();
        values.dedup();
        values.len()
    }
}

/// The anonymized dataset plus its quality metrics.
#[derive(Clone, PartialEq, Debug)]
pub struct AnonymizedTable {
    /// The equivalence classes.
    pub classes: Vec<EquivalenceClass>,
    /// The k that was requested.
    pub requested_k: usize,
    /// Information loss in `[0, 1]` (NCP; 0 = no generalization).
    pub information_loss: f64,
}

impl AnonymizedTable {
    /// The k actually achieved (smallest class size); 0 for empty output.
    pub fn achieved_k(&self) -> usize {
        self.classes.iter().map(EquivalenceClass::len).min().unwrap_or(0)
    }

    /// The l-diversity actually achieved (min distinct sensitive values).
    pub fn achieved_l(&self) -> usize {
        self.classes
            .iter()
            .map(EquivalenceClass::distinct_sensitive)
            .min()
            .unwrap_or(0)
    }

    /// Average re-identification risk: mean over records of 1/|class|.
    pub fn average_risk(&self) -> f64 {
        let total: usize = self.classes.iter().map(EquivalenceClass::len).sum();
        if total == 0 {
            return 0.0;
        }
        let risk_sum: f64 = self
            .classes
            .iter()
            .map(|c| c.len() as f64 * (1.0 / c.len() as f64))
            .sum();
        risk_sum / total as f64
    }

    /// Worst-case (maximum) re-identification risk: 1/min class size.
    pub fn max_risk(&self) -> f64 {
        match self.achieved_k() {
            0 => 0.0,
            k => 1.0 / k as f64,
        }
    }
}

/// Errors from anonymization.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnonError {
    /// Fewer records than `k`; no k-anonymous output exists.
    TooFewRecords {
        /// Records supplied.
        have: usize,
        /// The requested k.
        k: usize,
    },
    /// k must be at least 1.
    BadK,
}

impl std::fmt::Display for AnonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnonError::TooFewRecords { have, k } => {
                write!(f, "{have} records cannot be {k}-anonymized")
            }
            AnonError::BadK => f.write_str("k must be at least 1"),
        }
    }
}

impl std::error::Error for AnonError {}

fn dim_range(records: &[QiRecord], dim: usize) -> Range {
    let lo = records.iter().map(|r| r.qi[dim]).min().expect("nonempty");
    let hi = records.iter().map(|r| r.qi[dim]).max().expect("nonempty");
    Range::new(lo, hi)
}

fn partition(records: Vec<QiRecord>, k: usize, domains: &[Range; QI_DIMS], out: &mut Vec<EquivalenceClass>) {
    // Choose the dimension with the widest normalized range that admits a
    // valid split.
    let mut dims: Vec<usize> = (0..QI_DIMS).collect();
    dims.sort_by(|&a, &b| {
        let norm = |d: usize| {
            let w = dim_range(&records, d).width() as f64;
            let dw = domains[d].width().max(1) as f64;
            w / dw
        };
        norm(b).partial_cmp(&norm(a)).expect("finite")
    });

    for &dim in &dims {
        let mut values: Vec<u32> = records.iter().map(|r| r.qi[dim]).collect();
        values.sort_unstable();
        let median = values[values.len() / 2];
        // Strict split: left < median ≤ right — guarantees progress.
        let (left, right): (Vec<QiRecord>, Vec<QiRecord>) =
            records.iter().cloned().partition(|r| r.qi[dim] < median);
        if left.len() >= k && right.len() >= k {
            partition(left, k, domains, out);
            partition(right, k, domains, out);
            return;
        }
    }

    // No dimension splittable: this is a leaf equivalence class.
    let ranges = [
        dim_range(&records, 0),
        dim_range(&records, 1),
        dim_range(&records, 2),
    ];
    out.push(EquivalenceClass {
        ranges,
        sensitive: records.into_iter().map(|r| r.sensitive).collect(),
    });
}

/// Anonymizes `records` to k-anonymity via Mondrian partitioning.
///
/// # Errors
///
/// Fails when `k == 0` or fewer than `k` records are supplied.
pub fn mondrian(records: &[QiRecord], k: usize) -> Result<AnonymizedTable, AnonError> {
    if k == 0 {
        return Err(AnonError::BadK);
    }
    if records.len() < k {
        return Err(AnonError::TooFewRecords {
            have: records.len(),
            k,
        });
    }
    let domains = [
        dim_range(records, 0),
        dim_range(records, 1),
        dim_range(records, 2),
    ];
    let mut classes = Vec::new();
    partition(records.to_vec(), k, &domains, &mut classes);

    // NCP information loss.
    let total = records.len() as f64;
    let mut loss = 0.0;
    for class in &classes {
        let mut ncp = 0.0;
        for (range, domain) in class.ranges.iter().zip(domains.iter()) {
            let dw = domain.width();
            if dw > 0 {
                ncp += range.width() as f64 / dw as f64;
            }
        }
        loss += class.len() as f64 * (ncp / QI_DIMS as f64);
    }

    Ok(AnonymizedTable {
        classes,
        requested_k: k,
        information_loss: loss / total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    fn cohort(n: usize, seed: u64) -> Vec<QiRecord> {
        let mut rng = hc_common::rng::seeded(seed);
        (0..n)
            .map(|_| {
                QiRecord::new(
                    rng.gen_range(18..90),
                    rng.gen_range(60000..63000),
                    rng.gen_range(0..2),
                    ["E11.9", "I10", "J45", "C50"][rng.gen_range(0..4)],
                )
            })
            .collect()
    }

    #[test]
    fn achieves_requested_k() {
        let records = cohort(200, 1);
        for k in [2, 5, 10, 25] {
            let table = mondrian(&records, k).unwrap();
            assert!(table.achieved_k() >= k, "k={k}");
            let total: usize = table.classes.iter().map(|c| c.len()).sum();
            assert_eq!(total, 200, "no records lost");
        }
    }

    #[test]
    fn loss_increases_with_k() {
        let records = cohort(300, 2);
        let l2 = mondrian(&records, 2).unwrap().information_loss;
        let l25 = mondrian(&records, 25).unwrap().information_loss;
        assert!(l25 > l2, "more anonymity costs more utility: {l2} vs {l25}");
    }

    #[test]
    fn risk_decreases_with_k() {
        let records = cohort(300, 3);
        let r2 = mondrian(&records, 2).unwrap().max_risk();
        let r25 = mondrian(&records, 25).unwrap().max_risk();
        assert!(r25 < r2);
        assert!(r25 <= 1.0 / 25.0);
    }

    #[test]
    fn k1_is_identity_like() {
        let records = cohort(50, 4);
        let table = mondrian(&records, 1).unwrap();
        assert!(table.achieved_k() >= 1);
        // With k=1 Mondrian splits aggressively → low loss.
        assert!(table.information_loss < 0.2);
    }

    #[test]
    fn too_few_records_rejected() {
        let records = cohort(3, 5);
        assert_eq!(
            mondrian(&records, 5).unwrap_err(),
            AnonError::TooFewRecords { have: 3, k: 5 }
        );
        assert_eq!(mondrian(&records, 0).unwrap_err(), AnonError::BadK);
    }

    #[test]
    fn identical_records_form_one_class() {
        let records: Vec<QiRecord> = (0..10).map(|_| QiRecord::new(40, 62701, 1, "E11.9")).collect();
        let table = mondrian(&records, 3).unwrap();
        assert_eq!(table.classes.len(), 1);
        assert_eq!(table.information_loss, 0.0);
        assert_eq!(table.achieved_l(), 1);
    }

    #[test]
    fn l_diversity_reported() {
        let mut records = Vec::new();
        for i in 0..10 {
            records.push(QiRecord::new(30 + i, 62701, 0, if i % 2 == 0 { "A" } else { "B" }));
        }
        let table = mondrian(&records, 10).unwrap();
        assert_eq!(table.achieved_l(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn every_class_at_least_k(n in 10usize..120, k in 2usize..8, seed in 0u64..100) {
            let records = cohort(n, seed);
            prop_assume!(n >= k);
            let table = mondrian(&records, k).unwrap();
            for class in &table.classes {
                prop_assert!(class.len() >= k);
            }
        }

        #[test]
        fn records_stay_inside_their_ranges(seed in 0u64..50) {
            let records = cohort(60, seed);
            let table = mondrian(&records, 4).unwrap();
            // Every original record must fit some class's ranges.
            for r in &records {
                let fits = table.classes.iter().any(|c| {
                    (0..QI_DIMS).all(|d| c.ranges[d].contains(r.qi[d]))
                });
                prop_assert!(fits);
            }
        }
    }
}
