//! Planted concurrency defects for the `hc-mc` self-check.
//!
//! Every type here carries a deliberate bug (or its corrected twin) in a
//! shape the checker must catch — the self-check fails the build if it
//! stops catching them:
//!
//! * [`RacyCounter::bump_lost_update`] — the classic read-then-write
//!   lost update split across two critical sections. The logical write
//!   annotation between them races under happens-before, and the
//!   explorer finds an interleaving where an increment is lost.
//! * [`RacyCounter::bump_atomic`] — the corrected twin: one critical
//!   section, provably race-free, used to pin the no-false-positive
//!   direction.
//! * [`AbbaPair`] — two locks taken in opposite orders by two methods:
//!   statically a `lock-order-inversion` for `hc-lint`, dynamically an
//!   ABBA deadlock the controlled scheduler drives into.
//!
//! This crate is a test fixture: nothing in it should be used by product
//! code, and its planted static findings are baselined (and cross-check
//! confirmed) rather than fixed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hc_common::conc::mc;
use parking_lot::Mutex;

/// A counter whose buggy increment path loses updates under contention.
#[derive(Debug, Default)]
pub struct RacyCounter {
    inner: Mutex<u64>,
}

impl RacyCounter {
    /// An empty counter.
    pub const fn new() -> Self {
        RacyCounter {
            inner: Mutex::new(0),
        }
    }

    /// PLANTED BUG: reads the value in one critical section and writes
    /// the incremented value in another. Two threads interleaved between
    /// the sections both read the same value and one increment is lost.
    pub fn bump_lost_update(&self) {
        let seen = *self.inner.lock();
        // The logical counter state is read and re-derived outside any
        // lock here — this is the racing access the HB engine flags.
        mc::write("fixtures.racy_counter");
        *self.inner.lock() = seen + 1;
    }

    /// The corrected twin: read-modify-write in one critical section.
    pub fn bump_atomic(&self) {
        let mut value = self.inner.lock();
        mc::write("fixtures.racy_counter.atomic");
        *value += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        *self.inner.lock()
    }
}

/// Two accounts guarded by two locks that the buggy paths acquire in
/// opposite orders.
#[derive(Debug, Default)]
pub struct AbbaPair {
    debit: Mutex<i64>,
    credit: Mutex<i64>,
}

impl AbbaPair {
    /// A pair with both balances zero.
    pub const fn new() -> Self {
        AbbaPair {
            debit: Mutex::new(0),
            credit: Mutex::new(0),
        }
    }

    /// Acquires `debit` then `credit` (the A→B order).
    pub fn transfer_forward(&self, amount: i64) {
        let mut d = self.debit.lock();
        let mut c = self.credit.lock();
        *d -= amount;
        *c += amount;
    }

    /// PLANTED BUG: acquires `credit` then `debit` — the reversed B→A
    /// order. Together with [`Self::transfer_forward`] this is a static
    /// `lock-order-inversion` and, under the right two-thread schedule,
    /// a real ABBA deadlock.
    pub fn transfer_reverse(&self, amount: i64) {
        let mut c = self.credit.lock();
        let mut d = self.debit.lock();
        *c -= amount;
        *d += amount;
    }

    /// The model-checker identities of the two locks, in (debit, credit)
    /// order, so models can bind schedule reports to the static finding.
    pub fn lock_ids(&self) -> (u64, u64) {
        (self.debit.mc_object_id(), self.credit.mc_object_id())
    }

    /// Net balance across both accounts (always 0 when quiescent).
    pub fn net(&self) -> i64 {
        *self.debit.lock() + *self.credit.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_paths_count_when_uncontended() {
        let c = RacyCounter::new();
        c.bump_lost_update();
        c.bump_atomic();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn transfers_conserve_balance_when_uncontended() {
        let p = AbbaPair::new();
        p.transfer_forward(10);
        p.transfer_reverse(4);
        assert_eq!(p.net(), 0);
    }
}
