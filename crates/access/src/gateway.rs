//! The API gateway: authenticate → authorize → rate-limit → audit.
//!
//! §II-B: "The platform exposes secure APIs for all its capabilities. The
//! API management system first authenticates the user requesting the APIs,
//! and once successfully authenticated, it consults the Privacy Management
//! system and allows API access accordingly."

use hc_common::clock::{SimClock, SimInstant};
use hc_common::id::{EnvId, OrgId, UserId};
use std::collections::HashMap;

use crate::identity::{AuthError, AuthToken, TokenService};
use crate::model::Permission;
use crate::rbac::RbacEngine;

/// Why an API request was denied.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Denial {
    /// Token invalid or expired.
    Authentication(AuthError),
    /// RBAC refused the permission.
    Authorization {
        /// The permission that was required.
        required: Permission,
    },
    /// The caller exceeded its request budget.
    RateLimited,
}

impl std::fmt::Display for Denial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Denial::Authentication(e) => write!(f, "authentication failed: {e}"),
            Denial::Authorization { required } => {
                write!(f, "missing permission {required:?}")
            }
            Denial::RateLimited => f.write_str("rate limit exceeded"),
        }
    }
}

impl std::error::Error for Denial {}

/// An audit record for one API decision.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AccessRecord {
    /// The caller (unknown for failed authentication).
    pub user: Option<UserId>,
    /// The API operation name.
    pub operation: String,
    /// The permission the operation required — the observed-use signal the
    /// posture scanner compares against granted role permissions.
    pub permission: Permission,
    /// Whether it was allowed.
    pub allowed: bool,
    /// When.
    pub at: SimInstant,
}

/// A token-bucket rate limiter per user.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill: SimInstant,
}

/// The API gateway.
#[derive(Debug)]
pub struct ApiGateway {
    clock: SimClock,
    rate_per_sec: f64,
    burst: f64,
    buckets: HashMap<UserId, Bucket>,
    audit: Vec<AccessRecord>,
}

impl ApiGateway {
    /// Creates a gateway with the given steady rate and burst capacity.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` or `burst` are not positive.
    pub fn new(clock: SimClock, rate_per_sec: f64, burst: f64) -> Self {
        assert!(rate_per_sec > 0.0 && burst > 0.0, "rates must be positive");
        ApiGateway {
            clock,
            rate_per_sec,
            burst,
            buckets: HashMap::new(),
            audit: Vec::new(),
        }
    }

    fn take_token(&mut self, user: UserId) -> bool {
        let now = self.clock.now();
        let bucket = self.buckets.entry(user).or_insert(Bucket {
            tokens: self.burst,
            last_refill: now,
        });
        let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate_per_sec).min(self.burst);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Authorizes one API call end to end.
    ///
    /// # Errors
    ///
    /// Returns the first [`Denial`] encountered (authentication, then
    /// rate limit, then authorization), and records the decision in the
    /// audit log either way.
    #[allow(clippy::too_many_arguments)] // mirrors the request's full context
    pub fn authorize(
        &mut self,
        tokens: &TokenService,
        rbac: &RbacEngine,
        token: &AuthToken,
        org: OrgId,
        env: EnvId,
        required: Permission,
        operation: &str,
    ) -> Result<UserId, Denial> {
        let now = self.clock.now();
        let user = match tokens.verify(token) {
            Ok(u) => u,
            Err(e) => {
                self.audit.push(AccessRecord {
                    user: None,
                    operation: operation.to_owned(),
                    permission: required,
                    allowed: false,
                    at: now,
                });
                return Err(Denial::Authentication(e));
            }
        };
        if !self.take_token(user) {
            self.audit.push(AccessRecord {
                user: Some(user),
                operation: operation.to_owned(),
                permission: required,
                allowed: false,
                at: now,
            });
            return Err(Denial::RateLimited);
        }
        if !rbac.check(user, org, env, required) {
            self.audit.push(AccessRecord {
                user: Some(user),
                operation: operation.to_owned(),
                permission: required,
                allowed: false,
                at: now,
            });
            return Err(Denial::Authorization { required });
        }
        self.audit.push(AccessRecord {
            user: Some(user),
            operation: operation.to_owned(),
            permission: required,
            allowed: true,
            at: now,
        });
        Ok(user)
    }

    /// The audit log of every decision.
    pub fn audit_log(&self) -> &[AccessRecord] {
        &self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::LocalDirectory;
    use crate::model::{Action, ResourceKind};
    use hc_common::clock::SimDuration;

    struct World {
        gateway: ApiGateway,
        tokens: TokenService,
        rbac: RbacEngine,
        token: AuthToken,
        org: OrgId,
        env: EnvId,
        clock: SimClock,
    }

    fn world() -> World {
        let clock = SimClock::new();
        let mut rng = hc_common::rng::seeded(40);
        let mut rbac = RbacEngine::new();
        let (tenant, org, env) = rbac.register_tenant(&mut rng, "t");
        let user = rbac.add_user(&mut rng, tenant, "alice").unwrap();
        rbac.assign(user, org, env, "clinician").unwrap();
        let tokens = TokenService::new([3u8; 32], clock.clone());
        let mut dir = LocalDirectory::new();
        dir.enroll("alice", b"pw", user);
        let token = tokens.login(&dir, "alice", b"pw").unwrap();
        World {
            gateway: ApiGateway::new(clock.clone(), 10.0, 3.0),
            tokens,
            rbac,
            token,
            org,
            env,
            clock,
        }
    }

    fn read_phi() -> Permission {
        Permission::new(ResourceKind::PatientData, Action::Read)
    }

    #[test]
    fn authorized_call_allowed() {
        let mut w = world();
        let result = w.gateway.authorize(
            &w.tokens, &w.rbac, &w.token, w.org, w.env, read_phi(), "get-record",
        );
        assert!(result.is_ok());
        assert!(w.gateway.audit_log()[0].allowed);
    }

    #[test]
    fn missing_permission_denied_and_audited() {
        let mut w = world();
        let admin_perm = Permission::new(ResourceKind::Key, Action::Admin);
        let result = w.gateway.authorize(
            &w.tokens, &w.rbac, &w.token, w.org, w.env, admin_perm, "rotate-key",
        );
        assert!(matches!(result, Err(Denial::Authorization { .. })));
        let last = w.gateway.audit_log().last().unwrap();
        assert!(!last.allowed);
        assert_eq!(last.operation, "rotate-key");
    }

    #[test]
    fn forged_token_denied() {
        let mut w = world();
        let mut forged = w.token.clone();
        forged.user = UserId::from_raw(666);
        let result = w.gateway.authorize(
            &w.tokens, &w.rbac, &forged, w.org, w.env, read_phi(), "get-record",
        );
        assert!(matches!(result, Err(Denial::Authentication(_))));
        assert_eq!(w.gateway.audit_log()[0].user, None);
    }

    #[test]
    fn burst_exhaustion_rate_limits() {
        let mut w = world();
        for _ in 0..3 {
            w.gateway
                .authorize(&w.tokens, &w.rbac, &w.token, w.org, w.env, read_phi(), "op")
                .unwrap();
        }
        let result = w
            .gateway
            .authorize(&w.tokens, &w.rbac, &w.token, w.org, w.env, read_phi(), "op");
        assert_eq!(result.unwrap_err(), Denial::RateLimited);
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut w = world();
        for _ in 0..3 {
            w.gateway
                .authorize(&w.tokens, &w.rbac, &w.token, w.org, w.env, read_phi(), "op")
                .unwrap();
        }
        w.clock.advance(SimDuration::from_millis(200)); // 10/s → 2 tokens
        assert!(w
            .gateway
            .authorize(&w.tokens, &w.rbac, &w.token, w.org, w.env, read_phi(), "op")
            .is_ok());
    }

    #[test]
    fn audit_log_grows_per_decision() {
        let mut w = world();
        let _ = w
            .gateway
            .authorize(&w.tokens, &w.rbac, &w.token, w.org, w.env, read_phi(), "a");
        let _ = w.gateway.authorize(
            &w.tokens,
            &w.rbac,
            &w.token,
            w.org,
            w.env,
            Permission::new(ResourceKind::Key, Action::Admin),
            "b",
        );
        assert_eq!(w.gateway.audit_log().len(), 2);
    }
}
