//! RBAC vocabulary: actions, resource kinds, permissions and roles.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// What a principal wants to do.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
pub enum Action {
    /// Read a resource.
    Read,
    /// Create or modify a resource.
    Write,
    /// Administer (grant, configure, delete).
    Admin,
}

/// The kinds of resources the platform protects.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
pub enum ResourceKind {
    /// Identified protected health information.
    PatientData,
    /// De-identified / anonymized data.
    AnonymizedData,
    /// Analytics models and their artifacts.
    Model,
    /// Deployed services and their configuration.
    Service,
    /// Development/deployment environments.
    Environment,
    /// Audit logs and compliance reports.
    AuditLog,
    /// Encryption keys (KMS operations).
    Key,
}

/// A permission: an action on a resource kind.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
pub struct Permission {
    /// The protected resource kind.
    pub kind: ResourceKind,
    /// The permitted action.
    pub action: Action,
}

impl Permission {
    /// Creates a permission.
    pub const fn new(kind: ResourceKind, action: Action) -> Self {
        Permission { kind, action }
    }
}

/// A named set of permissions.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Role {
    /// Role name, unique within the platform.
    pub name: String,
    /// The permissions the role conveys.
    pub permissions: BTreeSet<Permission>,
}

impl Role {
    /// Creates a role from a permission list.
    pub fn new(name: &str, permissions: impl IntoIterator<Item = Permission>) -> Self {
        Role {
            name: name.to_owned(),
            permissions: permissions.into_iter().collect(),
        }
    }

    /// Whether the role conveys `permission`.
    pub fn allows(&self, permission: Permission) -> bool {
        self.permissions.contains(&permission)
    }

    /// Platform administrator: full control of infrastructure and keys,
    /// but **no plaintext PHI access**. Administering patient-data
    /// resources (lifecycle, retention, crypto-shredding) does not require
    /// reading them, and the posture scanner's over-privilege rule
    /// (`posture-admin-on-phi-path`) treats admin-class principals holding
    /// PHI read/write as a deployment defect.
    pub fn admin() -> Self {
        let mut permissions = BTreeSet::new();
        for kind in [
            ResourceKind::AnonymizedData,
            ResourceKind::Model,
            ResourceKind::Service,
            ResourceKind::Environment,
            ResourceKind::AuditLog,
            ResourceKind::Key,
        ] {
            for action in [Action::Read, Action::Write, Action::Admin] {
                permissions.insert(Permission::new(kind, action));
            }
        }
        permissions.insert(Permission::new(ResourceKind::PatientData, Action::Admin));
        Role {
            name: "admin".into(),
            permissions,
        }
    }

    /// Clinician: read/write identified patient data.
    pub fn clinician() -> Self {
        Role::new(
            "clinician",
            [
                Permission::new(ResourceKind::PatientData, Action::Read),
                Permission::new(ResourceKind::PatientData, Action::Write),
                Permission::new(ResourceKind::AnonymizedData, Action::Read),
            ],
        )
    }

    /// Researcher: anonymized data and models only — never identified PHI.
    pub fn researcher() -> Self {
        Role::new(
            "researcher",
            [
                Permission::new(ResourceKind::AnonymizedData, Action::Read),
                Permission::new(ResourceKind::Model, Action::Read),
                Permission::new(ResourceKind::Model, Action::Write),
            ],
        )
    }

    /// Auditor: read-only on audit logs and anonymized data.
    pub fn auditor() -> Self {
        Role::new(
            "auditor",
            [
                Permission::new(ResourceKind::AuditLog, Action::Read),
                Permission::new(ResourceKind::AnonymizedData, Action::Read),
            ],
        )
    }

    /// Device: write-only ingestion of its own patient's data.
    pub fn device() -> Self {
        Role::new(
            "device",
            [Permission::new(ResourceKind::PatientData, Action::Write)],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admin_controls_infrastructure_but_not_plaintext_phi() {
        let admin = Role::admin();
        assert!(admin.allows(Permission::new(ResourceKind::Key, Action::Admin)));
        assert!(admin.allows(Permission::new(ResourceKind::Service, Action::Write)));
        assert!(admin.allows(Permission::new(ResourceKind::PatientData, Action::Admin)));
        assert!(!admin.allows(Permission::new(ResourceKind::PatientData, Action::Read)));
        assert!(!admin.allows(Permission::new(ResourceKind::PatientData, Action::Write)));
    }

    #[test]
    fn researcher_cannot_touch_phi() {
        let r = Role::researcher();
        assert!(!r.allows(Permission::new(ResourceKind::PatientData, Action::Read)));
        assert!(r.allows(Permission::new(ResourceKind::AnonymizedData, Action::Read)));
        assert!(r.allows(Permission::new(ResourceKind::Model, Action::Write)));
    }

    #[test]
    fn auditor_is_read_only() {
        let a = Role::auditor();
        assert!(a.allows(Permission::new(ResourceKind::AuditLog, Action::Read)));
        assert!(!a.allows(Permission::new(ResourceKind::AuditLog, Action::Write)));
    }

    #[test]
    fn device_write_only() {
        let d = Role::device();
        assert!(d.allows(Permission::new(ResourceKind::PatientData, Action::Write)));
        assert!(!d.allows(Permission::new(ResourceKind::PatientData, Action::Read)));
    }

    #[test]
    fn custom_role() {
        let r = Role::new("x", [Permission::new(ResourceKind::Service, Action::Read)]);
        assert_eq!(r.permissions.len(), 1);
        assert_eq!(r.name, "x");
    }
}
