//! The RBAC engine: tenants, organizations, environments, groups, users
//! and scoped role assignments.
//!
//! "Users can have different roles in different environments within an
//! organization which would govern their access privileges" (§II-B) — the
//! assignment key is therefore `(user, organization, environment)`.

use std::collections::HashMap;

use rand::Rng;

use hc_common::id::{EnvId, GroupId, OrgId, TenantId, UserId};

use crate::model::{Permission, Role};

/// Kind of environment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnvKind {
    /// Development/test.
    Development,
    /// Production (PHI-bearing).
    Production,
}

/// Errors from the RBAC engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RbacError {
    /// Referenced tenant does not exist.
    UnknownTenant(TenantId),
    /// Referenced organization does not exist.
    UnknownOrg(OrgId),
    /// Referenced environment does not exist.
    UnknownEnv(EnvId),
    /// Referenced user does not exist.
    UnknownUser(UserId),
    /// Referenced role name is not registered.
    UnknownRole(String),
    /// The entity belongs to a different tenant.
    TenantMismatch,
}

impl std::fmt::Display for RbacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RbacError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            RbacError::UnknownOrg(o) => write!(f, "unknown organization {o}"),
            RbacError::UnknownEnv(e) => write!(f, "unknown environment {e}"),
            RbacError::UnknownUser(u) => write!(f, "unknown user {u}"),
            RbacError::UnknownRole(r) => write!(f, "unknown role `{r}`"),
            RbacError::TenantMismatch => f.write_str("entity belongs to a different tenant"),
        }
    }
}

impl std::error::Error for RbacError {}

#[derive(Debug)]
struct TenantRecord {
    name: String,
}

#[derive(Debug)]
struct OrgRecord {
    tenant: TenantId,
    name: String,
}

#[derive(Debug)]
struct EnvRecord {
    org: OrgId,
    name: String,
    kind: EnvKind,
}

#[derive(Debug)]
struct GroupRecord {
    org: OrgId,
    study: String,
}

#[derive(Debug)]
struct UserRecord {
    tenant: TenantId,
    username: String,
}

/// The RBAC engine.
#[derive(Debug, Default)]
pub struct RbacEngine {
    tenants: HashMap<TenantId, TenantRecord>,
    orgs: HashMap<OrgId, OrgRecord>,
    envs: HashMap<EnvId, EnvRecord>,
    groups: HashMap<GroupId, GroupRecord>,
    users: HashMap<UserId, UserRecord>,
    roles: HashMap<String, Role>,
    assignments: HashMap<(UserId, OrgId, EnvId), Vec<String>>,
}

impl RbacEngine {
    /// Creates an engine pre-loaded with the built-in roles.
    pub fn new() -> Self {
        let mut engine = RbacEngine::default();
        for role in [
            Role::admin(),
            Role::clinician(),
            Role::researcher(),
            Role::auditor(),
            Role::device(),
        ] {
            engine.roles.insert(role.name.clone(), role);
        }
        engine
    }

    /// Registers a tenant ("an account at an enterprise level", §II-B)
    /// with a default organization and a default development environment,
    /// as the paper's registration service prescribes.
    pub fn register_tenant<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        name: &str,
    ) -> (TenantId, OrgId, EnvId) {
        let tenant = TenantId::random(rng);
        self.tenants.insert(
            tenant,
            TenantRecord {
                name: name.to_owned(),
            },
        );
        let org = self
            .add_org(rng, tenant, "default")
            .expect("tenant just created");
        let env = self
            .add_env(rng, org, "default-dev", EnvKind::Development)
            .expect("org just created");
        (tenant, org, env)
    }

    /// Adds an organization under a tenant.
    ///
    /// # Errors
    ///
    /// Fails for an unknown tenant.
    pub fn add_org<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        tenant: TenantId,
        name: &str,
    ) -> Result<OrgId, RbacError> {
        if !self.tenants.contains_key(&tenant) {
            return Err(RbacError::UnknownTenant(tenant));
        }
        let org = OrgId::random(rng);
        self.orgs.insert(
            org,
            OrgRecord {
                tenant,
                name: name.to_owned(),
            },
        );
        Ok(org)
    }

    /// Adds an environment under an organization.
    ///
    /// # Errors
    ///
    /// Fails for an unknown organization.
    pub fn add_env<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        org: OrgId,
        name: &str,
        kind: EnvKind,
    ) -> Result<EnvId, RbacError> {
        if !self.orgs.contains_key(&org) {
            return Err(RbacError::UnknownOrg(org));
        }
        let env = EnvId::random(rng);
        self.envs.insert(
            env,
            EnvRecord {
                org,
                name: name.to_owned(),
                kind,
            },
        );
        Ok(env)
    }

    /// Adds a group (healthcare study/program) under an organization.
    ///
    /// # Errors
    ///
    /// Fails for an unknown organization.
    pub fn add_group<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        org: OrgId,
        study: &str,
    ) -> Result<GroupId, RbacError> {
        if !self.orgs.contains_key(&org) {
            return Err(RbacError::UnknownOrg(org));
        }
        let group = GroupId::random(rng);
        self.groups.insert(
            group,
            GroupRecord {
                org,
                study: study.to_owned(),
            },
        );
        Ok(group)
    }

    /// Registers a user under a tenant.
    ///
    /// # Errors
    ///
    /// Fails for an unknown tenant.
    pub fn add_user<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        tenant: TenantId,
        username: &str,
    ) -> Result<UserId, RbacError> {
        if !self.tenants.contains_key(&tenant) {
            return Err(RbacError::UnknownTenant(tenant));
        }
        let user = UserId::random(rng);
        self.users.insert(
            user,
            UserRecord {
                tenant,
                username: username.to_owned(),
            },
        );
        Ok(user)
    }

    /// Registers a custom role.
    pub fn add_role(&mut self, role: Role) {
        self.roles.insert(role.name.clone(), role);
    }

    /// Assigns a role to a user in a specific (org, env) scope.
    ///
    /// # Errors
    ///
    /// Fails for unknown entities, unknown role names, or when the user,
    /// organization and environment do not belong to the same tenant.
    pub fn assign(
        &mut self,
        user: UserId,
        org: OrgId,
        env: EnvId,
        role_name: &str,
    ) -> Result<(), RbacError> {
        let user_rec = self.users.get(&user).ok_or(RbacError::UnknownUser(user))?;
        let org_rec = self.orgs.get(&org).ok_or(RbacError::UnknownOrg(org))?;
        let env_rec = self.envs.get(&env).ok_or(RbacError::UnknownEnv(env))?;
        if !self.roles.contains_key(role_name) {
            return Err(RbacError::UnknownRole(role_name.to_owned()));
        }
        if org_rec.tenant != user_rec.tenant || env_rec.org != org {
            return Err(RbacError::TenantMismatch);
        }
        let roles = self.assignments.entry((user, org, env)).or_default();
        if !roles.iter().any(|r| r == role_name) {
            roles.push(role_name.to_owned());
        }
        Ok(())
    }

    /// Removes a role assignment (no-op if absent).
    pub fn unassign(&mut self, user: UserId, org: OrgId, env: EnvId, role_name: &str) {
        if let Some(roles) = self.assignments.get_mut(&(user, org, env)) {
            roles.retain(|r| r != role_name);
        }
    }

    /// The core check: does `user` hold `permission` in `(org, env)`?
    pub fn check(&self, user: UserId, org: OrgId, env: EnvId, permission: Permission) -> bool {
        self.assignments
            .get(&(user, org, env))
            .map(|role_names| {
                role_names.iter().any(|name| {
                    self.roles
                        .get(name)
                        .map(|r| r.allows(permission))
                        .unwrap_or(false)
                })
            })
            .unwrap_or(false)
    }

    /// Role names assigned to a user in a scope.
    pub fn roles_of(&self, user: UserId, org: OrgId, env: EnvId) -> Vec<String> {
        self.assignments
            .get(&(user, org, env))
            .cloned()
            .unwrap_or_default()
    }

    /// The tenant a user belongs to.
    pub fn tenant_of(&self, user: UserId) -> Option<TenantId> {
        self.users.get(&user).map(|u| u.tenant)
    }

    /// The username of a user.
    pub fn username_of(&self, user: UserId) -> Option<&str> {
        self.users.get(&user).map(|u| u.username.as_str())
    }

    /// The study name of a group.
    pub fn study_of(&self, group: GroupId) -> Option<&str> {
        self.groups.get(&group).map(|g| g.study.as_str())
    }

    /// The organization a group belongs to.
    pub fn group_org(&self, group: GroupId) -> Option<OrgId> {
        self.groups.get(&group).map(|g| g.org)
    }

    /// Environment kind lookup.
    pub fn env_kind(&self, env: EnvId) -> Option<EnvKind> {
        self.envs.get(&env).map(|e| e.kind)
    }

    /// Tenant display name.
    pub fn tenant_name(&self, tenant: TenantId) -> Option<&str> {
        self.tenants.get(&tenant).map(|t| t.name.as_str())
    }

    /// Organization display name.
    pub fn org_name(&self, org: OrgId) -> Option<&str> {
        self.orgs.get(&org).map(|o| o.name.as_str())
    }

    /// Environment display name.
    pub fn env_name(&self, env: EnvId) -> Option<&str> {
        self.envs.get(&env).map(|e| e.name.as_str())
    }

    /// A role definition by name.
    pub fn role(&self, name: &str) -> Option<&Role> {
        self.roles.get(name)
    }

    /// Every registered role, sorted by name for deterministic scans.
    pub fn roles(&self) -> Vec<&Role> {
        let mut all: Vec<&Role> = self.roles.values().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Every role assignment as `(user, org, env, role names)`, sorted by
    /// scope for deterministic scans. This is the posture scanner's view of
    /// who holds what, and where.
    pub fn assignments(&self) -> Vec<(UserId, OrgId, EnvId, Vec<String>)> {
        let mut all: Vec<(UserId, OrgId, EnvId, Vec<String>)> = self
            .assignments
            .iter()
            .map(|(&(user, org, env), roles)| (user, org, env, roles.clone()))
            .collect();
        all.sort_by_key(|&(u, o, e, _)| (u, o, e));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Action, ResourceKind};

    fn setup() -> (RbacEngine, rand::rngs::StdRng) {
        (RbacEngine::new(), hc_common::rng::seeded(30))
    }

    #[test]
    fn registration_creates_defaults() {
        let (mut rbac, mut rng) = setup();
        let (tenant, org, env) = rbac.register_tenant(&mut rng, "acme-health");
        assert_eq!(rbac.tenant_name(tenant), Some("acme-health"));
        assert_eq!(rbac.org_name(org), Some("default"));
        assert_eq!(rbac.env_kind(env), Some(EnvKind::Development));
    }

    #[test]
    fn assigned_role_grants_permission() {
        let (mut rbac, mut rng) = setup();
        let (tenant, org, env) = rbac.register_tenant(&mut rng, "t");
        let user = rbac.add_user(&mut rng, tenant, "alice").unwrap();
        rbac.assign(user, org, env, "clinician").unwrap();
        assert!(rbac.check(
            user,
            org,
            env,
            Permission::new(ResourceKind::PatientData, Action::Read)
        ));
        assert!(!rbac.check(
            user,
            org,
            env,
            Permission::new(ResourceKind::AuditLog, Action::Read)
        ));
    }

    #[test]
    fn roles_are_scoped_to_environment() {
        let (mut rbac, mut rng) = setup();
        let (tenant, org, dev) = rbac.register_tenant(&mut rng, "t");
        let prod = rbac
            .add_env(&mut rng, org, "prod", EnvKind::Production)
            .unwrap();
        let user = rbac.add_user(&mut rng, tenant, "bob").unwrap();
        rbac.assign(user, org, dev, "admin").unwrap();
        let p = Permission::new(ResourceKind::Service, Action::Admin);
        assert!(rbac.check(user, org, dev, p));
        assert!(!rbac.check(user, org, prod, p), "no admin in prod");
    }

    #[test]
    fn cross_tenant_assignment_rejected() {
        let (mut rbac, mut rng) = setup();
        let (_t1, org1, env1) = rbac.register_tenant(&mut rng, "t1");
        let (t2, _org2, _env2) = rbac.register_tenant(&mut rng, "t2");
        let outsider = rbac.add_user(&mut rng, t2, "eve").unwrap();
        assert_eq!(
            rbac.assign(outsider, org1, env1, "admin"),
            Err(RbacError::TenantMismatch)
        );
    }

    #[test]
    fn env_must_belong_to_org() {
        let (mut rbac, mut rng) = setup();
        let (tenant, org1, _env1) = rbac.register_tenant(&mut rng, "t");
        let org2 = rbac.add_org(&mut rng, tenant, "second").unwrap();
        let env2 = rbac
            .add_env(&mut rng, org2, "e2", EnvKind::Development)
            .unwrap();
        let user = rbac.add_user(&mut rng, tenant, "carol").unwrap();
        assert_eq!(
            rbac.assign(user, org1, env2, "admin"),
            Err(RbacError::TenantMismatch)
        );
    }

    #[test]
    fn unassign_revokes() {
        let (mut rbac, mut rng) = setup();
        let (tenant, org, env) = rbac.register_tenant(&mut rng, "t");
        let user = rbac.add_user(&mut rng, tenant, "dave").unwrap();
        rbac.assign(user, org, env, "auditor").unwrap();
        rbac.unassign(user, org, env, "auditor");
        assert!(!rbac.check(
            user,
            org,
            env,
            Permission::new(ResourceKind::AuditLog, Action::Read)
        ));
    }

    #[test]
    fn unknown_role_rejected() {
        let (mut rbac, mut rng) = setup();
        let (tenant, org, env) = rbac.register_tenant(&mut rng, "t");
        let user = rbac.add_user(&mut rng, tenant, "u").unwrap();
        assert_eq!(
            rbac.assign(user, org, env, "wizard"),
            Err(RbacError::UnknownRole("wizard".into()))
        );
    }

    #[test]
    fn groups_record_studies() {
        let (mut rbac, mut rng) = setup();
        let (_tenant, org, _env) = rbac.register_tenant(&mut rng, "t");
        let g = rbac.add_group(&mut rng, org, "diabetes-rwe").unwrap();
        assert_eq!(rbac.study_of(g), Some("diabetes-rwe"));
    }

    #[test]
    fn multiple_roles_union_permissions() {
        let (mut rbac, mut rng) = setup();
        let (tenant, org, env) = rbac.register_tenant(&mut rng, "t");
        let user = rbac.add_user(&mut rng, tenant, "u").unwrap();
        rbac.assign(user, org, env, "researcher").unwrap();
        rbac.assign(user, org, env, "auditor").unwrap();
        assert!(rbac.check(
            user,
            org,
            env,
            Permission::new(ResourceKind::Model, Action::Write)
        ));
        assert!(rbac.check(
            user,
            org,
            env,
            Permission::new(ResourceKind::AuditLog, Action::Read)
        ));
    }
}
