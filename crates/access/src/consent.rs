//! Consent management.
//!
//! "Groups represent healthcare studies/programs to which PHI data is
//! consented for" (§II-B); ingestion must "secure the consent of the
//! patient/user for the uploaded data via a consent management service",
//! and GDPR/HIPAA require *consent provenance* — every grant/revocation is
//! recorded as an event the ledger can anchor.

use std::collections::HashMap;

use hc_common::clock::{SimClock, SimInstant};
use hc_common::id::{GroupId, PatientId};
use serde::{Deserialize, Serialize};

/// What a consent grant covers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ConsentScope {
    /// Data may be used in analytics/model training for the study.
    pub analytics: bool,
    /// Data may be exported (re-identified) to the study's CRO.
    pub export: bool,
}

impl ConsentScope {
    /// Analytics-only consent (no re-identified export).
    pub const ANALYTICS_ONLY: ConsentScope = ConsentScope {
        analytics: true,
        export: false,
    };

    /// Full consent.
    pub const FULL: ConsentScope = ConsentScope {
        analytics: true,
        export: true,
    };
}

/// A consent change event (feeds the provenance ledger).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ConsentEvent {
    /// The patient.
    pub patient: PatientId,
    /// The study group.
    pub group: GroupId,
    /// The scope granted, or `None` for a revocation.
    pub scope: Option<ConsentScope>,
    /// When it happened.
    pub at: SimInstant,
}

/// The consent registry.
#[derive(Debug)]
pub struct ConsentRegistry {
    clock: SimClock,
    grants: HashMap<(PatientId, GroupId), ConsentScope>,
    events: Vec<ConsentEvent>,
}

impl ConsentRegistry {
    /// Creates an empty registry.
    pub fn new(clock: SimClock) -> Self {
        ConsentRegistry {
            clock,
            grants: HashMap::new(),
            events: Vec::new(),
        }
    }

    /// Records a grant (replacing any existing scope).
    pub fn grant(&mut self, patient: PatientId, group: GroupId, scope: ConsentScope) {
        self.grants.insert((patient, group), scope);
        self.events.push(ConsentEvent {
            patient,
            group,
            scope: Some(scope),
            at: self.clock.now(),
        });
    }

    /// Revokes consent (idempotent; the event is recorded regardless, as
    /// regulators expect revocation attempts to be auditable).
    pub fn revoke(&mut self, patient: PatientId, group: GroupId) {
        self.grants.remove(&(patient, group));
        self.events.push(ConsentEvent {
            patient,
            group,
            scope: None,
            at: self.clock.now(),
        });
    }

    /// The current scope, if consented.
    pub fn scope(&self, patient: PatientId, group: GroupId) -> Option<ConsentScope> {
        self.grants.get(&(patient, group)).copied()
    }

    /// Whether analytics use is currently consented.
    pub fn allows_analytics(&self, patient: PatientId, group: GroupId) -> bool {
        self.scope(patient, group).map(|s| s.analytics).unwrap_or(false)
    }

    /// Whether re-identified export is currently consented.
    pub fn allows_export(&self, patient: PatientId, group: GroupId) -> bool {
        self.scope(patient, group).map(|s| s.export).unwrap_or(false)
    }

    /// Patients currently consented to a group (sorted).
    pub fn consented_patients(&self, group: GroupId) -> Vec<PatientId> {
        let mut v: Vec<PatientId> = self
            .grants
            .keys()
            .filter(|(_, g)| *g == group)
            .map(|(p, _)| *p)
            .collect();
        v.sort();
        v
    }

    /// The full event history (consent provenance).
    pub fn events(&self) -> &[ConsentEvent] {
        &self.events
    }

    /// Every active grant as `(patient, group, scope)`, sorted for
    /// deterministic scans — the posture scanner's view of who consented
    /// to what.
    pub fn grants(&self) -> Vec<(PatientId, GroupId, ConsentScope)> {
        let mut all: Vec<(PatientId, GroupId, ConsentScope)> = self
            .grants
            .iter()
            .map(|(&(p, g), &scope)| (p, g, scope))
            .collect();
        all.sort_by_key(|&(p, g, _)| (p, g));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (PatientId, GroupId) {
        (PatientId::from_raw(1), GroupId::from_raw(10))
    }

    #[test]
    fn grant_then_check() {
        let (p, g) = ids();
        let mut reg = ConsentRegistry::new(SimClock::new());
        reg.grant(p, g, ConsentScope::ANALYTICS_ONLY);
        assert!(reg.allows_analytics(p, g));
        assert!(!reg.allows_export(p, g));
    }

    #[test]
    fn revoke_removes_consent() {
        let (p, g) = ids();
        let mut reg = ConsentRegistry::new(SimClock::new());
        reg.grant(p, g, ConsentScope::FULL);
        reg.revoke(p, g);
        assert!(!reg.allows_analytics(p, g));
        assert_eq!(reg.scope(p, g), None);
    }

    #[test]
    fn unconsented_is_denied() {
        let (p, g) = ids();
        let reg = ConsentRegistry::new(SimClock::new());
        assert!(!reg.allows_analytics(p, g));
        assert!(!reg.allows_export(p, g));
    }

    #[test]
    fn regrant_upgrades_scope() {
        let (p, g) = ids();
        let mut reg = ConsentRegistry::new(SimClock::new());
        reg.grant(p, g, ConsentScope::ANALYTICS_ONLY);
        reg.grant(p, g, ConsentScope::FULL);
        assert!(reg.allows_export(p, g));
    }

    #[test]
    fn events_record_history() {
        let (p, g) = ids();
        let clock = SimClock::new();
        let mut reg = ConsentRegistry::new(clock.clone());
        reg.grant(p, g, ConsentScope::FULL);
        clock.advance_micros(100);
        reg.revoke(p, g);
        let events = reg.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].scope.is_some());
        assert!(events[1].scope.is_none());
        assert!(events[1].at > events[0].at);
    }

    #[test]
    fn consented_patients_lists_group_members() {
        let g = GroupId::from_raw(10);
        let mut reg = ConsentRegistry::new(SimClock::new());
        for raw in [3u128, 1, 2] {
            reg.grant(PatientId::from_raw(raw), g, ConsentScope::FULL);
        }
        reg.grant(PatientId::from_raw(9), GroupId::from_raw(99), ConsentScope::FULL);
        let members = reg.consented_patients(g);
        assert_eq!(
            members,
            vec![
                PatientId::from_raw(1),
                PatientId::from_raw(2),
                PatientId::from_raw(3)
            ]
        );
    }
}
