//! Privacy management: RBAC, federated identity, consent, API gateway.
//!
//! §II-B of the paper: "Access privileges are controlled by the role based
//! access control (RBAC) system of the platform. The platform supports
//! Tenant, Organizations, Groups, Environments, Users, Roles, and
//! Permissions." Identity may be federated: "the platform user's identity
//! could be managed and authenticated by an external (approved) system."
//! Consent: "it is important to secure the consent of the patient/user for
//! the uploaded data via a consent management service." And the gateway:
//! "The API management system first authenticates the user requesting the
//! APIs, and once successfully authenticated, it consults the Privacy
//! Management system and allows API access accordingly."
//!
//! * [`model`] — the RBAC vocabulary: actions, resource kinds,
//!   permissions, roles (with the platform's built-in role set).
//! * [`rbac`] — tenants → organizations → environments/groups → users,
//!   role assignments scoped per (organization, environment), and the
//!   `check` entry point.
//! * [`identity`] — local and approved-federated identity providers and
//!   HMAC-signed bearer tokens with expiry on the simulated clock.
//! * [`consent`] — per-(patient, study) consent with scopes, revocation
//!   and an event history for provenance.
//! * [`gateway`] — the API management layer: token → RBAC → rate limit →
//!   audited allow/deny.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consent;
pub mod gateway;
pub mod identity;
pub mod model;
pub mod rbac;
