//! Identity providers and HMAC-signed bearer tokens.
//!
//! "The platform supports a federated identity management system, which
//! means that the platform user's identity could be managed and
//! authenticated by an external (approved) system. Once users are
//! authenticated, their roles and access privileges are managed by the
//! platform's RBAC system." (§II-B)

use std::collections::HashMap;

use hc_common::clock::{SimClock, SimDuration, SimInstant};
use hc_common::id::UserId;
use hc_crypto::hmac;
use hc_crypto::sha256::{self, Digest};

/// A bearer token: claims plus an HMAC over their canonical encoding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuthToken {
    /// The authenticated user.
    pub user: UserId,
    /// Which provider vouched for the identity.
    pub issuer: String,
    /// Issue time.
    pub issued_at: SimInstant,
    /// Expiry time.
    pub expires_at: SimInstant,
    /// HMAC over the claims, keyed by the token service.
    pub tag: Digest,
}

fn token_message(user: UserId, issuer: &str, issued_at: SimInstant, expires_at: SimInstant) -> Vec<u8> {
    let mut msg = Vec::new();
    msg.extend_from_slice(&user.as_u128().to_le_bytes());
    msg.extend_from_slice(issuer.as_bytes());
    msg.push(0);
    msg.extend_from_slice(&issued_at.as_nanos().to_le_bytes());
    msg.extend_from_slice(&expires_at.as_nanos().to_le_bytes());
    msg
}

/// Why authentication or token verification failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AuthError {
    /// Unknown username or wrong secret.
    BadCredentials,
    /// The federated provider is not on the approved list.
    UnapprovedProvider(String),
    /// The token's HMAC does not verify.
    BadToken,
    /// The token has expired.
    Expired,
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::BadCredentials => f.write_str("invalid credentials"),
            AuthError::UnapprovedProvider(p) => write!(f, "provider `{p}` is not approved"),
            AuthError::BadToken => f.write_str("token failed verification"),
            AuthError::Expired => f.write_str("token expired"),
        }
    }
}

impl std::error::Error for AuthError {}

/// An identity provider: maps credentials to a platform user.
pub trait IdentityProvider {
    /// The provider's name (recorded in tokens as the issuer).
    fn name(&self) -> &str;

    /// Authenticates a `(username, secret)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError::BadCredentials`] on failure.
    fn authenticate(&self, username: &str, secret: &[u8]) -> Result<UserId, AuthError>;
}

/// The platform's own credential directory (salted-hash verification).
#[derive(Debug, Default)]
pub struct LocalDirectory {
    entries: HashMap<String, (UserId, Digest)>, // username -> (user, H(username||secret))
}

impl LocalDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        LocalDirectory::default()
    }

    /// Enrolls a user with a secret.
    pub fn enroll(&mut self, username: &str, secret: &[u8], user: UserId) {
        let digest = sha256::hash_parts(&[username.as_bytes(), b"\0", secret]);
        self.entries.insert(username.to_owned(), (user, digest));
    }
}

impl IdentityProvider for LocalDirectory {
    fn name(&self) -> &str {
        "local"
    }

    fn authenticate(&self, username: &str, secret: &[u8]) -> Result<UserId, AuthError> {
        let (user, stored) = self
            .entries
            .get(username)
            .ok_or(AuthError::BadCredentials)?;
        let presented = sha256::hash_parts(&[username.as_bytes(), b"\0", secret]);
        if hc_common::hex::constant_time_eq(stored.as_bytes(), presented.as_bytes()) {
            Ok(*user)
        } else {
            Err(AuthError::BadCredentials)
        }
    }
}

/// A federated provider: an external directory the platform trusts by
/// name. Assertions are HMAC-signed by the provider's federation key.
#[derive(Debug)]
pub struct FederatedProvider {
    name: String,
    federation_key: [u8; 32],
    directory: HashMap<String, UserId>,
}

impl FederatedProvider {
    /// Creates a provider with its federation key.
    pub fn new(name: &str, federation_key: [u8; 32]) -> Self {
        FederatedProvider {
            name: name.to_owned(),
            federation_key,
            directory: HashMap::new(),
        }
    }

    /// Registers an external user.
    pub fn register(&mut self, username: &str, user: UserId) {
        self.directory.insert(username.to_owned(), user);
    }

    /// Produces a signed assertion for a user (what the external IdP
    /// would send the platform after its own authentication ceremony).
    pub fn assert_identity(&self, username: &str) -> Option<(UserId, Digest)> {
        let user = *self.directory.get(username)?;
        let tag = hmac::hmac(&self.federation_key, &user.as_u128().to_le_bytes());
        Some((user, tag))
    }
}

impl IdentityProvider for FederatedProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn authenticate(&self, username: &str, assertion_tag: &[u8]) -> Result<UserId, AuthError> {
        let user = *self
            .directory
            .get(username)
            .ok_or(AuthError::BadCredentials)?;
        let expected = hmac::hmac(&self.federation_key, &user.as_u128().to_le_bytes());
        if hc_common::hex::constant_time_eq(expected.as_bytes(), assertion_tag) {
            Ok(user)
        } else {
            Err(AuthError::BadCredentials)
        }
    }
}

/// Issues and verifies bearer tokens.
#[derive(Debug)]
pub struct TokenService {
    signing_key: [u8; 32],
    clock: SimClock,
    ttl: SimDuration,
    approved_providers: Vec<String>,
}

impl TokenService {
    /// Creates a token service with a 1-simulated-hour default TTL.
    pub fn new(signing_key: [u8; 32], clock: SimClock) -> Self {
        TokenService {
            signing_key,
            clock,
            ttl: SimDuration::from_secs(3600),
            approved_providers: vec!["local".to_owned()],
        }
    }

    /// Overrides the token TTL.
    #[must_use]
    pub fn with_ttl(mut self, ttl: SimDuration) -> Self {
        self.ttl = ttl;
        self
    }

    /// Approves a federated provider by name.
    pub fn approve_provider(&mut self, name: &str) {
        if !self.approved_providers.iter().any(|p| p == name) {
            self.approved_providers.push(name.to_owned());
        }
    }

    /// Authenticates against `provider` and issues a token.
    ///
    /// # Errors
    ///
    /// Fails on bad credentials or an unapproved provider.
    pub fn login(
        &self,
        provider: &dyn IdentityProvider,
        username: &str,
        secret: &[u8],
    ) -> Result<AuthToken, AuthError> {
        if !self.approved_providers.iter().any(|p| p == provider.name()) {
            return Err(AuthError::UnapprovedProvider(provider.name().to_owned()));
        }
        let user = provider.authenticate(username, secret)?;
        let issued_at = self.clock.now();
        let expires_at = issued_at.saturating_add(self.ttl);
        let tag = hmac::hmac(
            &self.signing_key,
            &token_message(user, provider.name(), issued_at, expires_at),
        );
        Ok(AuthToken {
            user,
            issuer: provider.name().to_owned(),
            issued_at,
            expires_at,
            tag,
        })
    }

    /// Verifies a token's integrity and freshness.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError::BadToken`] for forged/tampered tokens and
    /// [`AuthError::Expired`] for stale ones.
    pub fn verify(&self, token: &AuthToken) -> Result<UserId, AuthError> {
        let expected = hmac::hmac(
            &self.signing_key,
            &token_message(token.user, &token.issuer, token.issued_at, token.expires_at),
        );
        if !hc_common::hex::constant_time_eq(expected.as_bytes(), token.tag.as_bytes()) {
            return Err(AuthError::BadToken);
        }
        if self.clock.now() >= token.expires_at {
            return Err(AuthError::Expired);
        }
        Ok(token.user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TokenService, LocalDirectory, UserId) {
        let clock = SimClock::new();
        let svc = TokenService::new([7u8; 32], clock);
        let mut dir = LocalDirectory::new();
        let user = UserId::from_raw(1);
        dir.enroll("alice", b"s3cret", user);
        (svc, dir, user)
    }

    #[test]
    fn login_and_verify() {
        let (svc, dir, user) = setup();
        let token = svc.login(&dir, "alice", b"s3cret").unwrap();
        assert_eq!(svc.verify(&token).unwrap(), user);
    }

    #[test]
    fn wrong_secret_rejected() {
        let (svc, dir, _) = setup();
        assert_eq!(
            svc.login(&dir, "alice", b"wrong").unwrap_err(),
            AuthError::BadCredentials
        );
        assert_eq!(
            svc.login(&dir, "nobody", b"s3cret").unwrap_err(),
            AuthError::BadCredentials
        );
    }

    #[test]
    fn tampered_token_rejected() {
        let (svc, dir, _) = setup();
        let mut token = svc.login(&dir, "alice", b"s3cret").unwrap();
        token.user = UserId::from_raw(999); // privilege escalation attempt
        assert_eq!(svc.verify(&token).unwrap_err(), AuthError::BadToken);
    }

    #[test]
    fn expired_token_rejected() {
        let clock = SimClock::new();
        let svc = TokenService::new([7u8; 32], clock.clone()).with_ttl(SimDuration::from_secs(10));
        let mut dir = LocalDirectory::new();
        dir.enroll("a", b"s", UserId::from_raw(1));
        let token = svc.login(&dir, "a", b"s").unwrap();
        clock.advance(SimDuration::from_secs(11));
        assert_eq!(svc.verify(&token).unwrap_err(), AuthError::Expired);
    }

    #[test]
    fn federated_provider_requires_approval() {
        let (mut svc, _, user) = setup();
        let mut fed = FederatedProvider::new("hospital-idp", [9u8; 32]);
        fed.register("bob@hospital", user);
        let (_, assertion) = fed.assert_identity("bob@hospital").unwrap();
        // Not approved yet.
        assert!(matches!(
            svc.login(&fed, "bob@hospital", assertion.as_bytes()),
            Err(AuthError::UnapprovedProvider(_))
        ));
        svc.approve_provider("hospital-idp");
        let token = svc
            .login(&fed, "bob@hospital", assertion.as_bytes())
            .unwrap();
        assert_eq!(token.issuer, "hospital-idp");
        assert_eq!(svc.verify(&token).unwrap(), user);
    }

    #[test]
    fn forged_federation_assertion_rejected() {
        let (mut svc, _, user) = setup();
        let mut fed = FederatedProvider::new("idp", [9u8; 32]);
        fed.register("bob", user);
        svc.approve_provider("idp");
        let forged = hmac::hmac(&[1u8; 32], &user.as_u128().to_le_bytes());
        assert_eq!(
            svc.login(&fed, "bob", forged.as_bytes()).unwrap_err(),
            AuthError::BadCredentials
        );
    }

    #[test]
    fn tokens_from_other_service_rejected() {
        let (svc_a, dir, _) = setup();
        let svc_b = TokenService::new([8u8; 32], SimClock::new());
        let token = svc_a.login(&dir, "alice", b"s3cret").unwrap();
        assert_eq!(svc_b.verify(&token).unwrap_err(), AuthError::BadToken);
    }
}
