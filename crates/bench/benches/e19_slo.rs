//! E19 — overload-safe serving: closed-loop SLO runs and the per-request
//! decision cost.
//!
//! Benchmarks the full closed loop (admission → shedding → deadline →
//! sharded cache → origin, with sampled ledger provenance) at a reduced
//! population for each protection level, and the hot-path cost of one
//! request decision. The experiment's recorded table comes from
//! `cargo run --release --example experiments -- e19`; this bench tracks
//! that the driver itself stays cheap enough to simulate millions of
//! users.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_common::clock::{SimClock, SimDuration, SimInstant};
use hc_common::conc::LoadCurve;
use hc_core::serving::{
    run_overload, Protection, ServingConfig, ServingStack, WorkloadConfig,
};
use hc_resilience::admission::Tier;
use std::hint::black_box;

fn config(protection: Protection) -> ServingConfig {
    ServingConfig {
        cores: 1,
        hit_cost: SimDuration::from_micros(50),
        miss_cost: SimDuration::from_millis(2),
        origin_fetch_cost: SimDuration::from_micros(1_333),
        origin_cores: 1,
        cache_capacity: 16_384,
        cache_shards: 16,
        admission_rate: 2_000.0,
        admission_burst: 100.0,
        provenance_sample: 4_096,
        degraded_provenance_sample: 65_536,
        provenance_batch: 64,
        protection,
        ..ServingConfig::default()
    }
}

/// The E19 shape at 1/16 scale: cold start, diurnal steady state, 10x
/// flash crowd, recovery — ~25s of simulated time per iteration.
fn workload() -> WorkloadConfig {
    let at = |secs: u64| SimInstant::from_nanos(SimDuration::from_secs(secs).as_nanos());
    let day = 25;
    WorkloadConfig {
        curve: LoadCurve::new(62_500.0)
            .with_diurnal(0.25, SimDuration::from_secs(day))
            .with_flash_crowd(at(12), at(18), 10.0),
        req_per_user_per_sec: 0.02,
        tier_mix: [0.10, 0.60, 0.30],
        keyspace: 65_536,
        duration: SimDuration::from_secs(day),
        tick: SimDuration::from_millis(1),
        seed: 19,
        windows: Vec::new(),
    }
}

fn bench_closed_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_closed_loop");
    group.sample_size(10);
    for protection in [Protection::None, Protection::AdmissionOnly, Protection::Full] {
        group.bench_function(protection.label(), |b| {
            b.iter(|| {
                let stack = ServingStack::new(SimClock::new(), config(protection));
                let report = run_overload(stack, &workload());
                black_box(report.overall.within_slo())
            })
        });
    }
    group.finish();
}

fn bench_request_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_request_decision");
    let clock = SimClock::new();
    let mut stack = ServingStack::new(clock.clone(), config(Protection::Full));
    // Warm the cache so the steady-state path (admit → observe → probe →
    // deadline → serve) dominates, not origin fills.
    for key in 0..16_384u64 {
        let _ = stack.request(Tier::Batch, key);
        clock.advance(SimDuration::from_micros(500));
        stack.drain(SimDuration::from_micros(500));
    }
    let mut key = 0u64;
    group.bench_function("full_protection_hit", |b| {
        b.iter(|| {
            key = (key + 1) % 16_384;
            let outcome = stack.request(Tier::Interactive, key);
            clock.advance(SimDuration::from_micros(500));
            stack.drain(SimDuration::from_micros(500));
            black_box(outcome.is_served())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_closed_loop, bench_request_decision);
criterion_main!(benches);
