//! E16 — telemetry instrument and export cost.
//!
//! Measures (a) the raw cost of a counter increment and a histogram
//! record (the hot-path primitives every instrumented subsystem pays),
//! (b) an instrumented vs uninstrumented cache read, and (c) snapshot +
//! Prometheus export of a populated registry (the scrape path).

use criterion::{criterion_group, criterion_main, Criterion};
use hc_cache::multilevel::CacheHierarchy;
use hc_cache::policy::LruCache;
use hc_common::clock::{SimClock, SimDuration};
use hc_telemetry::{export, Registry};
use std::hint::black_box;

fn hierarchy(registry: Option<&Registry>) -> CacheHierarchy<usize, u64> {
    let mut h: CacheHierarchy<usize, u64> =
        CacheHierarchy::new(SimClock::new(), SimDuration::from_millis(50));
    h.add_level("client", Box::new(LruCache::new(256)), SimDuration::from_micros(2));
    h.add_level("server", Box::new(LruCache::new(2048)), SimDuration::from_micros(500));
    if let Some(r) = registry {
        h.instrument(r);
    }
    for k in 0..4_096 {
        h.write(k, 0);
    }
    h
}

fn bench_telemetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_telemetry");

    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let histogram = registry.histogram("bench.histogram_ns");
    let mut v = 1u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            histogram.record(black_box(v >> 40));
        })
    });

    let mut plain = hierarchy(None);
    let mut k = 0usize;
    group.bench_function("cache_read_uninstrumented", |b| {
        b.iter(|| {
            k = (k + 1) % 4_096;
            black_box(plain.read(&k))
        })
    });

    let instrumented_registry = Registry::new();
    let mut wired = hierarchy(Some(&instrumented_registry));
    let mut k2 = 0usize;
    group.bench_function("cache_read_instrumented", |b| {
        b.iter(|| {
            k2 = (k2 + 1) % 4_096;
            black_box(wired.read(&k2))
        })
    });

    // Scrape path: a registry populated like a platform run.
    let scrape = Registry::new();
    for s in ["ingest", "ledger", "cache", "cloudsim", "analytics", "resilience"] {
        for i in 0..4 {
            scrape.counter(&format!("{s}.bench.c{i}")).add(i * 17 + 1);
        }
        let h = scrape.histogram(&format!("{s}.bench.latency_ns"));
        for i in 0..512u64 {
            h.record(i * i * 37 + 5);
        }
    }
    group.bench_function("snapshot_registry", |b| b.iter(|| black_box(scrape.snapshot())));
    let snap = scrape.snapshot();
    group.bench_function("prometheus_export", |b| {
        b.iter(|| black_box(export::prometheus(&snap)))
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
