//! E3 — cryptographic primitive throughput: the shared-key vs
//! hash-based-signature cost comparison behind §IV-B1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hc_bench::payload;
use hc_crypto::aead::{self, SecretKey};
use hc_crypto::chacha20::{self, Nonce};
use hc_crypto::hmac;
use hc_crypto::merkle::MerkleTree;
use hc_crypto::ots::{self, MerkleSigner};
use hc_crypto::sha256;
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_primitives");
    for size in [1024usize, 65_536] {
        let data = payload(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| black_box(sha256::hash(d)))
        });
        group.bench_with_input(BenchmarkId::new("hmac", size), &data, |b, d| {
            b.iter(|| black_box(hmac::hmac(b"key", d)))
        });
        let key = [7u8; 32];
        group.bench_with_input(BenchmarkId::new("chacha20", size), &data, |b, d| {
            b.iter(|| black_box(chacha20::encrypt(&key, &Nonce::from_counter(1), d)))
        });
    }
    group.finish();
}

fn bench_aead_vs_signature(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_aead_vs_signature");
    group.sample_size(10);
    let key = SecretKey::from_bytes([9u8; 32]);
    for size in [1024usize, 16_384] {
        let data = payload(size);
        group.bench_with_input(BenchmarkId::new("aead_seal_open", size), &data, |b, d| {
            b.iter(|| {
                let sealed = aead::seal(&key, d, b"ctx");
                black_box(aead::open(&key, &sealed, b"ctx").unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("lamport_sign_verify", size), &data, |b, d| {
            let mut rng = hc_common::rng::seeded(3);
            b.iter(|| {
                let mut signer = MerkleSigner::generate(&mut rng, 0);
                let pk = signer.public_key();
                let sig = signer.sign(d).unwrap();
                black_box(ots::verify_merkle(&pk, d, &sig))
            })
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_merkle");
    for leaves in [64usize, 1024] {
        let data: Vec<Vec<u8>> = (0..leaves).map(|i| payload(32 + i % 16)).collect();
        group.bench_with_input(BenchmarkId::new("build", leaves), &data, |b, d| {
            b.iter(|| black_box(MerkleTree::from_leaves(d).root()))
        });
        let tree = MerkleTree::from_leaves(&data);
        let proof = tree.prove(leaves / 2);
        group.bench_with_input(
            BenchmarkId::new("verify_proof", leaves),
            &(tree.root(), proof),
            |b, (root, proof)| {
                b.iter(|| {
                    black_box(hc_crypto::merkle::verify_inclusion(
                        &data[leaves / 2],
                        proof,
                        root,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_aead_vs_signature, bench_merkle);
criterion_main!(benches);
