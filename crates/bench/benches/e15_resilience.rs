//! E15 — resilience overhead and recovery cost.
//!
//! Measures (a) the wall-clock overhead the resilience layer adds to a
//! fault-free ingestion run, (b) end-to-end ingestion under an active
//! ledger partition (degraded mode: anchors buffered, then replayed),
//! and (c) the pure-CPU cost of backoff-schedule generation.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_common::clock::SimDuration;
use hc_common::fault::{FaultInjector, FaultKind, FaultSpec};
use hc_common::id::PatientId;
use hc_core::platform::{demo_bundle, HealthCloudPlatform, PlatformConfig};
use hc_ingest::pipeline::fault_points;
use hc_resilience::RetryPolicy;
use std::hint::black_box;

fn faulted_platform(partitioned: bool) -> (HealthCloudPlatform, FaultInjector) {
    let platform = HealthCloudPlatform::bootstrap(PlatformConfig {
        ledger_batch: 8,
        ..PlatformConfig::default()
    });
    let injector = FaultInjector::new(platform.clock.clone(), 0xE15);
    platform
        .pipeline
        .enable_resilience(platform.clock.clone(), injector.clone(), 0xE15);
    if partitioned {
        injector.schedule(
            fault_points::LEDGER_PARTITION,
            FaultSpec::always(FaultKind::NetworkPartition),
        );
    }
    (platform, injector)
}

fn bench_resilience(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_resilience");
    group.sample_size(10);

    group.bench_function("ingest_one_resilient_fault_free", |b| {
        let (platform, _injector) = faulted_platform(false);
        let device = platform.register_patient_device(PatientId::from_raw(1));
        let bundle = demo_bundle("p1", true);
        b.iter(|| {
            platform.upload(&device, &bundle).unwrap();
            black_box(platform.process_ingestion())
        })
    });

    group.bench_function("ingest_one_degraded_then_replay", |b| {
        let (platform, injector) = faulted_platform(true);
        let device = platform.register_patient_device(PatientId::from_raw(1));
        let bundle = demo_bundle("p1", true);
        b.iter(|| {
            platform.upload(&device, &bundle).unwrap();
            platform.process_ingestion();
            // Heal, replay the buffered anchors, and re-partition so the
            // next iteration starts degraded again.
            injector.heal(fault_points::LEDGER_PARTITION);
            let replayed = platform.pipeline.replay_buffered_anchors();
            injector.schedule(
                fault_points::LEDGER_PARTITION,
                FaultSpec::always(FaultKind::NetworkPartition),
            );
            black_box(replayed)
        })
    });

    group.bench_function("backoff_schedule_8_attempts", |b| {
        let policy = RetryPolicy::new(8, SimDuration::from_millis(10))
            .with_max_delay(SimDuration::from_secs(2))
            .with_total_budget(SimDuration::from_secs(30))
            .with_jitter(0.2);
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(policy.backoff_schedule(seed))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_resilience);
criterion_main!(benches);
