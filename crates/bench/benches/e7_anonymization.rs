//! E7 — Mondrian k-anonymity and verification cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hc_privacy::kanon::{mondrian, QiRecord};
use hc_privacy::verify::{measure, verify_claim};
use rand::Rng;
use std::hint::black_box;

fn cohort(n: usize) -> Vec<QiRecord> {
    let mut rng = hc_common::rng::seeded(7);
    (0..n)
        .map(|_| {
            QiRecord::new(
                rng.gen_range(18..95),
                60_000 + rng.gen_range(0..5_000),
                rng.gen_range(0..3),
                ["E11.9", "I10", "J45.0"][rng.gen_range(0..3)],
            )
        })
        .collect()
}

fn bench_mondrian(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_mondrian");
    group.sample_size(10);
    let records = cohort(2_000);
    for k in [2usize, 10, 50] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| black_box(mondrian(&records, k).unwrap().information_loss))
        });
    }
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_verification");
    let records = cohort(2_000);
    let table = mondrian(&records, 10).unwrap();
    group.bench_function("measure_degree", |b| {
        b.iter(|| black_box(measure(&table.classes).k))
    });
    group.bench_function("verify_claim", |b| {
        b.iter(|| black_box(verify_claim(&table.classes, 10, 1).is_accepted()))
    });
    group.finish();
}

criterion_group!(benches, bench_mondrian, bench_verification);
criterion_main!(benches);
