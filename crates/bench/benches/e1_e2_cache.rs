//! E1/E2 — cache read paths and eviction policies (wall clock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hc_bench::zipf_key;
use hc_cache::multilevel::CacheHierarchy;
use hc_cache::policy::{CachePolicy, LfuCache, LruCache};
use hc_common::clock::{SimClock, SimDuration};
use std::hint::black_box;

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_hierarchy_read");
    let mut h: CacheHierarchy<usize, u64> =
        CacheHierarchy::new(SimClock::new(), SimDuration::from_millis(50));
    h.add_level("client", Box::new(LruCache::new(256)), SimDuration::from_micros(2));
    h.add_level("server", Box::new(LruCache::new(2048)), SimDuration::from_micros(500));
    for k in 0..4096usize {
        h.write(k, k as u64);
    }
    let _ = h.read(&1); // warm key 1 into the client level
    group.bench_function("client_hit", |b| {
        b.iter(|| black_box(h.read(&1).latency))
    });
    let mut rng = hc_common::rng::seeded(1);
    group.bench_function("zipf_mixed", |b| {
        b.iter(|| {
            let k = zipf_key(&mut rng, 4096);
            black_box(h.read(&k).latency)
        })
    });
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_policy_ops");
    for capacity in [64usize, 512] {
        group.bench_with_input(BenchmarkId::new("lru_get_put", capacity), &capacity, |b, &cap| {
            let mut cache = LruCache::new(cap);
            let mut rng = hc_common::rng::seeded(2);
            b.iter(|| {
                let k = zipf_key(&mut rng, 2048);
                if cache.get(&k).is_none() {
                    cache.put(k, k);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("lfu_get_put", capacity), &capacity, |b, &cap| {
            let mut cache = LfuCache::new(cap);
            let mut rng = hc_common::rng::seeded(2);
            b.iter(|| {
                let k = zipf_key(&mut rng, 2048);
                if cache.get(&k).is_none() {
                    cache.put(k, k);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchy, bench_policies);
criterion_main!(benches);
