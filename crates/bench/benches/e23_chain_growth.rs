//! E23 — chain growth under checkpointing: seal + prune cost as the
//! ledger grows, and the cost of serving compact audit proofs from a
//! pruned chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hc_common::clock::{SimClock, SimDuration, SimInstant};
use hc_common::id::TxId;
use hc_ledger::block::Transaction;
use hc_ledger::chain::{CheckpointConfig, Ledger};
use hc_ledger::consensus::{PbftCluster, PipelinedCluster};
use hc_ledger::policy::ProvenancePolicy;
use std::hint::black_box;

fn tx(i: u128) -> Transaction {
    Transaction {
        id: TxId::from_raw(i),
        channel: "provenance".into(),
        kind: "ingested".into(),
        payload: format!("record={i}").into_bytes(),
        submitter: "bench".into(),
        timestamp: SimInstant::from_nanos(i as u64),
    }
}

fn grown_ledger(blocks: u64, interval: u64) -> Ledger {
    let clock = SimClock::new();
    let cluster = PbftCluster::new(4, SimDuration::from_millis(1), clock.clone()).unwrap();
    let mut ledger = Ledger::new(cluster, clock);
    ledger.install_policy(Box::new(ProvenancePolicy));
    ledger.enable_checkpoints(CheckpointConfig::every(interval));
    for b in 0..blocks as u128 {
        let txs: Vec<Transaction> = (0..4).map(|j| tx(b * 4 + j + 1)).collect();
        ledger.submit(txs).unwrap();
    }
    ledger
}

/// Streaming commits with checkpoint sealing and pruning folded in —
/// the steady-state cost of a bounded-storage ledger.
fn bench_grow_and_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("e23_grow_and_prune");
    group.sample_size(10);
    for blocks in [128u64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &blocks, |b, &blocks| {
            b.iter(|| {
                let clock = SimClock::new();
                let cluster =
                    PipelinedCluster::new(4, 16, SimDuration::from_millis(1), clock.clone())
                        .unwrap();
                let mut ledger = Ledger::new_pipelined(cluster, clock);
                ledger.install_policy(Box::new(ProvenancePolicy));
                ledger.enable_checkpoints(CheckpointConfig::every(16));
                let batches: Vec<Vec<Transaction>> = (0..blocks as u128)
                    .map(|i| (0..4).map(|j| tx(i * 4 + j + 1)).collect())
                    .collect();
                ledger.submit_stream(batches, 4).unwrap();
                black_box(ledger.prune())
            })
        });
    }
    group.finish();
}

/// Serving a block-header proof from a pruned chain: Merkle path plus
/// the checkpoint fold, no chain replay.
fn bench_prove_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("e23_prove_block");
    for blocks in [128u64, 1024] {
        let mut ledger = grown_ledger(blocks, 16);
        ledger.prune();
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &ledger, |b, l| {
            let mut h = 0u64;
            let covered = l.latest_checkpoint().unwrap().end_height;
            b.iter(|| {
                h = (h + 17) % covered;
                black_box(l.prove_block(h).unwrap())
            })
        });
    }
    group.finish();
}

/// Verifying proofs auditor-side: stateless, against the checkpoint.
fn bench_verify_proofs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e23_verify_proof");
    let mut ledger = grown_ledger(512, 16);
    ledger.prune();
    let ckpt = *ledger.latest_checkpoint().unwrap();
    let block_proof = ledger.prove_block(3).unwrap();
    let event_proof = ledger
        .prove_event(ledger.pruned_below(), TxId::from_raw(ledger.pruned_below() as u128 * 4 + 1))
        .unwrap();
    group.bench_function("block", |b| b.iter(|| black_box(block_proof.verify(&ckpt))));
    group.bench_function("event", |b| b.iter(|| black_box(event_proof.verify(&ckpt))));
    group.bench_function("prefix", |b| {
        let ckpts = ledger.checkpoints();
        let proof = ledger.prove_prefix(0, ckpts.len() as u64 - 1).unwrap();
        b.iter(|| black_box(proof.verify(&ckpts[0], ckpts.last().unwrap())))
    });
    group.finish();
}

criterion_group!(benches, bench_grow_and_prune, bench_prove_block, bench_verify_proofs);
criterion_main!(benches);
