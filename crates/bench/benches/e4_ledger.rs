//! E4 — blockchain commit cost vs peer count and batch size, plus the
//! pipelined engine and the parallel validation stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hc_common::clock::{SimClock, SimDuration, SimInstant};
use hc_common::id::TxId;
use hc_ledger::block::Transaction;
use hc_ledger::chain::Ledger;
use hc_ledger::consensus::{PbftCluster, PipelinedCluster};
use hc_ledger::policy::ProvenancePolicy;
use std::hint::black_box;

fn tx(i: u128) -> Transaction {
    Transaction {
        id: TxId::from_raw(i),
        channel: "provenance".into(),
        kind: "ingested".into(),
        payload: format!("record={i}").into_bytes(),
        submitter: "bench".into(),
        timestamp: SimInstant::ZERO,
    }
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_consensus_propose");
    for peers in [4usize, 7, 13] {
        group.bench_with_input(BenchmarkId::from_parameter(peers), &peers, |b, &peers| {
            let mut cluster =
                PbftCluster::new(peers, SimDuration::from_millis(1), SimClock::new()).unwrap();
            b.iter(|| black_box(cluster.propose().unwrap().messages))
        });
    }
    group.finish();
}

fn bench_ledger_submit(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_ledger_submit");
    for batch in [1usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            let clock = SimClock::new();
            let cluster = PbftCluster::new(4, SimDuration::from_millis(1), clock.clone()).unwrap();
            let mut ledger = Ledger::new(cluster, clock);
            ledger.install_policy(Box::new(ProvenancePolicy));
            let mut i = 0u128;
            b.iter(|| {
                let txs: Vec<Transaction> = (0..batch)
                    .map(|j| {
                        i += 1;
                        tx(i + j as u128)
                    })
                    .collect();
                black_box(ledger.submit(txs).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_verify_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_verify_chain");
    group.sample_size(10);
    for height in [64usize, 512] {
        let clock = SimClock::new();
        let cluster = PbftCluster::new(4, SimDuration::from_millis(1), clock.clone()).unwrap();
        let mut ledger = Ledger::new(cluster, clock);
        ledger.install_policy(Box::new(ProvenancePolicy));
        for i in 0..height {
            ledger.submit(vec![tx(i as u128)]).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(height), &ledger, |b, l| {
            b.iter(|| black_box(l.verify_chain()))
        });
    }
    group.finish();
}

fn bench_pipelined_propose(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_pipelined_propose");
    for peers in [4usize, 7, 13] {
        group.bench_with_input(BenchmarkId::from_parameter(peers), &peers, |b, &peers| {
            let mut cluster =
                PipelinedCluster::new(peers, 16, SimDuration::from_millis(1), SimClock::new())
                    .unwrap();
            b.iter(|| black_box(cluster.propose().unwrap().messages))
        });
    }
    group.finish();
}

fn bench_submit_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_submit_stream");
    group.sample_size(20);
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                let mut i = 0u128;
                b.iter(|| {
                    let clock = SimClock::new();
                    let cluster =
                        PipelinedCluster::new(4, 16, SimDuration::from_millis(1), clock.clone())
                            .unwrap();
                    let mut ledger = Ledger::new_pipelined(cluster, clock);
                    ledger.install_policy(Box::new(ProvenancePolicy));
                    let batches: Vec<Vec<Transaction>> = (0..32)
                        .map(|_| {
                            (0..16)
                                .map(|_| {
                                    i += 1;
                                    tx(i)
                                })
                                .collect()
                        })
                        .collect();
                    black_box(ledger.submit_stream(batches, workers).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_consensus,
    bench_ledger_submit,
    bench_verify_chain,
    bench_pipelined_propose,
    bench_submit_stream
);
criterion_main!(benches);
