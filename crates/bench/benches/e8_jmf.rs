//! E8 — JMF and baseline factorization cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hc_analytics::jmf::{self, JmfConfig};
use hc_analytics::mf::{self, MfConfig};
use hc_kb::biobank::{
    disease_similarity_sources, drug_similarity_sources, Biobank, BiobankConfig,
};
use std::hint::black_box;

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_fit");
    group.sample_size(10);
    let bank = Biobank::generate(
        &BiobankConfig {
            n_drugs: 60,
            n_diseases: 45,
            n_clusters: 4,
            ..BiobankConfig::default()
        },
        8,
    );
    let (train, _) = bank.split_associations(0.25, 8);
    let drug_sims = drug_similarity_sources(&bank);
    let disease_sims = disease_similarity_sources(&bank);

    for iters in [20usize, 60] {
        group.bench_with_input(BenchmarkId::new("jmf", iters), &iters, |b, &iters| {
            let config = JmfConfig {
                k: 8,
                iters,
                ..JmfConfig::default()
            };
            b.iter(|| black_box(jmf::fit(&train, &drug_sims, &disease_sims, &config, 8).final_loss))
        });
        group.bench_with_input(BenchmarkId::new("mf", iters), &iters, |b, &iters| {
            let config = MfConfig {
                k: 8,
                iters,
                ..MfConfig::default()
            };
            b.iter(|| black_box(mf::factorize(&train, &config, 8).final_loss))
        });
    }
    group.finish();
}

fn bench_similarity_sources(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_similarity_matrices");
    group.sample_size(10);
    let bank = Biobank::generate(
        &BiobankConfig {
            n_drugs: 120,
            n_diseases: 90,
            ..BiobankConfig::default()
        },
        9,
    );
    group.bench_function("drug_sources_120", |b| {
        b.iter(|| black_box(drug_similarity_sources(&bank).len()))
    });
    group.bench_function("disease_sources_90", |b| {
        b.iter(|| black_box(disease_similarity_sources(&bank).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_similarity_sources);
criterion_main!(benches);
