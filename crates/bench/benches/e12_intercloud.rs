//! E12 — intercloud gateway plan computation and workload execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hc_cloudsim::gateway::IntercloudGateway;
use hc_cloudsim::infra::InfraCloud;
use hc_cloudsim::net::{Location, NetworkModel};
use hc_cloudsim::workload::{execute, AnalyticsWorkload};
use hc_common::clock::{SimClock, SimDuration};
use std::hint::black_box;

const MB: u64 = 1_000_000;

fn bench_gateway(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_gateway");
    for dataset_mb in [100u64, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("plan_pair", dataset_mb),
            &dataset_mb,
            |b, &mb| {
                b.iter(|| {
                    let gateway = IntercloudGateway::new(
                        SimClock::new(),
                        Location::new(0, 0),
                        Location::new(1, 0),
                    );
                    let data = gateway.ship_data(mb * MB, SimDuration::from_secs(5));
                    let compute = gateway
                        .ship_compute(200 * MB, SimDuration::from_secs(5), Ok(()))
                        .unwrap();
                    black_box((data.makespan(), compute.makespan()))
                })
            },
        );
    }
    group.finish();
}

fn bench_infra(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_infra");
    group.bench_function("provision_release_cycle", |b| {
        let mut cloud = InfraCloud::new();
        for _ in 0..8 {
            cloud.add_host(0, 64, 10_000_000_000);
        }
        b.iter(|| {
            let vm = cloud.provision_vm(0, 8).unwrap();
            cloud.release_vm(vm).unwrap();
        })
    });
    group.bench_function("workload_execute", |b| {
        let mut cloud = InfraCloud::new();
        cloud.add_host(0, 32, 20_000_000_000);
        let vm = cloud.provision_vm(0, 16).unwrap();
        let net = NetworkModel::default();
        let w = AnalyticsWorkload {
            flops: 1_000_000_000,
            input_bytes: 50 * MB,
            output_bytes: MB,
        };
        b.iter(|| {
            black_box(
                execute(&cloud, &net, vm, &w, Location::new(1, 0), Location::new(1, 0))
                    .unwrap()
                    .makespan(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gateway, bench_infra);
criterion_main!(benches);
