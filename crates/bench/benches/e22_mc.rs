//! E22 — concurrency checker: sweep cost, planted-defect detection,
//! and schedule replay.
//!
//! The experiment's recorded table comes from the CLI
//! (`cargo run --release -p hc-mc -- sweep` / `self-check` /
//! `cross-check`); this bench tracks that the CI `model-check` gate
//! stays cheap: the full DPOR sweep of the clean registry, finding the
//! planted lost-update, and replaying the canonical ABBA deadlock
//! schedule are all measured as driver cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use hc_mc::explore::{explore, replay, Bounds, Strategy};
use hc_mc::model;

fn bounds() -> Bounds {
    Bounds {
        preemptions: 2,
        max_schedules: 100_000,
        budget: Duration::from_secs(60),
    }
}

fn bench_mc(c: &mut Criterion) {
    let mut group = c.benchmark_group("e22_mc");

    // The whole CI sweep: every clean model, bounded-exhaustive DPOR.
    group.bench_function("dpor_sweep_clean_registry", |b| {
        b.iter(|| {
            let mut schedules = 0usize;
            for m in model::registry() {
                let x = explore(&m, Strategy::Dpor, &bounds(), false);
                assert!(x.is_clean() && x.exhausted, "{} regressed", m.name);
                schedules += x.schedules;
            }
            black_box(schedules)
        })
    });

    // Time-to-first-counter-example for the planted lost-update.
    let racy = model::find("fixtures.racy-counter").expect("planted fixture registered");
    group.bench_function("find_planted_lost_update", |b| {
        b.iter(|| {
            let x = explore(black_box(&racy), Strategy::Dpor, &bounds(), true);
            assert!(!x.counter_examples.is_empty());
            black_box(x.schedules)
        })
    });

    // Replaying one emitted schedule: the cost of reproducing a finding.
    let abba = model::find("fixtures.abba-deadlock").expect("planted fixture registered");
    let ce = explore(&abba, Strategy::Dpor, &bounds(), true)
        .counter_examples
        .into_iter()
        .next()
        .expect("ABBA deadlock found");
    group.bench_function("replay_abba_schedule", |b| {
        b.iter(|| {
            let outcome = replay(black_box(&abba), &ce.schedule);
            assert!(outcome.deadlock);
            black_box(outcome.schedule.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
