//! E5 — measured boot, quote verification, and the vTPM chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hc_attest::attestation::AttestationService;
use hc_attest::measure::{expected_pcrs, measured_boot, Component, Layer};
use hc_attest::tpm::{self, Tpm};
use std::hint::black_box;

fn stack(depth: usize) -> Vec<Component> {
    let layers = [Layer::Hardware, Layer::Hypervisor, Layer::Vm, Layer::Container];
    (0..depth)
        .map(|i| Component::new(layers[i], &format!("layer-{i}"), format!("v{i}").as_bytes()))
        .collect()
}

fn bench_boot_and_attest(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_boot_attest");
    group.sample_size(10);
    for depth in [1usize, 4] {
        let stack = stack(depth);
        group.bench_with_input(BenchmarkId::new("full_cycle", depth), &stack, |b, stack| {
            let mut rng = hc_common::rng::seeded(5);
            let mut service = AttestationService::new();
            for component in stack {
                service.register_golden(component);
            }
            b.iter(|| {
                let mut tpm = Tpm::generate(&mut rng, "host");
                service.trust_signer(tpm.public_key());
                let quote = measured_boot(&mut tpm, stack, b"n").unwrap();
                black_box(service.verify_quote(&quote, stack, b"n").trusted)
            })
        });
    }
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_components");
    let stack = stack(4);
    group.bench_function("expected_pcrs", |b| {
        b.iter(|| black_box(expected_pcrs(&stack)))
    });
    group.bench_function("quote_signature_verify", |b| {
        let mut rng = hc_common::rng::seeded(6);
        let mut t = Tpm::generate(&mut rng, "host");
        let quote = measured_boot(&mut t, &stack, b"n").unwrap();
        b.iter(|| black_box(tpm::verify_quote_signature(&quote)))
    });
    group.sample_size(10);
    group.bench_function("vtpm_spawn_and_certify", |b| {
        let mut rng = hc_common::rng::seeded(7);
        let mut hw = Tpm::generate(&mut rng, "hw");
        b.iter(|| {
            // A fresh parent every few spawns to avoid key exhaustion.
            if hw.certificate().is_none() && rand::Rng::gen_bool(&mut rng, 0.05) {
                hw = Tpm::generate(&mut rng, "hw");
            }
            match hw.spawn_vtpm(&mut rng, "vm") {
                Ok(vm) => black_box(tpm::verify_certificate(vm.certificate().unwrap())),
                Err(_) => {
                    hw = Tpm::generate(&mut rng, "hw");
                    true
                }
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_boot_and_attest, bench_components);
criterion_main!(benches);
