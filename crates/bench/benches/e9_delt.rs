//! E9 — DELT fitting cost vs cohort size, and its baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hc_analytics::delt::{self, DeltConfig};
use hc_kb::emr::{EmrCohort, EmrConfig};
use std::hint::black_box;

fn bench_delt(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_delt_fit");
    group.sample_size(10);
    for patients in [200usize, 800] {
        let cohort = EmrCohort::generate(
            EmrConfig {
                n_patients: patients,
                n_drugs: 30,
                planted_effects: vec![(0, -0.9), (1, -0.5)],
                ..EmrConfig::default()
            },
            9,
        );
        group.bench_with_input(BenchmarkId::new("delt_full", patients), &cohort, |b, cohort| {
            b.iter(|| black_box(delt::fit(cohort, &DeltConfig::default()).mse))
        });
        group.bench_with_input(
            BenchmarkId::new("marginal_baseline", patients),
            &cohort,
            |b, cohort| b.iter(|| black_box(delt::marginal_effects(cohort).len())),
        );
    }
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_cohort_generation");
    group.sample_size(10);
    group.bench_function("generate_500", |b| {
        b.iter(|| {
            black_box(
                EmrCohort::generate(
                    EmrConfig {
                        n_patients: 500,
                        ..EmrConfig::default()
                    },
                    9,
                )
                .patients
                .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_delt, bench_generation);
criterion_main!(benches);
