//! E17 — hc-lint analyser cost on the real workspace.
//!
//! The static-analysis gate runs in CI and inside `cargo test`, so its
//! own cost is a platform metric: a full two-phase workspace analysis
//! (parse → CFG → taint fixed point → summary index → rules) must stay
//! well under the 10 s budget or the gate gets skipped in practice.
//! Also measures the per-file rule cost on the taint fixture (known
//! sources, sinks, and sanitised twins), isolating the dataflow engine
//! from the directory walk.

use std::path::{Path, PathBuf};

use criterion::{criterion_group, criterion_main, Criterion};
use hc_lint::config::LintConfig;
use hc_lint::engine::{analyze_source, analyze_workspace};
use std::hint::black_box;

/// The taint fixture: sanitised/unsanitised export twins plus a
/// renamed-local flow — every dataflow feature on one page.
const TAINT_FIXTURE: &str = include_str!("../../lint/fixtures/ws/crates/taint/src/lib.rs");

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/bench sits two levels below the workspace root")
        .to_path_buf()
}

fn bench_lint(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_lint");
    let cfg = LintConfig::workspace_default();

    let root = workspace_root();
    group.sample_size(10);
    group.bench_function("workspace_full", |b| {
        b.iter(|| {
            let report = analyze_workspace(black_box(&root), &cfg);
            assert!(report.files_scanned > 100, "workspace walk looks broken");
            black_box(report.findings.len())
        })
    });

    group.sample_size(50);
    group.bench_function("single_file_taint", |b| {
        b.iter(|| {
            let findings = analyze_source(
                &cfg,
                "taint",
                "crates/taint/src/lib.rs",
                black_box(TAINT_FIXTURE),
            );
            black_box(findings.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_lint);
criterion_main!(benches);
