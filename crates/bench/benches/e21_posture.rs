//! E21 — posture scanner cost on the seeded 3-region deployment.
//!
//! The posture gate runs on every CI push, so its cost budget matters
//! the same way hc-lint's does (E17). Measured in three slices: the
//! snapshot capture (walks every subsystem's audit surface under its
//! lock), the pure rule evaluation over a captured snapshot, and the
//! combined capture + scan pass the CLI performs. The demo platform
//! boot is harness, not scanner, and is excluded from all three.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hc_posture::demo::{plant_violations, planted_config, DemoDeployment};
use hc_posture::scan::scan;
use hc_posture::snapshot::PlatformSnapshot;

fn bench_posture(c: &mut Criterion) {
    let mut demo = DemoDeployment::build(42).expect("demo builds");
    let planted = plant_violations(&mut demo).expect("plants apply");
    let config = planted_config();

    let mut group = c.benchmark_group("e21_posture");

    group.bench_function("snapshot_capture", |b| {
        b.iter(|| {
            let snap = PlatformSnapshot::capture(black_box(&demo.platform));
            assert!(snap.entity_count() > 0);
            black_box(snap.entity_count())
        })
    });

    let snapshot = PlatformSnapshot::capture(&demo.platform);
    group.bench_function("rule_evaluation", |b| {
        b.iter(|| {
            let outcome = scan(black_box(&snapshot), &config).expect("config valid");
            assert_eq!(outcome.findings.len(), planted.len());
            black_box(outcome.findings.len())
        })
    });

    group.bench_function("capture_and_scan", |b| {
        b.iter(|| {
            let snap = PlatformSnapshot::capture(black_box(&demo.platform));
            let outcome = scan(&snap, &config).expect("config valid");
            black_box(outcome.findings.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_posture);
criterion_main!(benches);
