//! E6 — end-to-end ingestion pipeline throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_common::id::PatientId;
use hc_core::platform::{demo_bundle, HealthCloudPlatform, PlatformConfig};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_ingestion");
    group.sample_size(10);

    group.bench_function("upload_and_process_one", |b| {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig {
            ledger_batch: 64,
            ..PlatformConfig::default()
        });
        let device = platform.register_patient_device(PatientId::from_raw(1));
        let bundle = demo_bundle("p1", true);
        b.iter(|| {
            platform.upload(&device, &bundle).unwrap();
            black_box(platform.process_ingestion())
        })
    });

    group.bench_function("seal_upload_only", |b| {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig::default());
        let device = platform.register_patient_device(PatientId::from_raw(1));
        let bundle = demo_bundle("p1", true);
        b.iter(|| black_box(platform.pipeline.seal_upload(&device, &bundle).unwrap()))
    });

    group.bench_function("validate_only", |b| {
        let validator = hc_fhir::validation::Validator::strict();
        let bundle = demo_bundle("p1", true);
        b.iter(|| black_box(validator.validate_bundle(&bundle).is_valid()))
    });

    group.bench_function("deidentify_only", |b| {
        let bundle = demo_bundle("p1", true);
        let config = hc_privacy::phi::DeidConfig::default();
        b.iter(|| black_box(hc_privacy::phi::deidentify_bundle(&bundle, &config, b"salt")))
    });

    group.bench_function("malware_scan_16k", |b| {
        let scanner = hc_ingest::scanner::MalwareScanner::new();
        let data = hc_bench::payload(16_384);
        b.iter(|| black_box(scanner.scan(&data)))
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
