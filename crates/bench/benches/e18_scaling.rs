//! E18 — multi-core scaling of the sharded serving hot path.
//!
//! Benchmarks the real [`ShardedCache`] single-thread op cost (global
//! lock vs 32 stripes), the closed-loop driver at 8 threads, and the
//! deterministic virtual-time contention model that produces the
//! recorded EXPERIMENTS.md table. The wall-clock rows are
//! host-dependent; the model rows are bit-reproducible.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_cache::policy::LruCache;
use hc_cache::shard::{ShardRouter, ShardedCache};
use hc_common::conc::{self, SimOp};
use rand::Rng;
use std::hint::black_box;

const KEYS: usize = 4096;
const SEED: u64 = 18;

fn build_cache(shards: usize) -> ShardedCache<usize, u64, LruCache<usize, u64>> {
    let cache = ShardedCache::lru(KEYS / 4, shards, SEED);
    for k in 0..KEYS {
        cache.put(k, k as u64);
    }
    cache
}

fn bench_single_thread_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_single_thread");
    for shards in [1usize, 32] {
        let cache = build_cache(shards);
        let mut rng = hc_common::rng::seeded(SEED);
        group.bench_function(format!("mixed_ops_{shards}_shards"), |b| {
            b.iter(|| {
                let k = conc::zipf_key(&mut rng, KEYS);
                if rng.gen_bool(0.10) {
                    cache.put(k, 1);
                } else {
                    black_box(cache.get(&k));
                }
            })
        });
    }
    group.finish();
}

fn bench_closed_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_closed_loop");
    group.sample_size(10);
    for shards in [1usize, 32] {
        let cache = build_cache(shards);
        group.bench_function(format!("threads8_{shards}_shards"), |b| {
            b.iter(|| {
                let report = conc::run_closed_loop(8, 2_000, SEED, |_, _, rng| {
                    let k = conc::zipf_key(rng, KEYS);
                    if rng.gen_bool(0.10) {
                        cache.put(k, 1);
                    } else {
                        black_box(cache.get(&k));
                    }
                });
                black_box(report.elapsed_ns)
            })
        });
    }
    group.finish();
}

fn bench_contention_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_model");
    for (shards, threads) in [(1usize, 8usize), (32, 8)] {
        group.bench_function(format!("{shards}_shards_{threads}_threads"), |b| {
            b.iter(|| {
                let router = ShardRouter::new(shards, SEED);
                let report =
                    conc::simulate_locked_workload(shards, threads, 10_000, SEED, |_, _, rng| {
                        let k = conc::zipf_key(rng, KEYS);
                        SimOp {
                            lock: router.route(&k),
                            work_ns: 40,
                            hold_ns: if rng.gen_bool(0.10) { 220 } else { 140 },
                        }
                    });
                black_box(report.mops())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_thread_ops,
    bench_closed_loop,
    bench_contention_model
);
criterion_main!(benches);
