//! E10/E11 — enhanced-client operations and service selection.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_client::offload;
use hc_client::sdk::{EnhancedClient, RemoteStore};
use hc_client::services::{Capability, ServiceRegistry, SimulatedService};
use hc_common::clock::{SimClock, SimDuration};
use hc_core::platform::demo_bundle;
use hc_crypto::aead::SecretKey;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;

fn bench_client(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_client");
    let remote: RemoteStore = Arc::new(Mutex::new(HashMap::new()));
    let mut rng = hc_common::rng::seeded(10);
    let mut client = EnhancedClient::new(
        SimClock::new(),
        Arc::clone(&remote),
        SecretKey::generate(&mut rng),
        64,
    );
    client.put("hot", vec![1, 2, 3]);
    group.bench_function("cached_get", |b| {
        b.iter(|| black_box(client.get("hot").unwrap().latency))
    });
    group.bench_function("put_encrypted", |b| {
        b.iter(|| client.put_encrypted("phi", b"hba1c=7.0"))
    });
    let bundle = demo_bundle("p1", true);
    group.bench_function("anonymize_local", |b| {
        b.iter(|| black_box(client.anonymize_local(&bundle, b"salt").pseudonyms.len()))
    });
    group.bench_function("offload_plans", |b| {
        b.iter(|| {
            let a = offload::client_side_plan(
                &bundle,
                SimDuration::from_millis(3),
                SimDuration::from_millis(50),
            );
            let s = offload::server_side_plan(
                &bundle,
                SimDuration::from_millis(1),
                SimDuration::from_millis(50),
            );
            black_box((a.latency, s.latency))
        })
    });
    group.finish();
}

fn bench_services(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_services");
    let mut registry = ServiceRegistry::new(SimClock::new());
    for i in 0..5 {
        registry.register(SimulatedService {
            name: format!("svc-{i}"),
            capability: Capability::NaturalLanguage,
            mean_latency: SimDuration::from_millis(20 + i * 30),
            jitter: 0.2,
            availability: 0.95,
            accuracy: 0.9,
        });
    }
    let mut rng = hc_common::rng::seeded(11);
    group.bench_function("invoke_tracked", |b| {
        b.iter(|| black_box(registry.invoke("svc-0", &mut rng).is_ok()))
    });
    group.bench_function("select_best", |b| {
        b.iter(|| black_box(registry.select_best(Capability::NaturalLanguage, 0.0).unwrap().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_client, bench_services);
criterion_main!(benches);
