//! E20 — distributed cache fleet: ring election, replica reads, and the
//! fleet-backed closed loop.
//!
//! The experiment's recorded table comes from
//! `cargo run --release --example experiments -- e20`; this bench tracks
//! that the ring rebuild stays cheap enough to run on every membership
//! change, that a replica read (ring lookup → fan-out → repair check) is
//! microseconds of driver cost, and that the fleet-backed serving loop
//! stays in the same budget as E19's.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_cache::fleet::{CacheFleet, FleetConfig, HashRing};
use hc_cloudsim::net::Location;
use hc_common::clock::{SimClock, SimDuration, SimInstant};
use hc_common::conc::LoadCurve;
use hc_core::serving::{
    run_overload, FleetTierConfig, Protection, ServingConfig, ServingStack, WorkloadConfig,
};
use hc_resilience::timeout::TimeoutBudget;
use std::hint::black_box;

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("e20_ring");
    // Rebuild (rendezvous election over every arc) happens once per
    // membership change, never on the read path.
    group.bench_function("rebuild_12_nodes_256_vnodes", |b| {
        b.iter(|| {
            let mut ring = HashRing::new(0xE20, 256);
            for n in 0..12 {
                ring.add_node(n);
            }
            black_box(ring.len())
        })
    });
    let mut ring = HashRing::new(0xE20, 256);
    for n in 0..12 {
        ring.add_node(n);
    }
    let mut key = 0u64;
    group.bench_function("replicas_r3", |b| {
        b.iter(|| {
            key = key.wrapping_add(1);
            black_box(ring.replicas(&key, 3))
        })
    });
    group.finish();
}

fn bench_fleet_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("e20_fleet_read");
    let clock = SimClock::new();
    let cfg = FleetConfig {
        node_capacity: 65_536,
        ..FleetConfig::default()
    };
    let mut fleet: CacheFleet<u64, u64> = CacheFleet::with_topology(cfg, clock.clone(), 3, 2);
    let client = Location::new(0, 99);
    for k in 0..16_384u64 {
        fleet.fill(&k, &k, 1, client);
    }
    let mut key = 0u64;
    group.bench_function("replicated_hit", |b| {
        b.iter(|| {
            key = (key + 1) % 16_384;
            let budget = TimeoutBudget::starting_now(&clock, SimDuration::from_secs(1));
            black_box(fleet.read(&key, client, &budget).is_hit())
        })
    });
    group.bench_function("invalidate_and_tick", |b| {
        b.iter(|| {
            key = (key + 1) % 16_384;
            fleet.write_invalidate(&key, client);
            clock.advance(SimDuration::from_millis(100));
            fleet.tick(clock.now());
            black_box(fleet.pending_deliveries())
        })
    });
    group.finish();
}

/// The E20 closed-loop shape at reduced scale: local tier in front of a
/// 3-region fleet, one node crashing mid-run.
fn bench_closed_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("e20_closed_loop");
    group.sample_size(10);
    let at = |secs: u64| SimInstant::from_nanos(SimDuration::from_secs(secs).as_nanos());
    let config = || ServingConfig {
        cores: 32,
        hit_cost: SimDuration::from_micros(50),
        miss_cost: SimDuration::from_micros(800),
        origin_fetch_cost: SimDuration::from_millis(1),
        origin_cores: 4,
        cache_capacity: 2_048,
        cache_shards: 8,
        admission_rate: 1_500.0,
        admission_burst: 75.0,
        protection: Protection::Full,
        fleet: Some(FleetTierConfig {
            node_capacity: 8_192,
            crash_windows: vec![(0, at(6), at(10))],
            ..FleetTierConfig::default()
        }),
        ..ServingConfig::default()
    };
    let workload = || WorkloadConfig {
        curve: LoadCurve::new(62_500.0),
        req_per_user_per_sec: 0.02,
        tier_mix: [0.10, 0.60, 0.30],
        keyspace: 8_192,
        duration: SimDuration::from_secs(15),
        tick: SimDuration::from_millis(1),
        seed: 20,
        windows: Vec::new(),
    };
    group.bench_function("fleet_with_node_crash", |b| {
        b.iter(|| {
            let stack = ServingStack::new(SimClock::new(), config());
            let report = run_overload(stack, &workload());
            black_box(report.fleet.map(|f| f.hit_ratio))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ring, bench_fleet_read, bench_closed_loop);
criterion_main!(benches);
