//! Shared workload generators for the E1–E20 criterion benches.
//!
//! Each bench target regenerates the wall-clock side of one experiment
//! from EXPERIMENTS.md; the simulated-latency side (the model) is printed
//! by `cargo run --release --example experiments`.

#![forbid(unsafe_code)]

use rand::Rng;

/// Draws a Zipf(≈1) key over `n` keys. Delegates to the platform-wide
/// generator in [`hc_common::conc`] so benches and the concurrent
/// workload driver sample the same distribution.
pub fn zipf_key<R: Rng>(rng: &mut R, n: usize) -> usize {
    hc_common::conc::zipf_key(rng, n)
}

/// A deterministic payload of `size` bytes.
pub fn payload(size: usize) -> Vec<u8> {
    (0..size).map(|i| (i * 31 % 251) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_prefers_small_keys() {
        let mut rng = hc_common::rng::seeded(1);
        let draws: Vec<usize> = (0..2000).map(|_| zipf_key(&mut rng, 100)).collect();
        let small = draws.iter().filter(|&&k| k < 10).count();
        assert!(small > draws.len() / 3);
    }

    #[test]
    fn payload_deterministic() {
        assert_eq!(payload(16), payload(16));
        assert_eq!(payload(4).len(), 4);
    }
}
