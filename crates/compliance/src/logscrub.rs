//! The log sanitizer.
//!
//! §IV-E: "such logged events cannot contain sensitive data" — and
//! §IV-A warns that logs "may be analyzed to carry out inference
//! attacks". Every log line passes through [`scrub`] before persistence:
//! SSN-shaped, phone-shaped, MRN-tagged and email-shaped tokens are
//! replaced with typed redaction markers, and the count of redactions is
//! reported so monitoring can flag services that keep logging PHI.

/// The result of sanitizing one log line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScrubbedLine {
    /// The sanitized text.
    pub text: String,
    /// How many redactions were applied, by kind.
    pub redactions: Vec<(RedactionKind, usize)>,
}

impl ScrubbedLine {
    /// Total redactions applied.
    pub fn total_redactions(&self) -> usize {
        self.redactions.iter().map(|(_, n)| n).sum()
    }
}

/// What kind of sensitive token was found.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RedactionKind {
    /// `ddd-dd-dddd` — SSN shaped.
    Ssn,
    /// `ddd-dddd` or `(ddd) ddd-dddd` — phone shaped.
    Phone,
    /// `mrn=<token>` / `mrn:<token>`.
    Mrn,
    /// `local@domain.tld`.
    Email,
}

fn is_digits(s: &str, lens: &[usize]) -> bool {
    let parts: Vec<&str> = s.split('-').collect();
    parts.len() == lens.len()
        && parts
            .iter()
            .zip(lens)
            .all(|(p, &l)| p.len() == l && p.chars().all(|c| c.is_ascii_digit()))
}

fn classify(token: &str) -> Option<RedactionKind> {
    let trimmed = token.trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '-' && c != '@' && c != '.' && c != '=' && c != ':');
    if is_digits(trimmed, &[3, 2, 4]) {
        return Some(RedactionKind::Ssn);
    }
    if is_digits(trimmed, &[3, 4]) || is_digits(trimmed, &[3, 3, 4]) {
        return Some(RedactionKind::Phone);
    }
    let lower = trimmed.to_ascii_lowercase();
    if lower.starts_with("mrn=") || lower.starts_with("mrn:") {
        return Some(RedactionKind::Mrn);
    }
    if let Some(at) = trimmed.find('@') {
        let (local, domain) = trimmed.split_at(at);
        let domain = &domain[1..];
        if !local.is_empty() && domain.contains('.') && !domain.ends_with('.') {
            return Some(RedactionKind::Email);
        }
    }
    None
}

fn marker(kind: RedactionKind) -> &'static str {
    match kind {
        RedactionKind::Ssn => "[REDACTED:ssn]",
        RedactionKind::Phone => "[REDACTED:phone]",
        RedactionKind::Mrn => "[REDACTED:mrn]",
        RedactionKind::Email => "[REDACTED:email]",
    }
}

/// Sanitizes one log line.
pub fn scrub(line: &str) -> ScrubbedLine {
    let mut counts: Vec<(RedactionKind, usize)> = Vec::new();
    let mut out: Vec<String> = Vec::new();
    for token in line.split_whitespace() {
        match classify(token) {
            Some(kind) => {
                match counts.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((kind, 1)),
                }
                out.push(marker(kind).to_owned());
            }
            None => out.push(token.to_owned()),
        }
    }
    ScrubbedLine {
        text: out.join(" "),
        redactions: counts,
    }
}

/// A persistent log that refuses to store unscrubbed PHI.
#[derive(Debug, Default)]
pub struct SanitizedLog {
    lines: Vec<String>,
    total_redactions: usize,
}

impl SanitizedLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        SanitizedLog::default()
    }

    /// Appends a line after sanitization; returns redactions applied.
    pub fn append(&mut self, line: &str) -> usize {
        let scrubbed = scrub(line);
        let n = scrubbed.total_redactions();
        self.total_redactions += n;
        self.lines.push(scrubbed.text);
        n
    }

    /// The stored (sanitized) lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Total redactions across the log's lifetime (a monitoring signal:
    /// a service that keeps tripping the scrubber is logging PHI).
    pub fn total_redactions(&self) -> usize {
        self.total_redactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ssn_redacted() {
        let s = scrub("patient ssn 123-45-6789 admitted");
        assert_eq!(s.text, "patient ssn [REDACTED:ssn] admitted");
        assert_eq!(s.redactions, vec![(RedactionKind::Ssn, 1)]);
    }

    #[test]
    fn phone_shapes_redacted() {
        let s = scrub("call 555-0134 or 212-555-0134");
        assert!(s.text.contains("[REDACTED:phone] or [REDACTED:phone]"));
        assert_eq!(s.total_redactions(), 2);
    }

    #[test]
    fn mrn_and_email_redacted() {
        let s = scrub("lookup mrn=ABC123 notify jane.doe@example.org");
        assert!(s.text.contains("[REDACTED:mrn]"));
        assert!(s.text.contains("[REDACTED:email]"));
    }

    #[test]
    fn clean_lines_untouched() {
        let line = "ingestion 42 completed in 18 ms status=stored";
        let s = scrub(line);
        assert_eq!(s.text, line);
        assert!(s.redactions.is_empty());
    }

    #[test]
    fn punctuation_does_not_hide_phi() {
        let s = scrub("ssn: 123-45-6789, phone (bad).");
        assert!(s.text.contains("[REDACTED:ssn]"), "{}", s.text);
    }

    #[test]
    fn non_phi_numbers_survive() {
        let s = scrub("block 123-456 height 99 hash 00-11");
        // 123-456 is not a valid SSN/phone shape (3-3), 00-11 neither.
        assert_eq!(s.total_redactions(), 0);
    }

    #[test]
    fn sanitized_log_accumulates() {
        let mut log = SanitizedLog::new();
        assert_eq!(log.append("clean line"), 0);
        assert_eq!(log.append("ssn 123-45-6789"), 1);
        assert_eq!(log.total_redactions(), 1);
        assert_eq!(log.lines().len(), 2);
        assert!(!log.lines()[1].contains("6789"));
    }

    proptest! {
        #[test]
        fn scrubbed_output_never_contains_ssn_shapes(
            a in 100u32..999, b in 10u32..99, c in 1000u32..9999,
            prefix in "[a-z ]{0,20}", suffix in "[a-z ]{0,20}",
        ) {
            let line = format!("{prefix} {a:03}-{b:02}-{c:04} {suffix}");
            let s = scrub(&line);
            let ssn = format!("{a:03}-{b:02}-{c:04}");
            prop_assert!(!s.text.contains(&ssn));
        }

        #[test]
        fn scrubbing_is_idempotent(line in "[ -~]{0,80}") {
            let once = scrub(&line);
            let twice = scrub(&once.text);
            prop_assert_eq!(&once.text, &twice.text);
        }
    }
}
