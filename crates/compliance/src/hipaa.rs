//! The HIPAA control catalog and evaluator (paper Fig. 8).
//!
//! Controls are grouped into the four pillars. Each control names the
//! *evidence key* a platform subsystem must assert; the evaluator grades
//! the supplied [`Evidence`] and produces a [`ComplianceReport`] with
//! per-pillar scores and the list of failing controls — the artifact an
//! auditor (internal or external, §IV-E) reviews.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// The four HIPAA pillars of the paper's Fig. 8.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Pillar {
    /// Administrative safeguards (workforce, access management, training).
    Administrative,
    /// Physical safeguards (facility, workstation, device controls).
    Physical,
    /// Technical safeguards (access control, audit, integrity, transmission).
    Technical,
    /// Policies, procedures and documentation requirements.
    PoliciesAndDocumentation,
}

/// One checkable control.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Control {
    /// Regulation-style identifier (e.g. `"164.312(a)(1)"`).
    pub id: String,
    /// Which pillar it belongs to.
    pub pillar: Pillar,
    /// Human-readable requirement.
    pub requirement: String,
    /// The evidence key a subsystem must assert true.
    pub evidence_key: String,
    /// Whether the control is required (vs addressable).
    pub required: bool,
}

/// Evidence assembled from the running platform: key → satisfied?
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Evidence {
    facts: BTreeMap<String, bool>,
}

impl Evidence {
    /// Creates empty evidence.
    pub fn new() -> Self {
        Evidence::default()
    }

    /// Asserts a fact.
    pub fn assert_fact(&mut self, key: &str, satisfied: bool) -> &mut Self {
        self.facts.insert(key.to_owned(), satisfied);
        self
    }

    /// Whether a fact is asserted true.
    pub fn satisfied(&self, key: &str) -> Option<bool> {
        self.facts.get(key).copied()
    }
}

/// One control's evaluation outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ControlStatus {
    /// Evidence asserts the control is met.
    Satisfied,
    /// Evidence asserts the control is not met.
    Failed,
    /// No evidence was supplied.
    NotAssessed,
}

/// The full compliance report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ComplianceReport {
    /// Per-control outcomes, in catalog order.
    pub results: Vec<(Control, ControlStatus)>,
}

impl ComplianceReport {
    /// Whether every *required* control is satisfied.
    pub fn is_compliant(&self) -> bool {
        self.results
            .iter()
            .filter(|(c, _)| c.required)
            .all(|(_, s)| *s == ControlStatus::Satisfied)
    }

    /// Fraction of controls satisfied within a pillar (`None` if the
    /// pillar has no controls in the catalog).
    pub fn pillar_score(&self, pillar: Pillar) -> Option<f64> {
        let in_pillar: Vec<&ControlStatus> = self
            .results
            .iter()
            .filter(|(c, _)| c.pillar == pillar)
            .map(|(_, s)| s)
            .collect();
        if in_pillar.is_empty() {
            return None;
        }
        let satisfied = in_pillar
            .iter()
            .filter(|s| ***s == ControlStatus::Satisfied)
            .count();
        Some(satisfied as f64 / in_pillar.len() as f64)
    }

    /// The failing or unassessed required controls (the audit findings).
    pub fn findings(&self) -> Vec<&Control> {
        self.results
            .iter()
            .filter(|(c, s)| c.required && *s != ControlStatus::Satisfied)
            .map(|(c, _)| c)
            .collect()
    }
}

fn control(id: &str, pillar: Pillar, requirement: &str, evidence_key: &str, required: bool) -> Control {
    Control {
        id: id.to_owned(),
        pillar,
        requirement: requirement.to_owned(),
        evidence_key: evidence_key.to_owned(),
        required,
    }
}

/// The built-in control catalog: a representative subset of the HIPAA
/// Security Rule mapped onto the platform's subsystems.
pub fn catalog() -> Vec<Control> {
    use Pillar::*;
    vec![
        // Administrative.
        control("164.308(a)(1)", Administrative, "risk analysis and management process", "risk-analysis", true),
        control("164.308(a)(3)", Administrative, "workforce access authorized via roles", "rbac-enforced", true),
        control("164.308(a)(4)", Administrative, "access authorization consults consent", "consent-enforced", true),
        control("164.308(a)(6)", Administrative, "security incident response procedures", "incident-alarms", true),
        control("164.308(a)(7)", Administrative, "contingency plan: recoverable storage", "wal-recovery", false),
        // Physical.
        control("164.310(a)(1)", Physical, "facility access limited to verified hardware", "attested-hardware", true),
        control("164.310(d)(1)", Physical, "device and media controls: signed images only", "signed-images", true),
        control("164.310(d)(2)", Physical, "media disposal: cryptographic erasure", "crypto-shredding", true),
        // Technical.
        control("164.312(a)(1)", Technical, "unique user identification and tokens", "authenticated-access", true),
        control("164.312(b)", Technical, "audit controls record PHI activity", "provenance-ledger", true),
        control("164.312(c)(1)", Technical, "integrity: PHI protected from improper alteration", "integrity-verified", true),
        control("164.312(d)", Technical, "person/entity authentication", "identity-verified", true),
        control("164.312(e)(1)", Technical, "transmission security: encryption in transit", "encrypted-transport", true),
        control("164.312(e)(2)", Technical, "encryption at rest", "encrypted-at-rest", true),
        // Policies & documentation.
        control("164.316(a)", PoliciesAndDocumentation, "policies implemented and maintained", "change-management", true),
        control("164.316(b)(1)", PoliciesAndDocumentation, "documentation retained and auditable", "audit-retention", true),
        control("164.316(b)(2)(iii)", PoliciesAndDocumentation, "documentation updated on change approval", "golden-values-updated", false),
        // GDPR extension the paper calls out as stricter.
        control("GDPR-17", PoliciesAndDocumentation, "right to erasure honored end-to-end", "right-to-forget", true),
    ]
}

/// Evaluates the catalog against supplied evidence.
pub fn evaluate(evidence: &Evidence) -> ComplianceReport {
    let results = catalog()
        .into_iter()
        .map(|c| {
            let status = match evidence.satisfied(&c.evidence_key) {
                Some(true) => ControlStatus::Satisfied,
                Some(false) => ControlStatus::Failed,
                None => ControlStatus::NotAssessed,
            };
            (c, status)
        })
        .collect();
    ComplianceReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_evidence() -> Evidence {
        let mut e = Evidence::new();
        for c in catalog() {
            e.assert_fact(&c.evidence_key, true);
        }
        e
    }

    #[test]
    fn full_evidence_is_compliant() {
        let report = evaluate(&full_evidence());
        assert!(report.is_compliant());
        assert!(report.findings().is_empty());
        for pillar in [
            Pillar::Administrative,
            Pillar::Physical,
            Pillar::Technical,
            Pillar::PoliciesAndDocumentation,
        ] {
            assert_eq!(report.pillar_score(pillar), Some(1.0), "{pillar:?}");
        }
    }

    #[test]
    fn one_failed_required_control_breaks_compliance() {
        let mut evidence = full_evidence();
        evidence.assert_fact("encrypted-at-rest", false);
        let report = evaluate(&evidence);
        assert!(!report.is_compliant());
        let findings = report.findings();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].id, "164.312(e)(2)");
    }

    #[test]
    fn addressable_controls_do_not_break_compliance() {
        let mut evidence = full_evidence();
        evidence.assert_fact("wal-recovery", false);
        let report = evaluate(&evidence);
        assert!(report.is_compliant(), "addressable control failure tolerated");
        assert!(report.pillar_score(Pillar::Administrative).unwrap() < 1.0);
    }

    #[test]
    fn missing_evidence_is_not_assessed() {
        let report = evaluate(&Evidence::new());
        assert!(!report.is_compliant());
        assert!(report
            .results
            .iter()
            .all(|(_, s)| *s == ControlStatus::NotAssessed));
    }

    #[test]
    fn catalog_covers_all_four_pillars() {
        let cat = catalog();
        for pillar in [
            Pillar::Administrative,
            Pillar::Physical,
            Pillar::Technical,
            Pillar::PoliciesAndDocumentation,
        ] {
            assert!(cat.iter().any(|c| c.pillar == pillar), "{pillar:?}");
        }
        // Ids unique.
        let mut ids: Vec<&str> = cat.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn pillar_score_counts_fractions() {
        let mut evidence = full_evidence();
        evidence.assert_fact("attested-hardware", false);
        let report = evaluate(&evidence);
        let score = report.pillar_score(Pillar::Physical).unwrap();
        assert!((score - 2.0 / 3.0).abs() < 1e-9);
    }
}
