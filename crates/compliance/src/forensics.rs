//! Forensic audit-log analytics (§IV-E).
//!
//! "External and internal teams may be able to audit the data usage and
//! processing … Log analytics systems are used for audit and forensic
//! purposes." The analyzer consumes a stream of access events and raises
//! typed findings: exfiltration-shaped volume spikes, after-hours access
//! to PHI, and denial bursts (credential probing / privilege scanning).

use hc_common::clock::SimInstant;
use serde::{Deserialize, Serialize};

/// One access event from the gateway/ledger, normalized for analysis.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AccessEvent {
    /// Who acted.
    pub actor: String,
    /// The operation name.
    pub operation: String,
    /// Whether it was allowed.
    pub allowed: bool,
    /// Whether the target was identified PHI.
    pub touches_phi: bool,
    /// When (simulated).
    pub at: SimInstant,
}

/// A forensic finding.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Finding {
    /// An actor's PHI-read volume exceeded `threshold ×` their peers'
    /// median in the window.
    VolumeSpike {
        /// The suspicious actor.
        actor: String,
        /// Their event count in the window.
        count: usize,
        /// The peer median.
        peer_median: usize,
    },
    /// PHI accessed outside working hours.
    AfterHoursAccess {
        /// The actor.
        actor: String,
        /// Number of after-hours PHI touches.
        count: usize,
    },
    /// A run of consecutive denials from one actor (probing).
    DenialBurst {
        /// The actor.
        actor: String,
        /// Longest consecutive-denial run.
        run: usize,
    },
}

/// Analyzer configuration.
#[derive(Clone, Copy, Debug)]
pub struct ForensicsConfig {
    /// Volume-spike multiplier over the peer median.
    pub spike_factor: usize,
    /// Minimum events before volume analysis applies.
    pub spike_min_events: usize,
    /// Working-hours window in hours-of-day `[start, end)`.
    pub working_hours: (u64, u64),
    /// Denial-run length that counts as probing.
    pub denial_run: usize,
}

impl Default for ForensicsConfig {
    fn default() -> Self {
        ForensicsConfig {
            spike_factor: 5,
            spike_min_events: 10,
            working_hours: (8, 18),
            denial_run: 5,
        }
    }
}

fn hour_of_day(at: SimInstant) -> u64 {
    (at.as_nanos() / 3_600_000_000_000) % 24
}

/// Runs the full analysis over an event log.
pub fn analyze(events: &[AccessEvent], config: &ForensicsConfig) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Per-actor PHI-read volumes.
    let mut volumes: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for e in events.iter().filter(|e| e.allowed && e.touches_phi) {
        *volumes.entry(e.actor.as_str()).or_default() += 1;
    }
    if volumes.len() >= 2 {
        let mut counts: Vec<usize> = volumes.values().copied().collect();
        counts.sort_unstable();
        let peer_median = counts[counts.len() / 2];
        for (actor, &count) in &volumes {
            if count >= config.spike_min_events
                && peer_median > 0
                && count >= config.spike_factor * peer_median
            {
                findings.push(Finding::VolumeSpike {
                    actor: (*actor).to_owned(),
                    count,
                    peer_median,
                });
            }
        }
    }

    // After-hours PHI access.
    let mut after_hours: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for e in events.iter().filter(|e| e.allowed && e.touches_phi) {
        let hour = hour_of_day(e.at);
        if hour < config.working_hours.0 || hour >= config.working_hours.1 {
            *after_hours.entry(e.actor.as_str()).or_default() += 1;
        }
    }
    for (actor, count) in after_hours {
        findings.push(Finding::AfterHoursAccess {
            actor: actor.to_owned(),
            count,
        });
    }

    // Denial bursts per actor (consecutive in that actor's own stream).
    let mut actors: Vec<&str> = events.iter().map(|e| e.actor.as_str()).collect();
    actors.sort_unstable();
    actors.dedup();
    for actor in actors {
        let mut longest = 0usize;
        let mut current = 0usize;
        for e in events.iter().filter(|e| e.actor == actor) {
            if e.allowed {
                current = 0;
            } else {
                current += 1;
                longest = longest.max(current);
            }
        }
        if longest >= config.denial_run {
            findings.push(Finding::DenialBurst {
                actor: actor.to_owned(),
                run: longest,
            });
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(actor: &str, allowed: bool, phi: bool, hour: u64) -> AccessEvent {
        AccessEvent {
            actor: actor.into(),
            operation: "read".into(),
            allowed,
            touches_phi: phi,
            at: SimInstant::from_nanos(hour * 3_600_000_000_000),
        }
    }

    #[test]
    fn volume_spike_detected() {
        let mut events = Vec::new();
        for _ in 0..3 {
            events.push(event("alice", true, true, 10));
            events.push(event("bob", true, true, 10));
        }
        for _ in 0..40 {
            events.push(event("eve", true, true, 10));
        }
        let findings = analyze(&events, &ForensicsConfig::default());
        assert!(findings.iter().any(
            |f| matches!(f, Finding::VolumeSpike { actor, count, .. } if actor == "eve" && *count == 40)
        ));
        assert!(!findings
            .iter()
            .any(|f| matches!(f, Finding::VolumeSpike { actor, .. } if actor == "alice")));
    }

    #[test]
    fn after_hours_access_detected() {
        let events = vec![
            event("dr-day", true, true, 11),
            event("dr-night", true, true, 3),
            event("dr-night", true, true, 23),
        ];
        let findings = analyze(&events, &ForensicsConfig::default());
        assert!(findings.iter().any(
            |f| matches!(f, Finding::AfterHoursAccess { actor, count } if actor == "dr-night" && *count == 2)
        ));
        assert!(!findings
            .iter()
            .any(|f| matches!(f, Finding::AfterHoursAccess { actor, .. } if actor == "dr-day")));
    }

    #[test]
    fn denial_burst_detected() {
        let mut events = Vec::new();
        for _ in 0..6 {
            events.push(event("prober", false, false, 10));
        }
        events.push(event("fumbler", false, false, 10));
        events.push(event("fumbler", true, false, 10));
        events.push(event("fumbler", false, false, 10));
        let findings = analyze(&events, &ForensicsConfig::default());
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::DenialBurst { actor, run } if actor == "prober" && *run == 6)));
        assert!(!findings
            .iter()
            .any(|f| matches!(f, Finding::DenialBurst { actor, .. } if actor == "fumbler")));
    }

    #[test]
    fn quiet_log_is_clean() {
        let events = vec![
            event("alice", true, true, 9),
            event("bob", true, true, 14),
            event("alice", true, false, 16),
        ];
        assert!(analyze(&events, &ForensicsConfig::default()).is_empty());
    }

    #[test]
    fn non_phi_volume_does_not_spike() {
        let mut events = vec![event("alice", true, true, 10), event("bob", true, true, 10)];
        for _ in 0..100 {
            events.push(event("batch-job", true, false, 10)); // not PHI
        }
        let findings = analyze(&events, &ForensicsConfig::default());
        assert!(!findings
            .iter()
            .any(|f| matches!(f, Finding::VolumeSpike { actor, .. } if actor == "batch-job")));
    }
}
