//! Regulatory compliance: the paper's §IV-D/§IV-E machinery.
//!
//! "The HIPAA controls are categorized into four pillars: administrative,
//! physical, technical and policies and documentation" (Fig. 8).
//! "Compliance requirements are already defined by regulatory policies,
//! and they need to be implemented by implementing security and privacy
//! policies and mechanisms" — compliance is *top-down*: this crate turns
//! the regulation into checkable controls evaluated against evidence the
//! platform's subsystems supply. And §IV-E: "Log analytics systems are
//! used for audit and forensic purposes … such logged events cannot
//! contain sensitive data."
//!
//! * [`hipaa`] — the HIPAA control catalog across the four pillars
//!   (Fig. 8), evidence-based evaluation, and a compliance report with a
//!   per-pillar score.
//! * [`logscrub`] — the log sanitizer: detects and redacts PHI patterns
//!   (SSNs, phone numbers, MRNs, names-after-markers, email addresses)
//!   before log lines are persisted.
//! * [`forensics`] — audit-log analytics: per-actor activity profiles,
//!   after-hours access detection, volume-spike (exfiltration) detection,
//!   and denial-burst (probing) detection.

#![forbid(unsafe_code)]

pub mod forensics;
pub mod hipaa;
pub mod logscrub;
