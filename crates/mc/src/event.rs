//! The owned trace vocabulary shared by both engines.
//!
//! [`parking_lot::mc::ProbeEvent`] is a borrowed, allocation-free view
//! emitted from the instrumented shims; this module owns the same
//! vocabulary ([`EventKind`]) plus the thread attribution a probe adds
//! ([`TraceEvent`]), so traces can outlive the execution that produced
//! them, be serialized into artifacts, and be replayed through the
//! happens-before engine offline.

use parking_lot::mc::{LockKind, ObjectId, ProbeEvent};
use serde::{Deserialize, Serialize};

/// Which acquisition mode a lock event concerns (owned mirror of
/// [`parking_lot::mc::LockKind`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Exclusive mutex acquisition.
    Mutex,
    /// Shared rwlock acquisition.
    Read,
    /// Exclusive rwlock acquisition.
    Write,
}

impl From<LockKind> for Mode {
    fn from(kind: LockKind) -> Self {
        match kind {
            LockKind::Mutex => Mode::Mutex,
            LockKind::RwRead => Mode::Read,
            LockKind::RwWrite => Mode::Write,
        }
    }
}

impl Mode {
    /// Whether two holds of this mode exclude each other (shared reads
    /// coexist; everything else conflicts).
    pub fn exclusive(self) -> bool {
        !matches!(self, Mode::Read)
    }
}

/// One owned trace event (see [`parking_lot::mc::ProbeEvent`] for the
/// pre/post semantics of each variant).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Pre: blocking acquisition of a lock.
    Acquire {
        /// Lock identity.
        lock: ObjectId,
        /// Acquisition mode.
        mode: Mode,
    },
    /// Post: the acquisition completed.
    Acquired {
        /// Lock identity.
        lock: ObjectId,
        /// Acquisition mode.
        mode: Mode,
    },
    /// Pre: non-blocking acquisition attempt.
    TryAcquire {
        /// Lock identity.
        lock: ObjectId,
        /// Acquisition mode.
        mode: Mode,
    },
    /// Post: outcome of the attempt.
    TryAcquired {
        /// Lock identity.
        lock: ObjectId,
        /// Acquisition mode.
        mode: Mode,
        /// Whether the lock was obtained.
        acquired: bool,
    },
    /// Pre: release of a held lock.
    Release {
        /// Lock identity.
        lock: ObjectId,
        /// Mode it was held in.
        mode: Mode,
    },
    /// Pre: channel enqueue.
    ChanSend {
        /// Channel identity.
        chan: ObjectId,
    },
    /// Post: enqueue outcome.
    ChanSent {
        /// Channel identity.
        chan: ObjectId,
        /// Whether the message was queued (false: no receivers left).
        delivered: bool,
    },
    /// Pre: blocking channel receive.
    ChanRecv {
        /// Channel identity.
        chan: ObjectId,
    },
    /// Pre: non-blocking channel receive.
    ChanTryRecv {
        /// Channel identity.
        chan: ObjectId,
    },
    /// Post: receive outcome.
    ChanReceived {
        /// Channel identity.
        chan: ObjectId,
        /// Whether a message was dequeued.
        got: bool,
    },
    /// Post: endpoint counts changed (clone/drop).
    ChanEndpoints {
        /// Channel identity.
        chan: ObjectId,
        /// Live senders.
        senders: usize,
        /// Live receivers.
        receivers: usize,
    },
    /// Pre: a logical shared-memory access annotation.
    Access {
        /// Logical location name.
        loc: String,
        /// Whether the access mutates the location.
        write: bool,
    },
    /// Pre: a voluntary scheduling point.
    Yield,
    /// Post: model code observed an invariant violation.
    Violation {
        /// Human-readable description.
        msg: String,
    },
}

impl EventKind {
    /// Converts a borrowed probe event into the owned form.
    pub fn from_probe(ev: &ProbeEvent<'_>) -> Self {
        match *ev {
            ProbeEvent::Acquire { lock, kind } => EventKind::Acquire { lock, mode: kind.into() },
            ProbeEvent::Acquired { lock, kind } => EventKind::Acquired { lock, mode: kind.into() },
            ProbeEvent::TryAcquire { lock, kind } => {
                EventKind::TryAcquire { lock, mode: kind.into() }
            }
            ProbeEvent::TryAcquired { lock, kind, acquired } => {
                EventKind::TryAcquired { lock, mode: kind.into(), acquired }
            }
            ProbeEvent::Release { lock, kind } => EventKind::Release { lock, mode: kind.into() },
            ProbeEvent::ChanSend { chan } => EventKind::ChanSend { chan },
            ProbeEvent::ChanSent { chan, delivered } => EventKind::ChanSent { chan, delivered },
            ProbeEvent::ChanRecv { chan } => EventKind::ChanRecv { chan },
            ProbeEvent::ChanTryRecv { chan } => EventKind::ChanTryRecv { chan },
            ProbeEvent::ChanReceived { chan, got } => EventKind::ChanReceived { chan, got },
            ProbeEvent::ChanEndpoints { chan, senders, receivers } => {
                EventKind::ChanEndpoints { chan, senders, receivers }
            }
            ProbeEvent::Access { loc, write } => {
                EventKind::Access { loc: loc.to_string(), write }
            }
            ProbeEvent::Yield => EventKind::Yield,
            ProbeEvent::Violation { msg } => EventKind::Violation { msg: msg.to_string() },
        }
    }

    /// Whether this is a *pre* event — a scheduling point the controlled
    /// scheduler gates on. Post events are outcome notifications.
    pub fn is_pre(&self) -> bool {
        matches!(
            self,
            EventKind::Acquire { .. }
                | EventKind::TryAcquire { .. }
                | EventKind::Release { .. }
                | EventKind::ChanSend { .. }
                | EventKind::ChanRecv { .. }
                | EventKind::ChanTryRecv { .. }
                | EventKind::Access { .. }
                | EventKind::Yield
        )
    }

    /// Whether two pending operations are *dependent*: executing them in
    /// the two possible orders can lead to observably different states.
    /// Independent pairs commute, so DPOR never branches on them.
    pub fn dependent(&self, other: &EventKind) -> bool {
        use EventKind as E;
        match (self, other) {
            // Lock operations on the same lock conflict unless both are
            // shared reads.
            (
                E::Acquire { lock: a, mode: ma } | E::TryAcquire { lock: a, mode: ma }
                | E::Release { lock: a, mode: ma },
                E::Acquire { lock: b, mode: mb } | E::TryAcquire { lock: b, mode: mb }
                | E::Release { lock: b, mode: mb },
            ) => a == b && (ma.exclusive() || mb.exclusive()),
            // Channel operations on the same channel: send/recv pairs and
            // recv/recv pairs conflict (who gets the message); send/send
            // conflicts on FIFO order.
            (
                E::ChanSend { chan: a } | E::ChanRecv { chan: a } | E::ChanTryRecv { chan: a },
                E::ChanSend { chan: b } | E::ChanRecv { chan: b } | E::ChanTryRecv { chan: b },
            ) => a == b,
            // Same logical location with at least one write.
            (E::Access { loc: a, write: wa }, E::Access { loc: b, write: wb }) => {
                a == b && (*wa || *wb)
            }
            _ => false,
        }
    }
}

/// One event attributed to a dense thread index.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Dense thread index (see [`Trace::thread_names`]).
    pub tid: usize,
    /// What happened.
    pub kind: EventKind,
}

/// A complete recorded execution.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable name per dense thread index.
    pub thread_names: Vec<String>,
    /// Events in global observation order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of distinct threads observed.
    pub fn threads(&self) -> usize {
        self.thread_names.len()
    }

    /// The trace with object ids renumbered densely in first-appearance
    /// order. Object ids are allocated process-globally, so two runs of
    /// the *same* schedule over fresh model state differ only by id —
    /// canonical form is what replay determinism compares.
    pub fn canonicalized(&self) -> Trace {
        use std::collections::HashMap;
        let mut map: HashMap<ObjectId, ObjectId> = HashMap::new();
        let mut renum = |id: ObjectId| -> ObjectId {
            let next = map.len() as ObjectId;
            *map.entry(id).or_insert(next)
        };
        let events = self
            .events
            .iter()
            .map(|e| {
                let kind = match &e.kind {
                    EventKind::Acquire { lock, mode } => {
                        EventKind::Acquire { lock: renum(*lock), mode: *mode }
                    }
                    EventKind::Acquired { lock, mode } => {
                        EventKind::Acquired { lock: renum(*lock), mode: *mode }
                    }
                    EventKind::TryAcquire { lock, mode } => {
                        EventKind::TryAcquire { lock: renum(*lock), mode: *mode }
                    }
                    EventKind::TryAcquired { lock, mode, acquired } => EventKind::TryAcquired {
                        lock: renum(*lock),
                        mode: *mode,
                        acquired: *acquired,
                    },
                    EventKind::Release { lock, mode } => {
                        EventKind::Release { lock: renum(*lock), mode: *mode }
                    }
                    EventKind::ChanSend { chan } => EventKind::ChanSend { chan: renum(*chan) },
                    EventKind::ChanSent { chan, delivered } => {
                        EventKind::ChanSent { chan: renum(*chan), delivered: *delivered }
                    }
                    EventKind::ChanRecv { chan } => EventKind::ChanRecv { chan: renum(*chan) },
                    EventKind::ChanTryRecv { chan } => {
                        EventKind::ChanTryRecv { chan: renum(*chan) }
                    }
                    EventKind::ChanReceived { chan, got } => {
                        EventKind::ChanReceived { chan: renum(*chan), got: *got }
                    }
                    EventKind::ChanEndpoints { chan, senders, receivers } => {
                        EventKind::ChanEndpoints {
                            chan: renum(*chan),
                            senders: *senders,
                            receivers: *receivers,
                        }
                    }
                    other => other.clone(),
                };
                TraceEvent { tid: e.tid, kind }
            })
            .collect();
        Trace { thread_names: self.thread_names.clone(), events }
    }

    /// Messages of all recorded violations, in order.
    pub fn violations(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Violation { msg } => Some(msg.as_str()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependence_is_object_sensitive() {
        let a1 = EventKind::Acquire { lock: 1, mode: Mode::Mutex };
        let a2 = EventKind::Acquire { lock: 2, mode: Mode::Mutex };
        assert!(a1.dependent(&a1.clone()));
        assert!(!a1.dependent(&a2));
        let r1 = EventKind::Acquire { lock: 1, mode: Mode::Read };
        assert!(!r1.dependent(&r1.clone()), "shared reads commute");
        let w = EventKind::Access { loc: "x".into(), write: true };
        let r = EventKind::Access { loc: "x".into(), write: false };
        let r_other = EventKind::Access { loc: "y".into(), write: false };
        assert!(w.dependent(&r));
        assert!(!r.dependent(&r.clone()), "read/read commutes");
        assert!(!w.dependent(&r_other));
    }

    #[test]
    fn trace_round_trips_through_json() {
        let trace = Trace {
            thread_names: vec!["t0".into(), "t1".into()],
            events: vec![
                TraceEvent { tid: 0, kind: EventKind::Acquire { lock: 7, mode: Mode::Mutex } },
                TraceEvent { tid: 1, kind: EventKind::Access { loc: "v".into(), write: true } },
                TraceEvent { tid: 0, kind: EventKind::Violation { msg: "boom".into() } },
            ],
        };
        let json = serde_json::to_string(&trace).expect("serialize");
        let back: Trace = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.events, trace.events);
        assert_eq!(back.violations(), vec!["boom"]);
    }
}
