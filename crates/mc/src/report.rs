//! JSON artifact shapes for the `hc-mc` CLI (the CI `model-check` job
//! uploads these).

use serde::{Deserialize, Serialize};

use crate::crosscheck::CrossCheckReport;
use crate::explore::Exploration;

/// One planted-defect model's self-check outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SelfCheckResult {
    /// Model name.
    pub model: String,
    /// The explorer found a violating schedule.
    pub caught_by_explorer: bool,
    /// The happens-before engine flagged the failing trace (race or
    /// lock-order cycle).
    pub caught_by_hb: bool,
    /// The counter-example schedule.
    pub schedule: Vec<usize>,
    /// Replaying the schedule reproduced the identical violations twice.
    pub replay_deterministic: bool,
    /// Schedules explored before the counter-example surfaced.
    pub schedules_to_find: usize,
}

impl SelfCheckResult {
    /// Whether this planted defect was fully caught.
    pub fn passed(&self) -> bool {
        self.caught_by_explorer && self.caught_by_hb && self.replay_deterministic
    }
}

/// The `hc-mc self-check` artifact: the checker proving it still
/// catches every planted defect.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SelfCheckReport {
    /// Always `"hc-mc"`.
    pub tool: String,
    /// Artifact schema version.
    pub schema_version: u32,
    /// All planted defects caught by both engines, deterministically.
    pub passed: bool,
    /// Per-model outcomes.
    pub results: Vec<SelfCheckResult>,
}

/// The `hc-mc sweep` artifact: bounded-exhaustive exploration of every
/// clean registered model (E22).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepReport {
    /// Always `"hc-mc"`.
    pub tool: String,
    /// Artifact schema version.
    pub schema_version: u32,
    /// Every model exhausted its bounded state space with zero
    /// violations and zero races.
    pub clean: bool,
    /// Per-model explorations.
    pub models: Vec<Exploration>,
}

impl SweepReport {
    /// Builds the sweep artifact, computing the `clean` rollup.
    pub fn new(models: Vec<Exploration>) -> Self {
        SweepReport {
            tool: "hc-mc".to_string(),
            schema_version: 1,
            clean: models.iter().all(|m| m.is_clean() && m.exhausted),
            models,
        }
    }
}

/// The combined artifact the CI job uploads (absent sections were not
/// run in that invocation).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct McArtifact {
    /// Always `"hc-mc"`.
    pub tool: String,
    /// Artifact schema version.
    pub schema_version: u32,
    /// Self-check section.
    pub self_check: Option<SelfCheckReport>,
    /// Sweep section.
    pub sweep: Option<SweepReport>,
    /// Cross-check section.
    pub cross_check: Option<CrossCheckReport>,
}

impl McArtifact {
    /// An artifact with every section empty.
    pub fn empty() -> Self {
        McArtifact {
            tool: "hc-mc".to_string(),
            schema_version: 1,
            self_check: None,
            sweep: None,
            cross_check: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_rollup_requires_exhaustion_and_cleanliness() {
        let clean = Exploration {
            model: "m".into(),
            strategy: crate::explore::Strategy::Dpor,
            preemption_bound: 2,
            schedules: 3,
            exhausted: true,
            elapsed_ms: 1,
            counter_examples: Vec::new(),
            races: Vec::new(),
            cycles: Vec::new(),
        };
        assert!(SweepReport::new(vec![clean.clone()]).clean);
        let mut truncated = clean;
        truncated.exhausted = false;
        assert!(
            !SweepReport::new(vec![truncated]).clean,
            "a budget-truncated sweep must not report clean"
        );
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let artifact = McArtifact::empty();
        let json = serde_json::to_string(&artifact).expect("serialize");
        let back: McArtifact = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.tool, "hc-mc");
        assert!(back.sweep.is_none());
    }
}
