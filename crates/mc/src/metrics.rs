//! `mc.*` telemetry: checker activity mirrored into the platform
//! registry, so model-checking runs show up in the same snapshot
//! pipeline as every other subsystem (see OBSERVABILITY.md).

use hc_telemetry::{Counter, Registry};

use crate::event::Trace;
use crate::explore::Exploration;
use crate::hb::HbReport;

/// Registry handles for the checker (`mc.*`).
#[derive(Clone, Debug)]
pub struct McInstruments {
    schedules: Counter,
    races: Counter,
    violations: Counter,
    deadlocks: Counter,
    events: Counter,
}

impl McInstruments {
    /// Binds the `mc.*` counters in `registry`.
    pub fn new(registry: &Registry) -> Self {
        McInstruments {
            schedules: registry.counter("mc.schedules_explored"),
            races: registry.counter("mc.races_found"),
            violations: registry.counter("mc.violations"),
            deadlocks: registry.counter("mc.deadlocks"),
            events: registry.counter("mc.events_recorded"),
        }
    }

    /// Accounts one finished exploration.
    pub fn observe_exploration(&self, exploration: &Exploration) {
        self.schedules.add(exploration.schedules as u64);
        self.races.add(exploration.races.len() as u64);
        let (mut violations, mut deadlocks) = (0u64, 0u64);
        for ce in &exploration.counter_examples {
            violations += ce.violations.len() as u64;
            deadlocks += u64::from(ce.deadlock);
        }
        self.violations.add(violations);
        self.deadlocks.add(deadlocks);
    }

    /// Accounts one recorded trace and its happens-before analysis.
    pub fn observe_trace(&self, trace: &Trace, report: &HbReport) {
        self.events.add(trace.events.len() as u64);
        self.races.add(report.races.len() as u64);
        self.violations.add(trace.violations().len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent};

    #[test]
    fn counters_track_trace_and_exploration_activity() {
        let registry = Registry::new();
        let inst = McInstruments::new(&registry);
        let trace = Trace {
            thread_names: vec!["t0".into()],
            events: vec![
                TraceEvent { tid: 0, kind: EventKind::Yield },
                TraceEvent { tid: 0, kind: EventKind::Violation { msg: "boom".into() } },
            ],
        };
        inst.observe_trace(&trace, &HbReport::default());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("mc.events_recorded"), Some(2));
        assert_eq!(snap.counter("mc.violations"), Some(1));
        assert_eq!(snap.counter("mc.races_found"), Some(0));
    }
}
