//! The controlled cooperative scheduler: real threads, one runner at a
//! time, every interleaving decision owned by the coordinator.
//!
//! Worker threads run real model code against the instrumented shims.
//! Each *pre* event (see [`crate::event::EventKind::is_pre`]) parks the
//! calling thread until the coordinator both *schedules* it (its turn in
//! the interleaving under exploration) and the operation is *enabled*
//! (its real execution cannot block: the lock is free, the channel
//! non-empty). Because only enabled operations are ever granted and only
//! one thread runs between grants, the underlying `std::sync` primitives
//! never contend — the scheduler, not the OS, owns the interleaving,
//! which is what makes a schedule a replayable artifact.
//!
//! When no pending operation is enabled the model has deadlocked; the
//! coordinator records the violation and tears the execution down by
//! unwinding every parked worker with a [`CancelToken`] panic (guards
//! drop, real locks release, threads join — no leaks).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::ThreadId;

use parking_lot::mc::{self, ObjectId, Probe, ProbeEvent};
use serde::{Deserialize, Serialize};

use crate::event::{EventKind, Mode, Trace, TraceEvent};
use crate::session::CancelToken;

/// Safety net against runaway models: a single execution may take at
/// most this many scheduling decisions.
const MAX_STEPS: usize = 20_000;

/// Who currently holds a lock, in the scheduler's book-keeping.
#[derive(Debug, Default)]
struct LockState {
    writer: Option<usize>,
    readers: Vec<usize>,
}

impl LockState {
    fn free_for(&self, mode: Mode, tid: usize) -> bool {
        // A thread is never granted an acquisition that would self-block
        // (re-entrant locking deadlocks std primitives), so holding it
        // yourself also counts as "not free".
        let _ = tid;
        match mode {
            Mode::Read => self.writer.is_none(),
            Mode::Mutex | Mode::Write => self.writer.is_none() && self.readers.is_empty(),
        }
    }
}

/// Channel occupancy and endpoint counts, as far as the probe has seen.
#[derive(Debug)]
struct ChanState {
    len: usize,
    senders: usize,
    receivers: usize,
}

impl Default for ChanState {
    fn default() -> Self {
        // Channels are born with one sender and one receiver; the probe
        // only hears about subsequent clones/drops.
        ChanState { len: 0, senders: 1, receivers: 1 }
    }
}

/// One scheduling decision, with everything DPOR needs to branch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StepInfo {
    /// Thread granted at this step.
    pub chosen: usize,
    /// The operation it was granted.
    pub op: EventKind,
    /// Every thread that was enabled at this step, with its pending op.
    pub enabled: Vec<(usize, EventKind)>,
    /// Whether this grant preempted a still-enabled previous runner.
    pub preemption: bool,
}

/// Everything one controlled execution produced.
#[derive(Clone, Debug, Default)]
pub struct RunOutcome {
    /// The observed event trace.
    pub trace: Trace,
    /// The schedule actually taken (thread index per decision).
    pub schedule: Vec<usize>,
    /// Per-decision metadata for exploration.
    pub steps: Vec<StepInfo>,
    /// Invariant violations, panics, and deadlocks, as messages.
    pub violations: Vec<String>,
    /// Whether the execution deadlocked.
    pub deadlock: bool,
    /// Lock identities the deadlocked threads were blocked on.
    pub deadlock_locks: Vec<ObjectId>,
    /// A prescribed schedule step named a thread that was not enabled
    /// (stale prefix — the caller should discard this run).
    pub infeasible: bool,
    /// Preemption count of the taken schedule.
    pub preemptions: usize,
}

struct State {
    tids: HashMap<ThreadId, usize>,
    names: Vec<String>,
    registered: usize,
    expected: usize,
    pending: Vec<Option<EventKind>>,
    granted: Vec<bool>,
    finished: Vec<bool>,
    cancelled: bool,
    locks: HashMap<ObjectId, LockState>,
    chans: HashMap<ObjectId, ChanState>,
    trace: Vec<TraceEvent>,
    violations: Vec<String>,
}

impl State {
    /// Whether `tid`'s pending operation could run right now without
    /// blocking on a real primitive.
    fn enabled(&self, tid: usize) -> bool {
        let Some(Some(op)) = self.pending.get(tid) else {
            return false;
        };
        match op {
            EventKind::Acquire { lock, mode } => self
                .locks
                .get(lock)
                .map(|l| l.free_for(*mode, tid))
                .unwrap_or(true),
            EventKind::ChanRecv { chan } => {
                let st = self.chans.get(chan);
                st.map(|c| c.len > 0 || c.senders == 0).unwrap_or(false)
            }
            _ => true,
        }
    }

    /// Applies the state effect of an outcome (post) event.
    fn apply_post(&mut self, tid: usize, kind: &EventKind) {
        match kind {
            EventKind::Acquired { lock, mode }
            | EventKind::TryAcquired { lock, mode, acquired: true } => {
                let entry = self.locks.entry(*lock).or_default();
                match mode {
                    Mode::Read => entry.readers.push(tid),
                    Mode::Mutex | Mode::Write => entry.writer = Some(tid),
                }
            }
            EventKind::ChanSent { chan, delivered: true } => {
                self.chans.entry(*chan).or_default().len += 1;
            }
            EventKind::ChanReceived { chan, got: true } => {
                let entry = self.chans.entry(*chan).or_default();
                entry.len = entry.len.saturating_sub(1);
            }
            EventKind::ChanEndpoints { chan, senders, receivers } => {
                let entry = self.chans.entry(*chan).or_default();
                entry.senders = *senders;
                entry.receivers = *receivers;
            }
            EventKind::Violation { msg } => {
                self.violations.push(msg.clone());
            }
            _ => {}
        }
    }

    /// Applies the state effect of a granted pre event (only releases
    /// change object state before their real operation completes).
    fn apply_pre(&mut self, tid: usize, kind: &EventKind) {
        if let EventKind::Release { lock, mode } = kind {
            let entry = self.locks.entry(*lock).or_default();
            match mode {
                Mode::Read => entry.readers.retain(|&r| r != tid),
                Mode::Mutex | Mode::Write => {
                    if entry.writer == Some(tid) {
                        entry.writer = None;
                    }
                }
            }
        }
    }

    /// A thread is settled when it is finished, or parked at a pending
    /// operation it has not yet been granted.
    fn all_settled(&self) -> bool {
        self.registered == self.expected
            && (0..self.expected).all(|t| {
                self.finished.get(t).copied().unwrap_or(false)
                    || (self.pending.get(t).is_some_and(Option::is_some)
                        && !self.granted.get(t).copied().unwrap_or(false))
            })
    }
}

/// The coordinator + probe for one controlled execution.
pub struct Controller {
    state: Mutex<State>,
    cv: Condvar,
}

impl Controller {
    fn new(expected: usize) -> Self {
        Controller {
            state: Mutex::new(State {
                tids: HashMap::new(),
                names: Vec::new(),
                registered: 0,
                expected,
                pending: vec![None; expected],
                granted: vec![false; expected],
                finished: vec![false; expected],
                cancelled: false,
                locks: HashMap::new(),
                chans: HashMap::new(),
                trace: Vec::new(),
                violations: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Worker side: binds the calling thread to dense index `tid` and
    /// parks at the start-of-thread scheduling point.
    fn register_and_park(&self, tid: usize, name: String) {
        // The name-table fill below is O(threads) under the state lock —
        // registration happens once per worker, before any scheduling.
        // hc-lint: allow(lock-held-long)
        let mut st = self.lock();
        st.tids.insert(std::thread::current().id(), tid);
        while st.names.len() <= tid {
            st.names.push(String::new());
        }
        st.names[tid] = name; // hc-lint: allow(panic-index)
        st.registered += 1;
        st.pending[tid] = Some(EventKind::Yield); // hc-lint: allow(panic-index)
        self.cv.notify_all();
        self.park_for_grant(st, tid);
    }

    /// Parks until granted (applying the granted op) or cancelled
    /// (unwinding the worker).
    fn park_for_grant(&self, mut st: MutexGuard<'_, State>, tid: usize) {
        while !st.granted[tid] && !st.cancelled { // hc-lint: allow(panic-index)
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if st.cancelled && !st.granted[tid] { // hc-lint: allow(panic-index)
            drop(st);
            std::panic::panic_any(CancelToken);
        }
        st.granted[tid] = false; // hc-lint: allow(panic-index)
        if let Some(op) = st.pending[tid].take() { // hc-lint: allow(panic-index)
            st.apply_pre(tid, &op);
            st.trace.push(TraceEvent { tid, kind: op });
        }
        self.cv.notify_all();
    }

    /// Worker side: marks the thread finished (with an optional panic
    /// message recorded as a violation).
    fn finish(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.finished[tid] = true; // hc-lint: allow(panic-index)
        st.pending[tid] = None; // hc-lint: allow(panic-index)
        if let Some(msg) = panic_msg {
            st.violations.push(format!("thread {tid} panicked: {msg}"));
        }
        self.cv.notify_all();
    }
}

impl Probe for Controller {
    fn event(&self, ev: ProbeEvent<'_>) {
        let kind = EventKind::from_probe(&ev);
        let id = std::thread::current().id();
        let mut st = self.lock();
        let Some(&tid) = st.tids.get(&id) else {
            // Unregistered thread (the coordinator during model setup or
            // finale, or an unrelated test): keep object state accurate
            // and capture violations, but never park or trace.
            if st.cancelled {
                return;
            }
            st.apply_post(usize::MAX, &kind);
            st.apply_pre(usize::MAX, &kind);
            return;
        };
        if st.cancelled {
            return; // teardown unwind in progress — let everything through
        }
        if kind.is_pre() {
            if std::thread::panicking() {
                // Unwinding through a real panic: releases must apply
                // immediately (no coordinator turn is coming).
                st.apply_pre(tid, &kind);
                st.trace.push(TraceEvent { tid, kind });
                return;
            }
            st.pending[tid] = Some(kind); // hc-lint: allow(panic-index)
            self.cv.notify_all();
            self.park_for_grant(st, tid);
        } else {
            st.apply_post(tid, &kind);
            st.trace.push(TraceEvent { tid, kind });
        }
    }
}

/// Runs `bodies` to completion under a freshly installed controller,
/// following `prefix` for the first decisions and a deterministic
/// default afterwards (keep the current thread while enabled, else the
/// lowest enabled index). `finale`, when present, runs on the
/// coordinator after all workers join — its `mc::check` violations are
/// captured like any other.
///
/// The caller must hold the checker session (see [`crate::session`]).
pub fn run(
    bodies: Vec<Box<dyn FnOnce() + Send>>,
    finale: Option<Box<dyn FnOnce() + '_>>,
    prefix: &[usize],
) -> RunOutcome {
    let n = bodies.len();
    let ctrl = Arc::new(Controller::new(n));
    mc::set_probe(ctrl.clone());

    let handles: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| {
            let ctrl = Arc::clone(&ctrl);
            let name = format!("mc-{i}");
            std::thread::Builder::new()
                .name(name.clone())
                .spawn(move || {
                    ctrl.register_and_park(i, name);
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
                    let panic_msg = match result {
                        Ok(()) => None,
                        Err(payload) => {
                            if payload.downcast_ref::<CancelToken>().is_some() {
                                None // routine teardown
                            } else if let Some(s) = payload.downcast_ref::<&str>() {
                                Some((*s).to_string())
                            } else if let Some(s) = payload.downcast_ref::<String>() {
                                Some(s.clone())
                            } else {
                                Some("non-string panic payload".to_string())
                            }
                        }
                    };
                    ctrl.finish(i, panic_msg);
                })
                .expect("spawn model thread") // hc-lint: allow(panic-expect)
        })
        .collect();

    let mut outcome = coordinate(&ctrl, prefix);

    for h in handles {
        let _ = h.join();
    }
    if !outcome.deadlock && !outcome.infeasible {
        if let Some(f) = finale {
            f(); // coordinator is unregistered: violations captured, no parking
        }
    }
    mc::clear_probe();

    let mut st = ctrl.lock();
    outcome.trace = Trace {
        thread_names: std::mem::take(&mut st.names),
        events: std::mem::take(&mut st.trace),
    };
    outcome.violations = std::mem::take(&mut st.violations);
    outcome
}

/// The coordinator loop: waits for quiescence, picks, grants, repeats.
fn coordinate(ctrl: &Controller, prefix: &[usize]) -> RunOutcome {
    let mut outcome = RunOutcome::default();
    let mut last: Option<usize> = None;
    // The coordinator owns the state for the whole run by design; the
    // condvar wait releases the lock at every quiescence point.
    // hc-lint: allow(lock-held-long)
    let mut st = ctrl.lock();
    loop {
        while !st.all_settled() {
            st = ctrl
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let live: Vec<usize> = (0..st.expected)
            .filter(|&t| !st.finished[t]) // hc-lint: allow(panic-index)
            .collect();
        if live.is_empty() {
            break;
        }
        let enabled: Vec<(usize, EventKind)> = live
            .iter()
            .copied()
            .filter(|&t| st.enabled(t))
            .filter_map(|t| st.pending[t].clone().map(|op| (t, op))) // hc-lint: allow(panic-index)
            .collect();
        if enabled.is_empty() {
            // Deadlock: name the locks the blocked threads want.
            let mut wanted: Vec<ObjectId> = Vec::new();
            for &t in &live {
                if let Some(EventKind::Acquire { lock, .. }) = st.pending[t] { // hc-lint: allow(panic-index)
                    wanted.push(lock);
                }
            }
            wanted.sort_unstable();
            wanted.dedup();
            // Raw object ids are allocation-order dependent; keep the
            // message replay-stable and carry the ids in `deadlock_locks`.
            st.violations.push(format!(
                "deadlock: threads {live:?} blocked waiting on {} lock(s)",
                wanted.len()
            ));
            outcome.deadlock = true;
            outcome.deadlock_locks = wanted;
            st.cancelled = true;
            ctrl.cv.notify_all();
            break;
        }
        if outcome.schedule.len() >= MAX_STEPS {
            st.violations
                .push(format!("step limit exceeded ({MAX_STEPS} decisions)"));
            st.cancelled = true;
            ctrl.cv.notify_all();
            break;
        }

        let step_index = outcome.schedule.len();
        let chosen = if let Some(&want) = prefix.get(step_index) {
            if enabled.iter().any(|&(t, _)| t == want) {
                want
            } else {
                outcome.infeasible = true;
                st.cancelled = true;
                ctrl.cv.notify_all();
                break;
            }
        } else if last.is_some_and(|p| enabled.iter().any(|&(t, _)| t == p)) {
            last.unwrap_or(0)
        } else {
            enabled.first().map(|&(t, _)| t).unwrap_or(0)
        };

        let preemption = last.is_some_and(|p| {
            p != chosen && !st.finished[p] && enabled.iter().any(|&(t, _)| t == p) // hc-lint: allow(panic-index)
        });
        if preemption {
            outcome.preemptions += 1;
        }
        let op = st.pending[chosen].clone().unwrap_or(EventKind::Yield); // hc-lint: allow(panic-index)
        outcome.steps.push(StepInfo {
            chosen,
            op,
            enabled: enabled.clone(),
            preemption,
        });
        outcome.schedule.push(chosen);
        last = Some(chosen);

        st.granted[chosen] = true; // hc-lint: allow(panic-index)
        ctrl.cv.notify_all();
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session;

    fn counter_bodies(
        m: Arc<parking_lot::Mutex<u32>>,
    ) -> Vec<Box<dyn FnOnce() + Send>> {
        (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                Box::new(move || {
                    *m.lock() += 1;
                }) as Box<dyn FnOnce() + Send>
            })
            .collect()
    }

    #[test]
    fn two_increments_complete_under_default_schedule() {
        let _session = session::acquire();
        let m = Arc::new(parking_lot::Mutex::new(0u32));
        let outcome = run(counter_bodies(Arc::clone(&m)), None, &[]);
        assert!(!outcome.deadlock, "{outcome:?}");
        assert!(outcome.violations.is_empty(), "{outcome:?}");
        assert_eq!(*m.lock(), 2);
        assert!(outcome.schedule.len() >= 4, "{:?}", outcome.schedule);
    }

    #[test]
    fn prescribed_schedule_is_followed_and_deterministic() {
        let _session = session::acquire();
        let m = Arc::new(parking_lot::Mutex::new(0u32));
        let first = run(counter_bodies(Arc::clone(&m)), None, &[]);
        let m2 = Arc::new(parking_lot::Mutex::new(0u32));
        let second = run(counter_bodies(m2), None, &first.schedule);
        assert!(!second.infeasible);
        assert_eq!(second.schedule, first.schedule);
        assert_eq!(
            second.trace.canonicalized().events,
            first.trace.canonicalized().events,
            "replay reproduces the trace modulo object-id allocation"
        );
    }

    #[test]
    fn abba_deadlock_is_driven_and_torn_down() {
        let _session = session::acquire();
        let a = Arc::new(parking_lot::Mutex::new(0u32));
        let b = Arc::new(parking_lot::Mutex::new(0u32));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let bodies: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(move || {
                let _ga = a1.lock();
                let _gb = b1.lock();
            }),
            Box::new(move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            }),
        ];
        // Schedule: t0 start, t0 acquire a, t1 start, t1 acquire b — now
        // t0 wants b (held) and t1 wants a (held): deadlock.
        let outcome = run(bodies, None, &[0, 0, 1, 1]);
        assert!(outcome.deadlock, "{outcome:?}");
        assert_eq!(outcome.deadlock_locks.len(), 2);
        assert!(outcome.violations.iter().any(|v| v.contains("deadlock")));
    }

    #[test]
    fn finale_violations_are_captured() {
        let _session = session::acquire();
        let bodies: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(|| {})];
        let outcome = run(
            bodies,
            Some(Box::new(|| {
                hc_common::conc::mc::check(false, "finale invariant failed");
            })),
            &[],
        );
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.contains("finale invariant failed")), "{outcome:?}");
    }
}
