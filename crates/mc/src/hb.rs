//! Happens-before analysis over recorded traces: a FastTrack-style
//! vector-clock race detector plus an observed lock-order cycle scan.
//!
//! The detector replays a [`Trace`] maintaining, per thread, a vector
//! clock `C_t`; per lock, a release clock `L_m` joined into an acquiring
//! thread's clock; and per channel, a FIFO queue of sender clocks joined
//! at the matching receive (our channel shim is FIFO, so message
//! identity is positional). Logical locations annotated via
//! `hc_common::conc::mc` carry FastTrack epochs: a write is one
//! `(thread, clock)` pair, reads a per-thread vector. Two accesses to
//! the same location race when neither's epoch is contained in the
//! other thread's clock at access time and at least one is a write.
//!
//! The lock-order scan rebuilds each thread's held-set from
//! acquire/release events and accumulates a directed `first → second`
//! edge per nested acquisition; any cycle in that graph is an observed
//! lock-order inversion (ABBA and longer).
//!
//! Soundness notes (see LINTS.md): the detector sees *logical* accesses
//! only — unannotated shared state is invisible; rwlock read-side
//! releases still join the lock clock, so read-read orderings add
//! happens-before edges a weaker detector would not (possible false
//! negatives, never false positives on annotated state).

use std::collections::{HashMap, VecDeque};

use parking_lot::mc::ObjectId;
use serde::{Deserialize, Serialize};

use crate::event::{EventKind, Trace};

/// A vector clock over dense thread indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// The component for `tid` (0 when never ticked).
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Sets component `tid` to `value`, growing as needed.
    pub fn set(&mut self, tid: usize, value: u32) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = value; // hc-lint: allow(panic-index)
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// One racing access site.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AccessSite {
    /// Thread that performed the access.
    pub tid: usize,
    /// Index into the trace's event vector.
    pub event: usize,
    /// Whether the access was a write.
    pub write: bool,
}

/// An unsynchronized access pair on one logical location.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Race {
    /// The logical location name.
    pub loc: String,
    /// The earlier access (trace order).
    pub first: AccessSite,
    /// The later access that raced with it.
    pub second: AccessSite,
}

/// An observed lock-order cycle (`locks[i]` was held while acquiring
/// `locks[(i + 1) % n]`, for every `i`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LockCycle {
    /// Lock identities around the cycle.
    pub locks: Vec<ObjectId>,
    /// One witness trace-event index per edge.
    pub witnesses: Vec<usize>,
}

/// Everything the happens-before pass found in one trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct HbReport {
    /// Unsynchronized access pairs.
    pub races: Vec<Race>,
    /// Observed lock-order cycles.
    pub cycles: Vec<LockCycle>,
}

impl HbReport {
    /// Whether the trace was clean.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.cycles.is_empty()
    }
}

/// Per-location FastTrack state.
#[derive(Default)]
struct LocState {
    /// Last write epoch: (tid, clock, event index).
    write: Option<(usize, u32, usize)>,
    /// Per-thread last read: tid → (clock, event index).
    reads: HashMap<usize, (u32, usize)>,
}

/// Runs the full happens-before pass over `trace`.
pub fn analyze(trace: &Trace) -> HbReport {
    let mut report = HbReport::default();
    let threads = trace.threads().max(
        trace.events.iter().map(|e| e.tid + 1).max().unwrap_or(0),
    );

    // Each thread starts at clock 1 so fresh epochs are never confused
    // with the all-zero "empty" clock.
    let mut clocks: Vec<VectorClock> = (0..threads)
        .map(|t| {
            let mut vc = VectorClock::default();
            vc.set(t, 1);
            vc
        })
        .collect();
    let mut lock_clocks: HashMap<ObjectId, VectorClock> = HashMap::new();
    let mut chan_queues: HashMap<ObjectId, VecDeque<VectorClock>> = HashMap::new();
    let mut locations: HashMap<String, LocState> = HashMap::new();

    // Lock-order state: per-thread held locks with the acquiring event,
    // and the global first→second edge map.
    let mut held: Vec<Vec<(ObjectId, usize)>> = vec![Vec::new(); threads];
    let mut edges: HashMap<(ObjectId, ObjectId), usize> = HashMap::new();

    for (idx, ev) in trace.events.iter().enumerate() {
        let t = ev.tid;
        if t >= clocks.len() {
            continue; // malformed trace; skip rather than panic
        }
        match &ev.kind {
            EventKind::Acquired { lock, .. }
            | EventKind::TryAcquired { lock, acquired: true, .. } => {
                if let Some(lc) = lock_clocks.get(lock) {
                    clocks[t].join(lc); // hc-lint: allow(panic-index)
                }
                for &(h, _) in &held[t] { // hc-lint: allow(panic-index)
                    if h != *lock {
                        edges.entry((h, *lock)).or_insert(idx);
                    }
                }
                held[t].push((*lock, idx)); // hc-lint: allow(panic-index)
            }
            EventKind::Release { lock, .. } => {
                let ct = clocks[t].clone(); // hc-lint: allow(panic-index)
                lock_clocks.entry(*lock).or_default().join(&ct);
                let tick = clocks[t].get(t) + 1; // hc-lint: allow(panic-index)
                clocks[t].set(t, tick); // hc-lint: allow(panic-index)
                if let Some(pos) = held[t].iter().rposition(|&(h, _)| h == *lock) { // hc-lint: allow(panic-index)
                    held[t].remove(pos); // hc-lint: allow(panic-index)
                }
            }
            EventKind::ChanSent { chan, delivered: true } => {
                let ct = clocks[t].clone(); // hc-lint: allow(panic-index)
                chan_queues.entry(*chan).or_default().push_back(ct);
                let tick = clocks[t].get(t) + 1; // hc-lint: allow(panic-index)
                clocks[t].set(t, tick); // hc-lint: allow(panic-index)
            }
            EventKind::ChanReceived { chan, got: true } => {
                if let Some(vc) = chan_queues.entry(*chan).or_default().pop_front() {
                    clocks[t].join(&vc); // hc-lint: allow(panic-index)
                }
            }
            EventKind::Access { loc, write } => {
                let ct = &clocks[t]; // hc-lint: allow(panic-index)
                let state = locations.entry(loc.clone()).or_default();
                // A prior write not contained in our clock races with any
                // access; prior reads race only with a write.
                if let Some((wt, wc, wi)) = state.write {
                    if wt != t && ct.get(wt) < wc {
                        report.races.push(Race {
                            loc: loc.clone(),
                            first: AccessSite { tid: wt, event: wi, write: true },
                            second: AccessSite { tid: t, event: idx, write: *write },
                        });
                    }
                }
                if *write {
                    for (&rt, &(rc, ri)) in &state.reads {
                        if rt != t && ct.get(rt) < rc {
                            report.races.push(Race {
                                loc: loc.clone(),
                                first: AccessSite { tid: rt, event: ri, write: false },
                                second: AccessSite { tid: t, event: idx, write: true },
                            });
                        }
                    }
                    state.write = Some((t, ct.get(t), idx));
                    state.reads.clear();
                } else {
                    state.reads.insert(t, (ct.get(t), idx));
                }
            }
            _ => {}
        }
    }

    report.cycles = find_cycles(&edges);
    // Deterministic output independent of hash iteration order.
    report.races.sort_by(|a, b| {
        (a.first.event, a.second.event).cmp(&(b.first.event, b.second.event))
    });
    report.races.dedup_by(|a, b| {
        a.loc == b.loc && a.first.event == b.first.event && a.second.event == b.second.event
    });
    report
}

/// Finds elementary cycles in the lock-order edge graph via DFS with
/// three-color marking; reports each cycle once, rotated to start at its
/// smallest lock id.
fn find_cycles(edges: &HashMap<(ObjectId, ObjectId), usize>) -> Vec<LockCycle> {
    let mut adj: HashMap<ObjectId, Vec<ObjectId>> = HashMap::new();
    for &(a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    for succs in adj.values_mut() {
        succs.sort_unstable();
    }
    let mut nodes: Vec<ObjectId> = adj.keys().copied().collect();
    nodes.sort_unstable();

    let mut done: HashMap<ObjectId, bool> = HashMap::new(); // true = fully explored
    let mut found: Vec<Vec<ObjectId>> = Vec::new();
    let mut seen_keys: std::collections::HashSet<Vec<ObjectId>> = std::collections::HashSet::new();

    for &start in &nodes {
        if done.contains_key(&start) {
            continue;
        }
        // Iterative DFS tracking the current path.
        let mut path: Vec<ObjectId> = Vec::new();
        let mut stack: Vec<(ObjectId, usize)> = vec![(start, 0)];
        while let Some(&(node, next)) = stack.last() {
            if next == 0 {
                path.push(node);
            }
            let succs = adj.get(&node).map(Vec::as_slice).unwrap_or_default();
            if let Some(&succ) = succs.get(next) {
                if let Some(top) = stack.last_mut() {
                    top.1 += 1;
                }
                if let Some(pos) = path.iter().position(|&n| n == succ) {
                    let cycle: Vec<ObjectId> = path[pos..].to_vec(); // hc-lint: allow(panic-index)
                    let key = canonical(&cycle);
                    if seen_keys.insert(key.clone()) {
                        found.push(key);
                    }
                } else if !done.get(&succ).copied().unwrap_or(false) {
                    stack.push((succ, 0));
                }
            } else {
                done.insert(node, true);
                path.pop();
                stack.pop();
            }
        }
    }

    found
        .into_iter()
        .map(|locks| {
            let witnesses = locks
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    let b = locks[(i + 1) % locks.len()]; // hc-lint: allow(panic-index)
                    edges.get(&(a, b)).copied().unwrap_or(0)
                })
                .collect();
            LockCycle { locks, witnesses }
        })
        .collect()
}

/// Rotates `cycle` to start at its smallest element.
fn canonical(cycle: &[ObjectId]) -> Vec<ObjectId> {
    let Some(min_pos) = cycle
        .iter()
        .enumerate()
        .min_by_key(|&(_, &v)| v)
        .map(|(i, _)| i)
    else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min_pos..]); // hc-lint: allow(panic-index)
    out.extend_from_slice(&cycle[..min_pos]); // hc-lint: allow(panic-index)
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Mode, TraceEvent};

    fn ev(tid: usize, kind: EventKind) -> TraceEvent {
        TraceEvent { tid, kind }
    }

    fn acq(tid: usize, lock: ObjectId) -> TraceEvent {
        ev(tid, EventKind::Acquired { lock, mode: Mode::Mutex })
    }

    fn rel(tid: usize, lock: ObjectId) -> TraceEvent {
        ev(tid, EventKind::Release { lock, mode: Mode::Mutex })
    }

    fn acc(tid: usize, loc: &str, write: bool) -> TraceEvent {
        ev(tid, EventKind::Access { loc: loc.into(), write })
    }

    fn trace(events: Vec<TraceEvent>) -> Trace {
        let threads = events.iter().map(|e| e.tid + 1).max().unwrap_or(0);
        Trace {
            thread_names: (0..threads).map(|t| format!("t{t}")).collect(),
            events,
        }
    }

    #[test]
    fn write_write_race_without_synchronization() {
        let t = trace(vec![acc(0, "x", true), acc(1, "x", true)]);
        let r = analyze(&t);
        assert_eq!(r.races.len(), 1, "{r:?}");
        assert_eq!(r.races[0].loc, "x");
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let t = trace(vec![
            acq(0, 1),
            acc(0, "x", true),
            rel(0, 1),
            acq(1, 1),
            acc(1, "x", true),
            rel(1, 1),
        ]);
        let r = analyze(&t);
        assert!(r.races.is_empty(), "{r:?}");
    }

    #[test]
    fn access_between_critical_sections_races() {
        // The lost-update shape: each thread reads under the lock, then
        // touches the logical location between its two critical sections.
        let t = trace(vec![
            acq(0, 1),
            rel(0, 1),
            acc(0, "counter", true),
            acq(1, 1),
            rel(1, 1),
            acc(1, "counter", true),
        ]);
        let r = analyze(&t);
        assert_eq!(r.races.len(), 1, "release ticks isolate the access: {r:?}");
    }

    #[test]
    fn channel_send_receive_orders_accesses() {
        let t = trace(vec![
            acc(0, "x", true),
            ev(0, EventKind::ChanSent { chan: 9, delivered: true }),
            ev(1, EventKind::ChanReceived { chan: 9, got: true }),
            acc(1, "x", false),
        ]);
        let r = analyze(&t);
        assert!(r.races.is_empty(), "message passing is an HB edge: {r:?}");
    }

    #[test]
    fn read_read_does_not_race_but_read_write_does() {
        let t = trace(vec![acc(0, "x", false), acc(1, "x", false)]);
        assert!(analyze(&t).races.is_empty());
        let t = trace(vec![acc(0, "x", false), acc(1, "x", true)]);
        assert_eq!(analyze(&t).races.len(), 1);
    }

    #[test]
    fn abba_lock_order_cycle_detected() {
        // Thread 0 nests 1→2, thread 1 nests 2→1 — no deadlock in this
        // trace, but the order graph has a 2-cycle.
        let t = trace(vec![
            acq(0, 1),
            acq(0, 2),
            rel(0, 2),
            rel(0, 1),
            acq(1, 2),
            acq(1, 1),
            rel(1, 1),
            rel(1, 2),
        ]);
        let r = analyze(&t);
        assert_eq!(r.cycles.len(), 1, "{r:?}");
        assert_eq!(r.cycles[0].locks, vec![1, 2]);
    }

    #[test]
    fn consistent_nesting_has_no_cycle() {
        let t = trace(vec![
            acq(0, 1),
            acq(0, 2),
            rel(0, 2),
            rel(0, 1),
            acq(1, 1),
            acq(1, 2),
            rel(1, 2),
            rel(1, 1),
        ]);
        assert!(analyze(&t).cycles.is_empty());
    }

    #[test]
    fn three_way_cycle_detected() {
        let t = trace(vec![
            acq(0, 1), acq(0, 2), rel(0, 2), rel(0, 1),
            acq(1, 2), acq(1, 3), rel(1, 3), rel(1, 2),
            acq(2, 3), acq(2, 1), rel(2, 1), rel(2, 3),
        ]);
        let r = analyze(&t);
        assert_eq!(r.cycles.len(), 1, "{r:?}");
        assert_eq!(r.cycles[0].locks.len(), 3);
    }
}
