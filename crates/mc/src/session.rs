//! Process-wide checker session: exactly one probe owner at a time.
//!
//! The probe installed via `parking_lot::mc` is process-global, and
//! `cargo test` runs many tests concurrently in one process — so every
//! recording or exploration window must hold this lock for its whole
//! duration. Tests that never install a probe are unaffected (their
//! events hit the inactive fast path and vanish).

use std::sync::{Mutex, MutexGuard, Once, PoisonError};

static SESSION: Mutex<()> = Mutex::new(());

/// Guard over the exclusive checker session.
pub struct SessionGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

/// Acquires the process-wide session, blocking until any other session
/// finishes. Also installs (once) the panic-hook filter that silences
/// the checker's internal cancellation unwinds.
pub fn acquire() -> SessionGuard {
    install_cancel_filter();
    SessionGuard(SESSION.lock().unwrap_or_else(PoisonError::into_inner))
}

/// Payload used to unwind worker threads when an execution is abandoned
/// (deadlock teardown, infeasible replay prefix). Caught by the worker
/// wrapper; never escapes the checker.
pub struct CancelToken;

static HOOK: Once = Once::new();

/// Chains a panic hook that drops [`CancelToken`] unwinds silently and
/// forwards everything else to the previously installed hook. Installed
/// once per process; teardown unwinds are routine during deadlock
/// exploration and must not spam stderr.
fn install_cancel_filter() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CancelToken>().is_none() {
                prev(info);
            }
        }));
    });
}
