//! `hc-mc` CLI.
//!
//! ```text
//! hc-mc list
//! hc-mc self-check [--json FILE]
//! hc-mc sweep [--budget-secs N] [--preemptions N]
//!             [--strategy dpor|exhaustive] [--json FILE]
//! hc-mc cross-check [--root DIR] [--budget-secs N] [--json FILE]
//! hc-mc replay --model NAME --schedule 0,0,1,1
//! ```
//!
//! Exit codes: `0` success (self-check caught everything / sweep clean /
//! cross-check decisive / replay reproduced a violation when one was
//! expected), `1` check failure, `2` usage error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use hc_mc::crosscheck::{cross_check, CrossCheckReport};
use hc_mc::explore::{explore, replay, Bounds, Strategy};
use hc_mc::hb;
use hc_mc::model;
use hc_mc::report::{McArtifact, SelfCheckReport, SelfCheckResult, SweepReport};

fn usage() -> &'static str {
    "usage: hc-mc <list|self-check|sweep|cross-check|replay> [options]\n\
     \n\
     list                      print registered models (clean + planted)\n\
     self-check                prove both engines still catch every\n\
     \x20                         planted defect, deterministically\n\
     sweep                     bounded-exhaustive exploration of every\n\
     \x20                         clean model (E22 / CI model-check)\n\
     cross-check               verdict every static lock-order-inversion\n\
     \x20                         finding: confirmed | unrealizable\n\
     replay                    re-execute one model under one schedule\n\
     \n\
     --json FILE               write the JSON artifact\n\
     --budget-secs N           wall-clock budget (default 60)\n\
     --preemptions N           preemption bound (default 2)\n\
     --strategy dpor|exhaustive  alternative generation (default dpor)\n\
     --root DIR                workspace root for cross-check\n\
     --model NAME              model for replay\n\
     --schedule A,B,C          comma-separated thread indices for replay\n"
}

struct Opts {
    json: Option<PathBuf>,
    budget_secs: u64,
    preemptions: usize,
    strategy: Strategy,
    root: PathBuf,
    model: Option<String>,
    schedule: Vec<usize>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        json: None,
        budget_secs: 60,
        preemptions: 2,
        strategy: Strategy::Dpor,
        root: default_root(),
        model: None,
        schedule: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = Some(PathBuf::from(it.next().ok_or("--json needs a value")?)),
            "--budget-secs" => {
                opts.budget_secs = it
                    .next()
                    .ok_or("--budget-secs needs a value")?
                    .parse()
                    .map_err(|e| format!("--budget-secs: {e}"))?;
            }
            "--preemptions" => {
                opts.preemptions = it
                    .next()
                    .ok_or("--preemptions needs a value")?
                    .parse()
                    .map_err(|e| format!("--preemptions: {e}"))?;
            }
            "--strategy" => {
                opts.strategy = match it.next().map(String::as_str) {
                    Some("dpor") => Strategy::Dpor,
                    Some("exhaustive") => Strategy::Exhaustive,
                    other => return Err(format!("--strategy must be dpor|exhaustive, got {other:?}")),
                };
            }
            "--root" => opts.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--model" => opts.model = Some(it.next().ok_or("--model needs a value")?.clone()),
            "--schedule" => {
                let spec = it.next().ok_or("--schedule needs a value")?;
                opts.schedule = spec
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("--schedule: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Workspace root: cwd when it holds `crates/`, else two levels above
/// this crate's manifest.
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(cwd)
}

fn bounds(opts: &Opts) -> Bounds {
    Bounds {
        preemptions: opts.preemptions,
        max_schedules: 100_000,
        budget: Duration::from_secs(opts.budget_secs),
    }
}

fn write_artifact(path: Option<&Path>, artifact: &McArtifact) -> Result<(), String> {
    let Some(path) = path else { return Ok(()) };
    let json = serde_json::to_string(artifact).map_err(|e| format!("serialise artifact: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    eprintln!("hc-mc: wrote artifact to {}", path.display());
    Ok(())
}

fn cmd_list() -> ExitCode {
    println!("clean models (sweep / E22):");
    for m in model::registry() {
        println!("  {:28} {}", m.name, m.description);
    }
    println!("planted models (self-check):");
    for m in model::planted() {
        println!("  {:28} {}", m.name, m.description);
    }
    ExitCode::SUCCESS
}

fn cmd_self_check(opts: &Opts) -> Result<ExitCode, String> {
    let bounds = bounds(opts);
    let mut results = Vec::new();
    for m in model::planted() {
        let found = explore(&m, opts.strategy, &bounds, true);
        let ce = found.counter_examples.first();
        let caught_by_explorer = ce.is_some();
        // The HB engine must independently flag the failing execution:
        // a data race in the trace, or a lock-order cycle.
        let caught_by_hb = ce.is_some_and(|c| !c.races.is_empty() || !c.deadlock_locks.is_empty())
            || !found.races.is_empty()
            || !found.cycles.is_empty();
        let (schedule, replay_deterministic) = match ce {
            Some(c) => {
                let first = replay(&m, &c.schedule);
                let second = replay(&m, &c.schedule);
                let deterministic = first.violations == c.violations
                    && second.violations == first.violations
                    && second.trace.canonicalized().events == first.trace.canonicalized().events
                    && first.deadlock == c.deadlock;
                (c.schedule.clone(), deterministic)
            }
            None => (Vec::new(), false),
        };
        let result = SelfCheckResult {
            model: m.name.to_string(),
            caught_by_explorer,
            caught_by_hb,
            schedule,
            replay_deterministic,
            schedules_to_find: found.schedules,
        };
        println!(
            "self-check {:24} explorer={} hb={} replay={} ({} schedule(s), schedule {:?})",
            result.model,
            if result.caught_by_explorer { "caught" } else { "MISSED" },
            if result.caught_by_hb { "caught" } else { "MISSED" },
            if result.replay_deterministic { "deterministic" } else { "UNSTABLE" },
            result.schedules_to_find,
            result.schedule,
        );
        results.push(result);
    }
    let passed = results.iter().all(SelfCheckResult::passed);
    let report = SelfCheckReport {
        tool: "hc-mc".to_string(),
        schema_version: 1,
        passed,
        results,
    };
    let mut artifact = McArtifact::empty();
    artifact.self_check = Some(report);
    write_artifact(opts.json.as_deref(), &artifact)?;
    if passed {
        println!("hc-mc self-check: PASS");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("hc-mc self-check: FAIL — a planted defect went uncaught");
        Ok(ExitCode::from(1))
    }
}

fn cmd_sweep(opts: &Opts) -> Result<ExitCode, String> {
    let bounds = bounds(opts);
    let registry = hc_telemetry::Registry::new();
    let instruments = hc_mc::metrics::McInstruments::new(&registry);
    let mut explorations = Vec::new();
    for m in model::registry() {
        let result = explore(&m, opts.strategy, &bounds, false);
        instruments.observe_exploration(&result);
        println!(
            "sweep {:32} {} schedule(s) in {} ms — {}{}",
            result.model,
            result.schedules,
            result.elapsed_ms,
            if result.is_clean() { "clean" } else { "VIOLATIONS" },
            if result.exhausted { ", exhausted" } else { ", TRUNCATED" },
        );
        for ce in &result.counter_examples {
            println!("    counter-example schedule {:?}: {:?}", ce.schedule, ce.violations);
        }
        for race in &result.races {
            println!("    race: {race}");
        }
        explorations.push(result);
    }
    let snap = registry.snapshot();
    println!(
        "mc.schedules_explored={} mc.races_found={} mc.violations={} mc.deadlocks={}",
        snap.counter("mc.schedules_explored").unwrap_or(0),
        snap.counter("mc.races_found").unwrap_or(0),
        snap.counter("mc.violations").unwrap_or(0),
        snap.counter("mc.deadlocks").unwrap_or(0),
    );
    let report = SweepReport::new(explorations);
    let clean = report.clean;
    let mut artifact = McArtifact::empty();
    artifact.sweep = Some(report);
    write_artifact(opts.json.as_deref(), &artifact)?;
    if clean {
        println!("hc-mc sweep: PASS (all models exhausted clean)");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("hc-mc sweep: FAIL");
        Ok(ExitCode::from(1))
    }
}

fn cmd_cross_check(opts: &Opts) -> Result<ExitCode, String> {
    if !opts.root.join("crates").is_dir() {
        return Err(format!(
            "{} does not look like the workspace root (no crates/)",
            opts.root.display()
        ));
    }
    let report: CrossCheckReport = cross_check(&opts.root, &bounds(opts));
    for v in &report.verdicts {
        println!(
            "cross-check {}:{}:{} [{} ↔ {}] — {}{}",
            v.file,
            v.line,
            v.col,
            v.locks.first().map(String::as_str).unwrap_or("?"),
            v.locks.get(1).map(String::as_str).unwrap_or("?"),
            v.verdict.label(),
            match v.verdict {
                hc_mc::crosscheck::VerdictKind::Confirmed =>
                    format!(" (model {}, schedule {:?})", v.model.as_deref().unwrap_or("?"), v.schedule),
                _ => format!(" ({} schedule(s) explored)", v.schedules_explored),
            },
        );
    }
    let decisive = report.decisive();
    println!(
        "hc-mc cross-check: {} finding(s), {}",
        report.findings,
        if decisive { "all decisive" } else { "UNMODELED pairs present" },
    );
    let mut artifact = McArtifact::empty();
    artifact.cross_check = Some(report);
    write_artifact(opts.json.as_deref(), &artifact)?;
    Ok(if decisive { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn cmd_replay(opts: &Opts) -> Result<ExitCode, String> {
    let name = opts.model.as_deref().ok_or("replay needs --model NAME")?;
    let m = model::find(name).ok_or_else(|| format!("unknown model {name:?} — see `hc-mc list`"))?;
    let outcome = replay(&m, &opts.schedule);
    let report = hb::analyze(&outcome.trace);
    println!(
        "replay {name} schedule {:?}: {} event(s), deadlock={}, {} violation(s), {} race(s)",
        outcome.schedule,
        outcome.trace.events.len(),
        outcome.deadlock,
        outcome.violations.len(),
        report.races.len(),
    );
    for v in &outcome.violations {
        println!("  violation: {v}");
    }
    for r in &report.races {
        println!("  race at {}: t{} vs t{}", r.loc, r.first.tid, r.second.tid);
    }
    if outcome.infeasible {
        println!("  schedule was infeasible at step {}", outcome.schedule.len());
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hc-mc: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "list" => return cmd_list(),
        "self-check" => cmd_self_check(&opts),
        "sweep" => cmd_sweep(&opts),
        "cross-check" => cmd_cross_check(&opts),
        "replay" => cmd_replay(&opts),
        "--help" | "-h" => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("hc-mc: unknown command {other:?}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("hc-mc: {e}");
            ExitCode::from(2)
        }
    }
}
