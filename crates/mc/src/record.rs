//! Passive trace recording: run instrumented code at full speed and
//! keep every probe event for offline happens-before analysis.
//!
//! Unlike the controlled scheduler, the recorder never blocks a thread —
//! the interleaving observed is whatever the OS produced, which is
//! exactly what the soak-test race scans want: one real execution,
//! checked exhaustively for *unsynchronized* access pairs that happened
//! to not misbehave this time.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

use parking_lot::mc::{self, Probe, ProbeEvent};

use crate::event::{EventKind, Trace, TraceEvent};
use crate::session::SessionGuard;

/// State behind the recorder's own (uninstrumented) lock.
#[derive(Default)]
struct RecState {
    ids: HashMap<ThreadId, usize>,
    names: Vec<String>,
    events: Vec<TraceEvent>,
}

/// A [`Probe`] that appends every event to an owned trace, interning
/// thread identities into dense indices in first-seen order.
#[derive(Default)]
pub struct TraceRecorder {
    state: Mutex<RecState>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the recorded trace, leaving the recorder empty.
    pub fn take(&self) -> Trace {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Trace {
            thread_names: std::mem::take(&mut st.names),
            events: std::mem::take(&mut st.events),
        }
    }
}

impl Probe for TraceRecorder {
    fn event(&self, ev: ProbeEvent<'_>) {
        let kind = EventKind::from_probe(&ev);
        let current = std::thread::current();
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let next = st.ids.len();
        let tid = *st.ids.entry(current.id()).or_insert(next);
        if tid == st.names.len() {
            st.names.push(
                current
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("thread-{tid}")),
            );
        }
        st.events.push(TraceEvent { tid, kind });
    }
}

/// An exclusive recording window: holds the process-wide checker session
/// (so concurrent tests cannot interleave their events) and installs a
/// [`TraceRecorder`] as the global probe until [`finish`](Self::finish).
pub struct RecordingSession {
    _guard: SessionGuard,
    recorder: Arc<TraceRecorder>,
}

impl RecordingSession {
    /// Starts recording all probe events process-wide.
    pub fn start() -> Self {
        let guard = crate::session::acquire();
        let recorder = Arc::new(TraceRecorder::new());
        mc::set_probe(recorder.clone());
        RecordingSession {
            _guard: guard,
            recorder,
        }
    }

    /// Stops recording and returns the trace.
    pub fn finish(self) -> Trace {
        mc::clear_probe();
        self.recorder.take()
        // `self._guard` drops here, releasing the session.
    }
}

impl Drop for RecordingSession {
    fn drop(&mut self) {
        // `finish` already cleared the probe; clearing twice is harmless,
        // and a panicking test must not leave a dangling recorder behind.
        mc::clear_probe();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Mode;

    #[test]
    fn records_lock_and_annotation_events_across_threads() {
        let session = RecordingSession::start();
        let m = Arc::new(parking_lot::Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let handle = std::thread::Builder::new()
            .name("rec-worker".into())
            .spawn(move || {
                *m2.lock() += 1;
                hc_common::conc::mc::write("rec.test");
            })
            .expect("spawn");
        *m.lock() += 1;
        handle.join().expect("join");
        let trace = session.finish();
        assert!(trace.threads() >= 2, "two threads observed: {trace:?}");
        assert!(trace.events.iter().any(|e| matches!(
            e.kind,
            EventKind::Acquired { mode: Mode::Mutex, .. }
        )));
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::Access { loc, write: true } if loc == "rec.test")));
        assert!(trace
            .thread_names
            .iter()
            .any(|n| n == "rec-worker"));
    }
}
