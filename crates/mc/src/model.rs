//! Registered concurrency models: small, closed model-checkable slices
//! of the platform's concurrency core, plus the planted-defect fixtures
//! the self-check calibrates against.
//!
//! A [`Model`] is a factory: every execution instantiates fresh state,
//! so schedules replay deterministically. Setup inside the factory runs
//! *before* the probe is installed (uninstrumented, no scheduling
//! points) — models must not hold instrumented locks across the factory
//! boundary.

use std::sync::{Arc, Mutex as StdMutex};

use hc_cache::fleet::{CacheFleet, FleetConfig};
use hc_cache::shard::{ShardedCache, ShardedClient, ShardedOrigin};
use hc_cloudsim::net::Location;
use hc_common::clock::{SimClock, SimDuration};
use hc_common::conc::mc;
use hc_ledger::consensus::SlotWindow;
use hc_resilience::shed::{DegradedConfig, DegradedMode};
use hc_resilience::{CircuitBreaker, TimeoutBudget};

/// One fresh instantiation of a model: thread bodies for the controlled
/// scheduler, an optional invariant finale, and the lock identities the
/// cross-check needs to match schedules to static findings.
pub struct ModelRun {
    /// One closure per model thread.
    pub bodies: Vec<Box<dyn FnOnce() + Send>>,
    /// Runs on the coordinator after all threads join (skipped when the
    /// execution deadlocked); `mc::check` violations are captured.
    pub finale: Option<Box<dyn FnOnce()>>,
    /// `(static lock identity, runtime object id)` pairs binding this
    /// instantiation's locks to hc-lint's lock naming.
    pub lock_names: Vec<(String, u64)>,
}

/// A named, repeatable concurrency model.
pub struct Model {
    /// Stable name (`subsystem.scenario`), used by the CLI and reports.
    pub name: &'static str,
    /// One-line description for artifacts.
    pub description: &'static str,
    /// Builds a fresh instantiation.
    pub factory: Box<dyn Fn() -> ModelRun + Send + Sync>,
}

impl Model {
    /// A fresh instantiation with untouched state.
    pub fn instantiate(&self) -> ModelRun {
        (self.factory)()
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model").field("name", &self.name).finish()
    }
}

fn sharded_publish() -> Model {
    Model {
        name: "cache.sharded-publish",
        description: "insert-before-publish and subscriber pruning on the sharded origin bus",
        factory: Box::new(|| {
            let origin: Arc<ShardedOrigin<&'static str, u64>> = ShardedOrigin::new(1, 7);
            origin.write("k", 1);
            let mut client =
                ShardedClient::subscribe(Arc::clone(&origin), ShardedCache::lru(8, 1, 7));
            client.read_versioned(&"k"); // warm the local cache at v1
            let observed: Arc<StdMutex<Vec<u64>>> = Arc::default();
            let (w_origin, r_observed) = (Arc::clone(&origin), Arc::clone(&observed));
            let (f_origin, f_observed) = (Arc::clone(&origin), Arc::clone(&observed));
            ModelRun {
                bodies: vec![
                    Box::new(move || {
                        w_origin.write("k", 9);
                    }),
                    Box::new(move || {
                        let mut seen = Vec::new();
                        if let Some((_, v)) = client.read_versioned(&"k") {
                            seen.push(v);
                        }
                        if let Some((_, v)) = client.read_versioned(&"k") {
                            seen.push(v);
                        }
                        r_observed.lock().unwrap_or_else(|e| e.into_inner()).extend(seen);
                        // client drops here: its bus slots must be pruned.
                    }),
                ],
                finale: Some(Box::new(move || {
                    mc::check(f_origin.version(&"k") == 2, "origin lost the write");
                    let seen = f_observed.lock().unwrap_or_else(|e| e.into_inner());
                    mc::check(
                        seen.iter().zip(seen.iter().skip(1)).all(|(a, b)| a <= b),
                        "reader observed versions going backwards",
                    );
                    mc::check(
                        seen.iter().all(|&v| v >= 1),
                        "reader observed a missing value",
                    );
                    let live: usize = f_origin.subscriber_counts().iter().sum();
                    mc::check(live == 0, "dropped client left a subscriber slot behind");
                })),
                lock_names: Vec::new(),
            }
        }),
    }
}

fn breaker_half_open() -> Model {
    Model {
        name: "breaker.half-open-handoff",
        description: "exactly one probe admitted when two callers race the half-open breaker",
        factory: Box::new(|| {
            let clock = SimClock::new();
            let mut breaker = CircuitBreaker::new(clock.clone())
                .with_trip_threshold(1)
                .with_cooldown(SimDuration::from_millis(1));
            breaker.record_failure(); // trips open
            clock.advance(SimDuration::from_millis(2)); // cooldown elapses
            let shared = Arc::new(parking_lot::Mutex::new(breaker));
            let admitted: Arc<StdMutex<Vec<bool>>> = Arc::default();
            let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..2)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    let admitted = Arc::clone(&admitted);
                    Box::new(move || {
                        let ok = shared.lock().allow();
                        admitted.lock().unwrap_or_else(|e| e.into_inner()).push(ok);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            let f_admitted = Arc::clone(&admitted);
            ModelRun {
                bodies,
                finale: Some(Box::new(move || {
                    let seen = f_admitted.lock().unwrap_or_else(|e| e.into_inner());
                    let through = seen.iter().filter(|&&ok| ok).count();
                    mc::check(
                        through == 1,
                        "half-open breaker must admit exactly one probe",
                    );
                })),
                lock_names: Vec::new(),
            }
        }),
    }
}

fn degraded_hysteresis() -> Model {
    Model {
        name: "shed.degraded-hysteresis",
        description: "degraded-mode flag flips only on completed hysteresis streaks",
        factory: Box::new(|| {
            let clock = SimClock::new();
            let cfg = DegradedConfig {
                window: SimDuration::from_millis(1),
                enter_above: 0.5,
                exit_below: 0.1,
                enter_windows: 1,
                exit_windows: 1,
            };
            let dm = Arc::new(parking_lot::Mutex::new(DegradedMode::new(clock.clone(), cfg)));
            let (dm_hot, clock_hot) = (Arc::clone(&dm), clock.clone());
            let (dm_obs, f_dm) = (Arc::clone(&dm), Arc::clone(&dm));
            ModelRun {
                bodies: vec![
                    Box::new(move || {
                        dm_hot.lock().on_request(true); // 100% shed window
                        clock_hot.advance(SimDuration::from_millis(1));
                        dm_hot.lock().roll_window(); // may enter degraded
                    }),
                    Box::new(move || {
                        // Concurrent reader: racing the flip must never
                        // observe torn hysteresis state.
                        let _ = dm_obs.lock().is_degraded();
                        let _ = dm_obs.lock().is_degraded();
                    }),
                ],
                finale: Some(Box::new(move || {
                    let guard = f_dm.lock();
                    mc::check(
                        guard.transitions() <= 1,
                        "one hot window cannot flip the flag twice",
                    );
                })),
                lock_names: Vec::new(),
            }
        }),
    }
}

fn fleet_read_repair() -> Model {
    Model {
        name: "fleet.read-repair-vs-invalidate",
        description: "replica convergence when a read races a write-invalidation fanout",
        factory: Box::new(|| {
            let clock = SimClock::new();
            let cfg = FleetConfig::default();
            let mut fleet: CacheFleet<&'static str, u64> =
                CacheFleet::with_topology(cfg, clock.clone(), 1, 4);
            let writer = Location::new(0, 0);
            let client = Location::new(0, 3);
            fleet.fill(&"k", &1, 1, writer);
            let fleet = Arc::new(parking_lot::Mutex::new(fleet));
            let (fleet_w, clock_w) = (Arc::clone(&fleet), clock.clone());
            let (fleet_r, clock_r) = (Arc::clone(&fleet), clock.clone());
            let (fleet_f, clock_f) = (Arc::clone(&fleet), clock);
            ModelRun {
                bodies: vec![
                    Box::new(move || {
                        {
                            let mut f = fleet_w.lock();
                            f.write_invalidate(&"k", writer);
                            f.fill(&"k", &2, 2, writer);
                        }
                        clock_w.advance(SimDuration::from_secs(1));
                        let now = clock_w.now();
                        fleet_w.lock().tick(now);
                    }),
                    Box::new(move || {
                        let budget =
                            TimeoutBudget::starting_now(&clock_r, SimDuration::from_secs(5));
                        let mut f = fleet_r.lock();
                        let _ = f.read(&"k", client, &budget);
                    }),
                ],
                finale: Some(Box::new(move || {
                    let mut f = fleet_f.lock();
                    clock_f.advance(SimDuration::from_secs(1));
                    let now = clock_f.now();
                    f.tick(now);
                    let budget = TimeoutBudget::starting_now(&clock_f, SimDuration::from_secs(5));
                    let _ = f.read(&"k", client, &budget); // read-repair pass
                    let versions = f.replica_versions(&"k");
                    let newest = versions.iter().map(|&(_, v)| v).max().unwrap_or(0);
                    mc::check(
                        versions.iter().all(|&(_, v)| v == 0 || v == newest),
                        "stale replica survived invalidation + read repair",
                    );
                })),
                lock_names: Vec::new(),
            }
        }),
    }
}

fn slot_window() -> Model {
    Model {
        name: "ledger.slot-window",
        description: "pipelined PBFT slot window commits in order whatever order quorums complete",
        factory: Box::new(|| {
            // A 4-peer cluster always clears the n >= 4 floor; the
            // factory has no error channel, so an impossible rejection
            // may abort the checker run. This is the same SlotWindow
            // PipelinedCluster uses in production, opened over a
            // 3-deep in-flight window with a 2-slot ring so seq 2
            // contends for seq 0's recycled slot.
            let w = Arc::new(SlotWindow::new(4, 2).unwrap_or_else(|e| {
                unreachable!("4 peers is a valid cluster: {e}") // hc-lint: allow(panic-macro)
            }));
            w.open(0);
            w.open(1);
            // Two commit votes per open slot land during setup; the model
            // threads deliver the quorum-completing third votes — and the
            // seq-2 recycle attempt — in every order the explorer can
            // produce.
            for seq in 0..2u64 {
                w.prepare(seq);
                w.commit_vote(seq);
                w.commit_vote(seq);
            }
            let (w0, w1, wf) = (Arc::clone(&w), Arc::clone(&w), Arc::clone(&w));
            ModelRun {
                bodies: vec![
                    Box::new(move || w0.commit_vote(0)),
                    Box::new(move || {
                        w1.commit_vote(1);
                        // Recycling seq 0's ring slot for seq 2 must
                        // only succeed once seq 0 has committed.
                        let recycled = w1.open(2);
                        mc::check(
                            !recycled || w1.committed().first() == Some(&0),
                            "ring slot recycled before its occupant committed",
                        );
                    }),
                ],
                finale: Some(Box::new(move || {
                    let log = wf.committed();
                    mc::check(
                        log.first() == Some(&0) && log.get(1) == Some(&1),
                        "slot window failed to commit both sequences in order",
                    );
                    mc::check(wf.in_order(), "commit log is not an in-order prefix");
                })),
                lock_names: Vec::new(),
            }
        }),
    }
}

fn planted_lost_update() -> Model {
    Model {
        name: "fixtures.racy-counter",
        description: "planted lost-update: split read/write critical sections drop an increment",
        factory: Box::new(|| {
            let c = Arc::new(mc_fixtures::RacyCounter::new());
            let (c1, c2, cf) = (Arc::clone(&c), Arc::clone(&c), Arc::clone(&c));
            ModelRun {
                bodies: vec![
                    Box::new(move || c1.bump_lost_update()),
                    Box::new(move || c2.bump_lost_update()),
                ],
                finale: Some(Box::new(move || {
                    mc::check(cf.get() == 2, "an increment was lost");
                })),
                lock_names: Vec::new(),
            }
        }),
    }
}

fn planted_abba() -> Model {
    Model {
        name: "fixtures.abba-deadlock",
        description: "planted ABBA inversion: opposite lock orders deadlock under one schedule",
        factory: Box::new(|| {
            let pair = Arc::new(mc_fixtures::AbbaPair::new());
            let (debit_id, credit_id) = pair.lock_ids();
            let (p1, p2, pf) = (Arc::clone(&pair), Arc::clone(&pair), Arc::clone(&pair));
            ModelRun {
                bodies: vec![
                    Box::new(move || p1.transfer_forward(10)),
                    Box::new(move || p2.transfer_reverse(5)),
                ],
                finale: Some(Box::new(move || {
                    mc::check(pf.net() == 0, "transfers must conserve the total");
                })),
                lock_names: vec![
                    ("AbbaPair.debit".to_string(), debit_id),
                    ("AbbaPair.credit".to_string(), credit_id),
                ],
            }
        }),
    }
}

/// The clean models: production concurrency slices expected to sweep
/// exhaustively with zero violations (E22, CI `model-check`).
pub fn registry() -> Vec<Model> {
    vec![
        sharded_publish(),
        breaker_half_open(),
        degraded_hysteresis(),
        fleet_read_repair(),
        slot_window(),
    ]
}

/// The planted-defect models: the self-check fails unless the checker
/// still catches every one of these.
pub fn planted() -> Vec<Model> {
    vec![planted_lost_update(), planted_abba()]
}

/// Looks a model up by name across both sets.
pub fn find(name: &str) -> Option<Model> {
    registry()
        .into_iter()
        .chain(planted())
        .find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<&str> = registry().iter().map(|m| m.name).collect();
        names.extend(planted().iter().map(|m| m.name));
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate model name");
        for name in names {
            assert!(find(name).is_some(), "{name} must resolve");
        }
        assert!(find("no.such.model").is_none());
    }

    #[test]
    fn every_model_instantiates_with_at_least_two_threads() {
        for model in registry().into_iter().chain(planted()) {
            let run = model.instantiate();
            assert!(
                run.bodies.len() >= 2,
                "{} needs concurrency to be worth checking",
                model.name
            );
        }
    }
}
