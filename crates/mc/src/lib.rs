//! `hc-mc` — the concurrency checker for the trusted healthcare
//! analytics platform.
//!
//! Two engines share one event vocabulary ([`event`]), interposed on the
//! vendored lock and channel shims behind the `mc` cargo feature
//! (production builds carry zero instrumentation):
//!
//! * **Happens-before race detection** ([`hb`]) — a FastTrack-style
//!   vector-clock analysis over traces recorded ([`record`]) from real
//!   executions (the soak tests), flagging unsynchronized access pairs
//!   and observed lock-order cycles even when this particular run got
//!   lucky.
//! * **Bounded schedule exploration** ([`sched`], [`explore`]) — a
//!   controlled cooperative scheduler that owns every interleaving
//!   decision, driven by a preemption-bounded DPOR explorer over small
//!   registered models ([`model`]) of the platform's concurrency core.
//!   Counter-examples are deterministic schedules: replaying one
//!   reproduces the identical failure, event for event.
//!
//! The two engines close the loop with `hc-lint`: static
//! `lock-order-inversion` findings are confirmed (with a deadlocking
//! schedule) or declared unrealizable by exploration ([`crosscheck`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crosscheck;
pub mod event;
pub mod explore;
pub mod hb;
pub mod metrics;
pub mod model;
pub mod record;
pub mod report;
pub mod sched;
pub mod session;
