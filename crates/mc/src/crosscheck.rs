//! The static↔dynamic loop: every `lock-order-inversion` finding from
//! `hc-lint` gets a model-checker verdict.
//!
//! The static rule reasons over receiver-text lock identities and flags
//! *potential* inversions; the model checker owns a registry of models
//! whose instantiations bind those same identities to runtime lock
//! objects ([`crate::model::ModelRun::lock_names`]). For each finding
//! the cross-check explores every model that binds both named locks:
//!
//! * a deadlock counter-example involving exactly those locks →
//!   **confirmed**, with the replayable schedule attached;
//! * every covering model exhausts its bounded state space without such
//!   a deadlock → **unrealizable** (within the explored models and
//!   bounds — the verdict names both);
//! * no registered model binds the pair → **unmodeled**, which the CI
//!   gate treats as a missing model, not a pass.

use std::collections::BTreeMap;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::explore::{explore, Bounds, Strategy};
use crate::model;

/// The verdict attached to one static finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerdictKind {
    /// A deadlocking schedule over the named locks exists.
    Confirmed,
    /// Bounded exploration of every covering model found no deadlock.
    Unrealizable,
    /// No registered model binds this lock pair.
    Unmodeled,
}

impl VerdictKind {
    /// Lower-case label for artifacts and human output.
    pub fn label(self) -> &'static str {
        match self {
            VerdictKind::Confirmed => "confirmed",
            VerdictKind::Unrealizable => "unrealizable",
            VerdictKind::Unmodeled => "unmodeled",
        }
    }
}

/// One cross-checked finding.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Verdict {
    /// Finding location (workspace-relative), mirroring hc-lint.
    pub file: String,
    /// 1-based line of the second acquisition.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The two lock identities, in the finding's acquisition order.
    pub locks: Vec<String>,
    /// The verdict.
    pub verdict: VerdictKind,
    /// Model that decided the verdict (absent for unmodeled).
    pub model: Option<String>,
    /// The deadlocking schedule (confirmed only) — replay with
    /// `hc-mc replay`.
    pub schedule: Vec<usize>,
    /// Schedules explored across covering models.
    pub schedules_explored: usize,
}

/// The `hc-mc cross-check` artifact; `hc-lint --cross-check FILE`
/// merges it back into the lint report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrossCheckReport {
    /// Always `"hc-mc"`.
    pub tool: String,
    /// Artifact schema version.
    pub schema_version: u32,
    /// `lock-order-inversion` findings examined.
    pub findings: usize,
    /// One verdict per finding.
    pub verdicts: Vec<Verdict>,
}

impl CrossCheckReport {
    /// Whether every finding got a decisive (non-unmodeled) verdict.
    pub fn decisive(&self) -> bool {
        self.verdicts
            .iter()
            .all(|v| v.verdict != VerdictKind::Unmodeled)
    }
}

/// Pulls the two lock identities out of a `lock-order-inversion`
/// message (``acquires `A` then `B`, …``).
pub fn extract_pair(message: &str) -> Option<(String, String)> {
    let mut ticked = message.split('`');
    let _prefix = ticked.next()?;
    let first = ticked.next()?.to_string();
    let _then = ticked.next()?;
    let second = ticked.next()?.to_string();
    if first.is_empty() || second.is_empty() {
        return None;
    }
    Some((first, second))
}

/// Runs hc-lint over `root` and attaches a verdict to every
/// `lock-order-inversion` finding.
pub fn cross_check(root: &Path, bounds: &Bounds) -> CrossCheckReport {
    let cfg = hc_lint::config::LintConfig::workspace_default();
    let lint = hc_lint::engine::analyze_workspace(root, &cfg);
    let inversions: Vec<&hc_lint::diag::Finding> = lint
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order-inversion")
        .collect();

    // Explore each covering model once per distinct lock pair (both
    // directions of an inversion share the same unordered pair).
    let mut cache: BTreeMap<Vec<String>, PairOutcome> = BTreeMap::new();
    let mut verdicts = Vec::new();
    for finding in &inversions {
        let Some((a, b)) = extract_pair(&finding.message) else {
            verdicts.push(Verdict {
                file: finding.file.clone(),
                line: finding.line,
                col: finding.col,
                locks: Vec::new(),
                verdict: VerdictKind::Unmodeled,
                model: None,
                schedule: Vec::new(),
                schedules_explored: 0,
            });
            continue;
        };
        let mut key = vec![a.clone(), b.clone()];
        key.sort();
        let outcome = cache
            .entry(key)
            .or_insert_with_key(|k| decide_pair(k, bounds));
        verdicts.push(Verdict {
            file: finding.file.clone(),
            line: finding.line,
            col: finding.col,
            locks: vec![a, b],
            verdict: outcome.verdict,
            model: outcome.model.clone(),
            schedule: outcome.schedule.clone(),
            schedules_explored: outcome.schedules,
        });
    }

    CrossCheckReport {
        tool: "hc-mc".to_string(),
        schema_version: 1,
        findings: inversions.len(),
        verdicts,
    }
}

struct PairOutcome {
    verdict: VerdictKind,
    model: Option<String>,
    schedule: Vec<usize>,
    schedules: usize,
}

/// Explores every model binding both locks of `pair` (sorted) and
/// reduces the results to one verdict.
fn decide_pair(pair: &[String], bounds: &Bounds) -> PairOutcome {
    let mut covering = 0usize;
    let mut schedules = 0usize;
    let mut clean_model: Option<String> = None;
    for m in model::registry().into_iter().chain(model::planted()) {
        let names: Vec<String> = m
            .instantiate()
            .lock_names
            .into_iter()
            .map(|(name, _)| name)
            .collect();
        if !pair.iter().all(|l| names.contains(l)) {
            continue;
        }
        covering += 1;
        let result = explore(&m, Strategy::Dpor, bounds, false);
        schedules += result.schedules;
        if let Some(ce) = result
            .counter_examples
            .iter()
            .find(|ce| ce.deadlock && pair.iter().all(|l| ce.deadlock_locks.contains(l)))
        {
            return PairOutcome {
                verdict: VerdictKind::Confirmed,
                model: Some(m.name.to_string()),
                schedule: ce.schedule.clone(),
                schedules,
            };
        }
        if result.exhausted {
            clean_model = Some(m.name.to_string());
        }
    }
    if covering == 0 {
        PairOutcome {
            verdict: VerdictKind::Unmodeled,
            model: None,
            schedule: Vec::new(),
            schedules,
        }
    } else {
        PairOutcome {
            verdict: VerdictKind::Unrealizable,
            model: clean_model,
            schedule: Vec::new(),
            schedules,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_extraction_parses_the_rule_message() {
        let msg = "acquires `AbbaPair.credit` then `AbbaPair.debit`, but `AbbaPair::transfer_forward` (crates/mc-fixtures/src/lib.rs:83) acquires them in the opposite order — pick one global lock order";
        assert_eq!(
            extract_pair(msg),
            Some(("AbbaPair.credit".to_string(), "AbbaPair.debit".to_string()))
        );
        assert_eq!(extract_pair("no backticks here"), None);
    }

    #[test]
    fn planted_abba_pair_is_confirmed_with_a_schedule() {
        let pair = vec!["AbbaPair.credit".to_string(), "AbbaPair.debit".to_string()];
        let out = decide_pair(&pair, &Bounds::default());
        assert_eq!(out.verdict, VerdictKind::Confirmed, "planted inversion must confirm");
        assert!(!out.schedule.is_empty(), "confirmed verdict carries a schedule");
        assert_eq!(out.model.as_deref(), Some("fixtures.abba-deadlock"));
    }

    #[test]
    fn unknown_pair_is_unmodeled() {
        let pair = vec!["Nope.a".to_string(), "Nope.b".to_string()];
        let out = decide_pair(&pair, &Bounds::default());
        assert_eq!(out.verdict, VerdictKind::Unmodeled);
    }
}
