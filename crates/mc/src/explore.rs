//! Bounded schedule exploration: stateless DFS over schedule prefixes
//! with a preemption bound and optional dynamic partial-order reduction.
//!
//! Each execution runs a model under the controlled scheduler
//! ([`crate::sched::run`]) following a prescribed prefix; at every
//! decision past the prefix the scheduler takes its deterministic
//! default. From the resulting [`StepInfo`](crate::sched::StepInfo) log the explorer derives
//! *alternative* prefixes — same decisions up to step `i`, then a
//! different enabled thread — and pushes them onto the frontier. Under
//! [`Strategy::Dpor`] an alternative is only queued when its pending
//! operation is dependent with the one actually chosen (independent
//! operations commute, so both orders reach the same state).
//!
//! The preemption bound caps how many *preemptive* alternatives a
//! schedule may contain: branching to a thread while the previous runner
//! is still enabled costs one preemption. Most real concurrency bugs
//! manifest within two preemptions, which keeps small models exhaustive
//! in well under a second.

use std::collections::{HashSet, VecDeque};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::hb;
use crate::model::Model;
use crate::sched::{self, RunOutcome};

/// How alternatives are generated at each decision point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Branch on every enabled alternative (full preemption-bounded
    /// enumeration; baseline for measuring DPOR's reduction).
    Exhaustive,
    /// Branch only on alternatives whose pending operation is dependent
    /// with the chosen one (sleep-set-free DPOR; sound for safety
    /// properties under the same preemption bound).
    Dpor,
}

/// Exploration limits.
#[derive(Clone, Debug)]
pub struct Bounds {
    /// Maximum preemptions per schedule (CHESS-style context bound).
    pub preemptions: usize,
    /// Hard cap on schedules executed (safety net).
    pub max_schedules: usize,
    /// Wall-clock budget; exploration stops early when exceeded.
    pub budget: Duration,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            preemptions: 2,
            max_schedules: 100_000,
            budget: Duration::from_secs(60),
        }
    }
}

/// A schedule that violated something, packaged for replay.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CounterExample {
    /// The full schedule (thread index per decision) — replaying it
    /// through [`replay`] reproduces the identical failure.
    pub schedule: Vec<usize>,
    /// Violation messages (invariant failures, panics, deadlock).
    pub violations: Vec<String>,
    /// Whether the failure was a deadlock.
    pub deadlock: bool,
    /// Static identities of the locks involved in the deadlock, resolved
    /// through the model's `lock_names` binding (empty when unnamed).
    pub deadlock_locks: Vec<String>,
    /// Data races the happens-before engine found in the failing trace.
    pub races: Vec<String>,
}

/// Summary of one exploration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Exploration {
    /// Model name.
    pub model: String,
    /// Strategy used.
    pub strategy: Strategy,
    /// Preemption bound.
    pub preemption_bound: usize,
    /// Schedules actually executed.
    pub schedules: usize,
    /// Whether the frontier drained (state space exhausted within the
    /// bound) rather than a budget/cap stopping exploration early.
    pub exhausted: bool,
    /// Wall-clock time spent, in milliseconds.
    pub elapsed_ms: u64,
    /// Violating schedules found (empty for a clean model).
    pub counter_examples: Vec<CounterExample>,
    /// Distinct race reports seen across all explored traces.
    pub races: Vec<String>,
    /// Distinct lock-order cycles seen across all explored traces
    /// (lock object-ids, canonically rotated).
    pub cycles: Vec<Vec<u64>>,
}

impl Exploration {
    /// True when nothing bad was observed.
    pub fn is_clean(&self) -> bool {
        self.counter_examples.is_empty() && self.races.is_empty()
    }
}

fn race_key(trace_races: &[hb::Race]) -> Vec<String> {
    trace_races
        .iter()
        .map(|r| {
            format!(
                "{}: {} by t{} vs {} by t{}",
                r.loc,
                if r.first.write { "write" } else { "read" },
                r.first.tid,
                if r.second.write { "write" } else { "read" },
                r.second.tid,
            )
        })
        .collect()
}

/// Explores `model` under `strategy` within `bounds`. Stops at the first
/// counter-example when `stop_at_first` is set (replay/CI use); otherwise
/// keeps going until the frontier drains or a bound trips.
pub fn explore(
    model: &Model,
    strategy: Strategy,
    bounds: &Bounds,
    stop_at_first: bool,
) -> Exploration {
    let _session = crate::session::acquire();
    let started = Instant::now();
    let mut frontier: VecDeque<Vec<usize>> = VecDeque::new();
    frontier.push_back(Vec::new());
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    seen.insert(Vec::new());

    let mut out = Exploration {
        model: model.name.to_string(),
        strategy,
        preemption_bound: bounds.preemptions,
        schedules: 0,
        exhausted: false,
        elapsed_ms: 0,
        counter_examples: Vec::new(),
        races: Vec::new(),
        cycles: Vec::new(),
    };
    let mut race_set: HashSet<String> = HashSet::new();
    let mut cycle_set: HashSet<Vec<u64>> = HashSet::new();

    while let Some(prefix) = frontier.pop_front() {
        if out.schedules >= bounds.max_schedules || started.elapsed() > bounds.budget {
            break;
        }
        let run = model.instantiate();
        let lock_names = run.lock_names;
        let outcome = sched::run(run.bodies, run.finale, &prefix);
        if outcome.infeasible {
            // A prefix can go stale when an earlier branch changed
            // enabledness downstream; dropping it is sound because every
            // feasible alternative was queued from the run that spawned it.
            continue;
        }
        out.schedules += 1;

        let report = hb::analyze(&outcome.trace);
        for key in race_key(&report.races) {
            if race_set.insert(key.clone()) {
                out.races.push(key);
            }
        }
        for cycle in &report.cycles {
            if cycle_set.insert(cycle.locks.clone()) {
                out.cycles.push(cycle.locks.clone());
            }
        }

        if !outcome.violations.is_empty() || outcome.deadlock {
            out.counter_examples.push(CounterExample {
                schedule: outcome.schedule.clone(),
                violations: outcome.violations.clone(),
                deadlock: outcome.deadlock,
                deadlock_locks: lock_names
                    .iter()
                    .filter(|(_, id)| outcome.deadlock_locks.contains(id))
                    .map(|(name, _)| name.clone())
                    .collect(),
                races: race_key(&report.races),
            });
            if stop_at_first {
                out.elapsed_ms = started.elapsed().as_millis() as u64;
                return out;
            }
            // Do not expand alternatives from a torn-down execution: its
            // step log stops at the failure, and every prefix up to that
            // point was already queued by the runs that led here.
            continue;
        }

        queue_alternatives(&outcome, &prefix, strategy, bounds, &mut seen, &mut frontier);
    }

    out.exhausted = frontier.is_empty() && out.schedules < bounds.max_schedules;
    out.elapsed_ms = started.elapsed().as_millis() as u64;
    out
}

/// Derives alternative prefixes from a completed run's decision log.
///
/// `Exhaustive` branches to every enabled alternative at every decision
/// past the prescribed prefix. `Dpor` derives backtrack points the
/// Flanagan–Godefroid way, from *executed* steps: for every pair of
/// dependent steps `i < j` run by different threads, re-schedule step
/// `j`'s thread at index `i` (or, when it was not yet enabled there,
/// every enabled alternative — it may need another thread to run first
/// to become enabled). Comparing only *pending* operations would be
/// unsound: a thread parked at its start-of-thread `Yield` looks
/// independent of everything while all its real conflicts sit behind it.
fn queue_alternatives(
    outcome: &RunOutcome,
    prefix: &[usize],
    strategy: Strategy,
    bounds: &Bounds,
    seen: &mut HashSet<Vec<usize>>,
    frontier: &mut VecDeque<Vec<usize>>,
) {
    // Preemptions committed before each step: branching at step `i`
    // inherits the preemption count of schedule[..i].
    let mut preempt_before = vec![0usize; outcome.steps.len() + 1];
    for (i, step) in outcome.steps.iter().enumerate() {
        preempt_before[i + 1] = preempt_before[i] + usize::from(step.preemption); // hc-lint: allow(panic-index)
    }

    let mut queue_branch = |i: usize, alt: usize| {
        let step = &outcome.steps[i]; // hc-lint: allow(panic-index)
        if alt == step.chosen || !step.enabled.iter().any(|&(t, _)| t == alt) {
            return;
        }
        // Scheduling `alt` here preempts iff the previous runner (chosen
        // at i-1) is still enabled at i and is not `alt`.
        let prev = i.checked_sub(1).map(|j| outcome.schedule[j]); // hc-lint: allow(panic-index)
        let is_preemption =
            prev.is_some_and(|p| p != alt && step.enabled.iter().any(|&(t, _)| t == p));
        if preempt_before[i] + usize::from(is_preemption) > bounds.preemptions { // hc-lint: allow(panic-index)
            return;
        }
        let mut branch: Vec<usize> = outcome.schedule.get(..i).unwrap_or_default().to_vec();
        branch.push(alt);
        if seen.insert(branch.clone()) {
            frontier.push_back(branch);
        }
    };

    match strategy {
        Strategy::Exhaustive => {
            for (i, step) in outcome.steps.iter().enumerate().skip(prefix.len()) {
                for &(alt, _) in &step.enabled {
                    queue_branch(i, alt);
                }
            }
        }
        Strategy::Dpor => {
            for j in 0..outcome.steps.len() {
                for i in 0..j {
                    let (si, sj) = (&outcome.steps[i], &outcome.steps[j]); // hc-lint: allow(panic-index)
                    if si.chosen == sj.chosen || !si.op.dependent(&sj.op) {
                        continue;
                    }
                    if si.enabled.iter().any(|&(t, _)| t == sj.chosen) {
                        queue_branch(i, sj.chosen);
                    } else {
                        // Step j's thread was disabled at i: something
                        // else must run first, so backtrack every
                        // alternative.
                        for &(alt, _) in &si.enabled.clone() {
                            queue_branch(i, alt);
                        }
                    }
                }
            }
        }
    }
}

/// Re-executes `model` under exactly `schedule`. Deterministic: the same
/// schedule yields the same trace, the same violations, the same
/// everything — this is what makes a counter-example an artifact rather
/// than an anecdote.
pub fn replay(model: &Model, schedule: &[usize]) -> RunOutcome {
    let _session = crate::session::acquire();
    let run = model.instantiate();
    sched::run(run.bodies, run.finale, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ModelRun};
    use std::sync::Arc;

    fn racy_model() -> Model {
        Model {
            name: "test.racy-counter",
            description: "planted lost-update",
            factory: Box::new(|| {
                let c = Arc::new(mc_fixtures::RacyCounter::new());
                let (c1, c2, cf) = (Arc::clone(&c), Arc::clone(&c), Arc::clone(&c));
                ModelRun {
                    bodies: vec![
                        Box::new(move || c1.bump_lost_update()),
                        Box::new(move || c2.bump_lost_update()),
                    ],
                    finale: Some(Box::new(move || {
                        hc_common::conc::mc::check(cf.get() == 2, "lost update");
                    })),
                    lock_names: Vec::new(),
                }
            }),
        }
    }

    fn clean_model() -> Model {
        Model {
            name: "test.atomic-counter",
            description: "single critical section",
            factory: Box::new(|| {
                let c = Arc::new(mc_fixtures::RacyCounter::new());
                let (c1, c2, cf) = (Arc::clone(&c), Arc::clone(&c), Arc::clone(&c));
                ModelRun {
                    bodies: vec![
                        Box::new(move || c1.bump_atomic()),
                        Box::new(move || c2.bump_atomic()),
                    ],
                    finale: Some(Box::new(move || {
                        hc_common::conc::mc::check(cf.get() == 2, "atomic bump lost");
                    })),
                    lock_names: Vec::new(),
                }
            }),
        }
    }

    #[test]
    fn planted_lost_update_is_found_and_replayable() {
        let model = racy_model();
        let found = explore(&model, Strategy::Dpor, &Bounds::default(), true);
        assert!(
            !found.counter_examples.is_empty(),
            "explorer must find the planted race: {found:?}"
        );
        let ce = &found.counter_examples[0]; // hc-lint: allow(panic-index)
        assert!(!ce.races.is_empty(), "HB engine flags the same schedule: {ce:?}");
        // Replay determinism: same schedule, same failure.
        let replayed = replay(&model, &ce.schedule);
        assert_eq!(replayed.violations, ce.violations);
        let replayed_again = replay(&model, &ce.schedule);
        assert_eq!(
            replayed_again.trace.canonicalized().events,
            replayed.trace.canonicalized().events
        );
    }

    #[test]
    fn clean_model_exhausts_without_violations() {
        let model = clean_model();
        let swept = explore(&model, Strategy::Dpor, &Bounds::default(), false);
        assert!(swept.exhausted, "small model must exhaust: {swept:?}");
        assert!(swept.is_clean(), "{swept:?}");
        assert!(swept.schedules >= 2, "at least both orders run: {}", swept.schedules);
    }

    #[test]
    fn dpor_explores_no_more_schedules_than_exhaustive() {
        let model = clean_model();
        let full = explore(&model, Strategy::Exhaustive, &Bounds::default(), false);
        let dpor = explore(&model, Strategy::Dpor, &Bounds::default(), false);
        assert!(full.exhausted && dpor.exhausted);
        assert!(
            dpor.schedules <= full.schedules,
            "dpor {} > exhaustive {}",
            dpor.schedules,
            full.schedules
        );
    }
}
