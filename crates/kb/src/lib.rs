//! Synthetic knowledge bases and cohorts with planted ground truth.
//!
//! The paper's platform draws on external databases — DisGeNET (gene ↔
//! disease), PubChem (chemical structure), DrugBank (drug targets), SIDER
//! (side effects) — plus PubMed text and proprietary EMR databases
//! (Explorys, Truven MarketScan). None of those are redistributable, so
//! this crate generates *synthetic equivalents with planted latent
//! structure*: the generators first draw hidden drug/disease factors, then
//! derive observable features (fingerprints, targets, side effects,
//! phenotypes, gene sets) and ground-truth labels from them. An analytics
//! method is then evaluated on how well it recovers the plant — the
//! standard methodology when licensed clinical data is unavailable, and
//! one that preserves the *shape* of the paper's comparisons (DESIGN.md).
//!
//! * [`biobank`] — drugs, diseases, similarity feature generation and the
//!   ground-truth drug–disease association matrix (feeds JMF, E8).
//! * [`emr`] — an EMR cohort generator with per-patient baselines, aging
//!   drift and planted drug effects on HbA1c (feeds DELT, E9); cohorts
//!   render to FHIR bundles so the ingestion pipeline can exercise them.
//! * [`corpus`] — a PubMed-like abstract corpus with extractable planted
//!   facts (exercises the platform's text-extraction claims).
//! * [`service`] — the knowledge-base query service with remote-access
//!   latency and a local cache, as in §III ("We cache data from these
//!   knowledge bases locally").

#![forbid(unsafe_code)]

pub mod biobank;
pub mod corpus;
pub mod emr;
pub mod service;
