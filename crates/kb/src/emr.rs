//! Synthetic EMR cohorts with planted drug effects (the DELT substrate).
//!
//! Reproduces the generative structure of the paper's Figs. 10–11: each
//! patient `i` has a personal baseline `α_i` ("different healthy patients
//! may have different normal laboratory test values"), a time-varying
//! confounder trend `t_ij` (aging/comorbidities), and drug exposures whose
//! planted effects `β_d` shift the lab value while the exposure window
//! covers the measurement. DELT must recover the planted `β` despite the
//! confounders; the marginal-correlation baseline must be fooled by them.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hc_fhir::bundle::{Bundle, BundleKind};
use hc_fhir::resource::{Gender, MedicationRequest, Observation, Patient, Resource};
use hc_fhir::types::{CodeableConcept, Period, Quantity, SimDate};

/// One drug exposure window.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Exposure {
    /// Drug index.
    pub drug: usize,
    /// Exposure period.
    pub period: Period,
}

/// One lab measurement.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LabMeasurement {
    /// Measurement day.
    pub day: SimDate,
    /// HbA1c value (%).
    pub value: f64,
}

/// One synthetic patient.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct EmrPatient {
    /// Patient index in the cohort.
    pub index: usize,
    /// The hidden baseline α_i.
    pub baseline: f64,
    /// The hidden aging/comorbidity drift per year.
    pub drift_per_year: f64,
    /// Demographics.
    pub gender: Gender,
    /// Birth year.
    pub birth_year: u32,
    /// Drug exposures.
    pub exposures: Vec<Exposure>,
    /// Lab measurements (time-ordered).
    pub measurements: Vec<LabMeasurement>,
}

impl EmrPatient {
    /// Drugs the patient was exposed to on `day`.
    pub fn drugs_on(&self, day: SimDate) -> Vec<usize> {
        self.exposures
            .iter()
            .filter(|e| e.period.contains(day))
            .map(|e| e.drug)
            .collect()
    }
}

/// Cohort generator configuration.
#[derive(Clone, Debug)]
pub struct EmrConfig {
    /// Number of patients.
    pub n_patients: usize,
    /// Number of distinct drugs in circulation.
    pub n_drugs: usize,
    /// Planted effects: `(drug index, effect on HbA1c while exposed)`.
    /// Negative = lowers blood sugar (repositioning candidate).
    pub planted_effects: Vec<(usize, f64)>,
    /// Population baseline mean (HbA1c %).
    pub baseline_mean: f64,
    /// Population baseline standard deviation.
    pub baseline_sd: f64,
    /// Std-dev of per-patient drift per year.
    pub drift_sd: f64,
    /// Measurement noise std-dev.
    pub noise_sd: f64,
    /// Measurements per patient.
    pub measurements_per_patient: usize,
    /// Mean exposures per patient.
    pub exposures_per_patient: f64,
    /// Study horizon in days.
    pub horizon_days: u32,
    /// Co-prescription confounders: `(trigger, companion, probability)`
    /// — whenever `trigger` is prescribed, `companion` is co-prescribed
    /// over the same window with the given probability. This is the
    /// confounder DELT must untangle (paper §V-B contribution 1).
    pub comedications: Vec<(usize, usize, f64)>,
}

impl Default for EmrConfig {
    fn default() -> Self {
        EmrConfig {
            n_patients: 2000,
            n_drugs: 60,
            planted_effects: vec![
                (0, -0.9),
                (1, -0.7),
                (2, -0.5),
                (3, -0.45),
                (4, -0.4),
                (5, 0.5),  // a drug that *raises* HbA1c
                (6, 0.35),
                (7, -0.3),
            ],
            baseline_mean: 6.1,
            baseline_sd: 0.7,
            drift_sd: 0.15,
            noise_sd: 0.25,
            measurements_per_patient: 10,
            exposures_per_patient: 3.0,
            horizon_days: 1460, // 4 years
            comedications: Vec::new(),
        }
    }
}

/// The generated cohort.
#[derive(Clone, Debug)]
pub struct EmrCohort {
    /// All patients.
    pub patients: Vec<EmrPatient>,
    /// The generator config (carries the planted ground truth).
    pub config: EmrConfig,
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl EmrCohort {
    /// Generates a cohort under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if a planted effect references a drug `>= n_drugs`.
    pub fn generate(config: EmrConfig, seed: u64) -> Self {
        for (d, _) in &config.planted_effects {
            assert!(*d < config.n_drugs, "planted drug {d} out of range");
        }
        let mut rng = hc_common::rng::seeded_stream(seed, 303);
        let mut effect = vec![0.0f64; config.n_drugs];
        for &(d, beta) in &config.planted_effects {
            effect[d] = beta;
        }

        let patients = (0..config.n_patients)
            .map(|index| {
                let baseline = config.baseline_mean + config.baseline_sd * gauss(&mut rng);
                let drift_per_year = config.drift_sd * gauss(&mut rng);
                let gender = if rng.gen_bool(0.5) {
                    Gender::Female
                } else {
                    Gender::Male
                };
                let birth_year = rng.gen_range(1935..2000);

                // Exposures: Poisson-ish count, random windows.
                let n_exp = {
                    let lambda = config.exposures_per_patient;
                    let mut count = 0usize;
                    let mut acc = rng.gen_range(0.0f64..1.0).ln();
                    while -acc < lambda {
                        count += 1;
                        acc += rng.gen_range(1e-12f64..1.0).ln();
                    }
                    count.min(10)
                };
                let mut exposures: Vec<Exposure> = (0..n_exp)
                    .map(|_| {
                        let start = rng.gen_range(0..config.horizon_days.saturating_sub(90));
                        let len = rng.gen_range(60..360).min(config.horizon_days - start);
                        Exposure {
                            drug: rng.gen_range(0..config.n_drugs),
                            period: Period::new(SimDate(start), SimDate(start + len)),
                        }
                    })
                    .collect();
                // Co-prescriptions ride along on the trigger's window.
                let mut companions = Vec::new();
                for e in &exposures {
                    for &(trigger, companion, prob) in &config.comedications {
                        if e.drug == trigger && rng.gen_bool(prob.clamp(0.0, 1.0)) {
                            companions.push(Exposure {
                                drug: companion,
                                period: e.period,
                            });
                        }
                    }
                }
                exposures.extend(companions);

                // Measurements at random days, time-ordered.
                let mut days: Vec<u32> = (0..config.measurements_per_patient)
                    .map(|_| rng.gen_range(0..config.horizon_days))
                    .collect();
                days.sort_unstable();
                days.dedup();
                let measurements = days
                    .into_iter()
                    .map(|day| {
                        let date = SimDate(day);
                        let years = day as f64 / 365.0;
                        let drug_term: f64 = exposures
                            .iter()
                            .filter(|e| e.period.contains(date))
                            .map(|e| effect[e.drug])
                            .sum();
                        let value = baseline
                            + drift_per_year * years
                            + drug_term
                            + config.noise_sd * gauss(&mut rng);
                        LabMeasurement {
                            day: date,
                            value: value.clamp(3.5, 18.0),
                        }
                    })
                    .collect();

                EmrPatient {
                    index,
                    baseline,
                    drift_per_year,
                    gender,
                    birth_year,
                    exposures,
                    measurements,
                }
            })
            .collect();

        EmrCohort { patients, config }
    }

    /// The planted effect of each drug (0 for inert drugs).
    pub fn true_effects(&self) -> Vec<f64> {
        let mut effect = vec![0.0f64; self.config.n_drugs];
        for &(d, beta) in &self.config.planted_effects {
            effect[d] = beta;
        }
        effect
    }

    /// Drugs planted to *lower* HbA1c (the repositioning targets of E9),
    /// sorted by effect strength.
    pub fn lowering_drugs(&self) -> Vec<usize> {
        let mut v: Vec<(usize, f64)> = self
            .config
            .planted_effects
            .iter()
            .copied()
            .filter(|(_, b)| *b < 0.0)
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        v.into_iter().map(|(d, _)| d).collect()
    }

    /// Renders one patient as a FHIR transaction bundle, so the cohort can
    /// flow through the real ingestion pipeline.
    pub fn patient_bundle(&self, index: usize) -> Bundle {
        let p = &self.patients[index];
        let pid = format!("emr-p{index}");
        let mut entries = vec![Resource::Patient(
            Patient::builder(&pid)
                .gender(p.gender)
                .birth_year(p.birth_year)
                .name("Synth", &format!("Patient{index}"))
                .build(),
        )];
        for (k, m) in p.measurements.iter().enumerate() {
            entries.push(Resource::Observation(Observation {
                id: format!("{pid}-obs{k}"),
                subject: pid.clone(),
                code: CodeableConcept::hba1c(),
                value: Quantity::new((m.value * 100.0).round() / 100.0, "%"),
                effective: m.day,
            }));
        }
        for (k, e) in p.exposures.iter().enumerate() {
            entries.push(Resource::MedicationRequest(MedicationRequest {
                id: format!("{pid}-rx{k}"),
                subject: pid.clone(),
                medication: CodeableConcept::new("synthetic-rx", format!("D{}", e.drug), format!("drug-{}", e.drug)),
                period: e.period,
            }));
        }
        Bundle::new(BundleKind::Transaction, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_fhir::validation::Validator;

    fn small() -> EmrCohort {
        EmrCohort::generate(
            EmrConfig {
                n_patients: 100,
                ..EmrConfig::default()
            },
            5,
        )
    }

    #[test]
    fn generation_deterministic() {
        assert_eq!(small().patients, small().patients);
    }

    #[test]
    fn exposed_measurements_shift_by_planted_effect() {
        let cohort = EmrCohort::generate(
            EmrConfig {
                n_patients: 800,
                n_drugs: 10,
                planted_effects: vec![(0, -1.5)],
                drift_sd: 0.0,
                noise_sd: 0.05,
                ..EmrConfig::default()
            },
            6,
        );
        let mut exposed = (0.0, 0usize);
        let mut unexposed = (0.0, 0usize);
        for p in &cohort.patients {
            for m in &p.measurements {
                let on_drug = p.drugs_on(m.day).contains(&0);
                let centered = m.value - p.baseline;
                if on_drug {
                    exposed = (exposed.0 + centered, exposed.1 + 1);
                } else {
                    unexposed = (unexposed.0 + centered, unexposed.1 + 1);
                }
            }
        }
        assert!(exposed.1 > 20, "enough exposed samples");
        let diff = exposed.0 / exposed.1 as f64 - unexposed.0 / unexposed.1 as f64;
        assert!((diff + 1.5).abs() < 0.3, "observed effect {diff}");
    }

    #[test]
    fn lowering_drugs_sorted_by_strength() {
        let cohort = small();
        let lows = cohort.lowering_drugs();
        assert_eq!(lows[0], 0, "strongest first");
        assert!(lows.contains(&7));
        assert!(!lows.contains(&5), "raiser excluded");
    }

    #[test]
    fn true_effects_vector() {
        let cohort = small();
        let effects = cohort.true_effects();
        assert_eq!(effects.len(), 60);
        assert_eq!(effects[0], -0.9);
        assert_eq!(effects[30], 0.0);
    }

    #[test]
    fn bundles_pass_validation() {
        let cohort = small();
        let v = Validator::strict();
        for i in 0..5 {
            let bundle = cohort.patient_bundle(i);
            let report = v.validate_bundle(&bundle);
            assert!(report.is_valid(), "patient {i}: {:?}", report.issues);
        }
    }

    #[test]
    fn measurements_time_ordered() {
        for p in &small().patients {
            assert!(p.measurements.windows(2).all(|w| w[0].day < w[1].day));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_planted_drug_panics() {
        let _ = EmrCohort::generate(
            EmrConfig {
                n_drugs: 3,
                planted_effects: vec![(5, -1.0)],
                ..EmrConfig::default()
            },
            1,
        );
    }
}
