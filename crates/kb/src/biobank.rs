//! Drugs, diseases, and the planted drug–disease association matrix.
//!
//! Generation model: `n_clusters` latent archetypes in a `latent_dim`-
//! dimensional space. Each drug and disease draws an archetype and a
//! noisy latent vector around it; observable features (chemical
//! fingerprint bits, target-gene sets, side-effect sets, phenotype
//! vectors, ontology paths, disease genes) are deterministic noisy
//! functions of the latent vector. The ground-truth association matrix is
//! `R[d][s] = 1` when `σ(u_d · v_s)` exceeds a quantile threshold, so
//! associated pairs are exactly the ones whose latent factors align — the
//! structure JMF is designed to recover.

use std::collections::BTreeSet;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of fingerprint bits (PubChem-like substructure keys).
pub const FINGERPRINT_BITS: usize = 128;

/// A synthetic drug record (DrugBank/PubChem/SIDER-like features).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Drug {
    /// Index within the biobank.
    pub index: usize,
    /// Display name.
    pub name: String,
    /// Hidden latent factor (generation-side only; not a "feature").
    pub latent: Vec<f64>,
    /// Chemical substructure fingerprint.
    pub fingerprint: Vec<bool>,
    /// Target gene ids (DrugBank-like).
    pub targets: BTreeSet<u32>,
    /// Side-effect ids (SIDER-like).
    pub side_effects: BTreeSet<u32>,
    /// Therapeutic class (the latent archetype id).
    pub class: usize,
}

/// A synthetic disease record (DisGeNET/phenotype-like features).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Disease {
    /// Index within the biobank.
    pub index: usize,
    /// Display name.
    pub name: String,
    /// Hidden latent factor.
    pub latent: Vec<f64>,
    /// Phenotype feature vector.
    pub phenotype: Vec<f64>,
    /// Ontology path from the root (cluster-derived).
    pub ontology_path: Vec<u32>,
    /// Associated gene ids (DisGeNET-like).
    pub genes: BTreeSet<u32>,
    /// Disease family (the latent archetype id).
    pub family: usize,
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct BiobankConfig {
    /// Number of drugs.
    pub n_drugs: usize,
    /// Number of diseases.
    pub n_diseases: usize,
    /// Latent dimensionality.
    pub latent_dim: usize,
    /// Number of archetype clusters.
    pub n_clusters: usize,
    /// Fraction of (drug, disease) pairs that are true associations.
    pub association_rate: f64,
    /// Observable-feature noise level in `[0, 1]`.
    pub noise: f64,
}

impl Default for BiobankConfig {
    fn default() -> Self {
        BiobankConfig {
            n_drugs: 200,
            n_diseases: 150,
            latent_dim: 8,
            n_clusters: 6,
            association_rate: 0.04,
            noise: 0.15,
        }
    }
}

/// The generated biobank.
#[derive(Clone, Debug)]
pub struct Biobank {
    /// All drugs.
    pub drugs: Vec<Drug>,
    /// All diseases.
    pub diseases: Vec<Disease>,
    /// Ground truth: `associations[d][s]`.
    pub associations: Vec<Vec<bool>>,
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Biobank {
    /// Generates a biobank from `config` under `seed`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configs (zero drugs/diseases/clusters).
    pub fn generate(config: &BiobankConfig, seed: u64) -> Self {
        assert!(config.n_drugs > 0 && config.n_diseases > 0 && config.n_clusters > 0);
        let mut rng = hc_common::rng::seeded_stream(seed, 101);

        // Archetype centers.
        let centers: Vec<Vec<f64>> = (0..config.n_clusters)
            .map(|_| (0..config.latent_dim).map(|_| gauss(&mut rng)).collect())
            .collect();
        // Per-cluster feature profiles.
        let fp_profiles: Vec<Vec<f64>> = (0..config.n_clusters)
            .map(|_| (0..FINGERPRINT_BITS).map(|_| rng.gen_range(0.05..0.6)).collect())
            .collect();
        let n_genes = 400u32;
        let n_effects = 250u32;

        let drugs: Vec<Drug> = (0..config.n_drugs)
            .map(|index| {
                let class = rng.gen_range(0..config.n_clusters);
                let latent: Vec<f64> = centers[class]
                    .iter()
                    .map(|c| c + 0.4 * gauss(&mut rng))
                    .collect();
                let fingerprint: Vec<bool> = (0..FINGERPRINT_BITS)
                    .map(|b| {
                        let p = fp_profiles[class][b] * (1.0 - config.noise)
                            + config.noise * rng.gen_range(0.0..1.0);
                        rng.gen_bool(p.clamp(0.0, 1.0))
                    })
                    .collect();
                let targets: BTreeSet<u32> = (0..8)
                    .map(|t| {
                        if rng.gen_bool(1.0 - config.noise) {
                            // Cluster-aligned gene block.
                            (class as u32 * 50 + t * 6 + rng.gen_range(0..6)) % n_genes
                        } else {
                            rng.gen_range(0..n_genes)
                        }
                    })
                    .collect();
                let side_effects: BTreeSet<u32> = (0..10)
                    .map(|t| {
                        if rng.gen_bool(1.0 - config.noise) {
                            (class as u32 * 35 + t * 3 + rng.gen_range(0..3)) % n_effects
                        } else {
                            rng.gen_range(0..n_effects)
                        }
                    })
                    .collect();
                Drug {
                    index,
                    name: format!("drug-{index:03}"),
                    latent,
                    fingerprint,
                    targets,
                    side_effects,
                    class,
                }
            })
            .collect();

        let diseases: Vec<Disease> = (0..config.n_diseases)
            .map(|index| {
                let family = rng.gen_range(0..config.n_clusters);
                let latent: Vec<f64> = centers[family]
                    .iter()
                    .map(|c| c + 0.4 * gauss(&mut rng))
                    .collect();
                let phenotype: Vec<f64> = latent
                    .iter()
                    .map(|l| l * (1.0 - config.noise) + config.noise * gauss(&mut rng))
                    .collect();
                let ontology_path = vec![0, 1 + family as u32, 100 + index as u32];
                let genes: BTreeSet<u32> = (0..12)
                    .map(|t| {
                        if rng.gen_bool(1.0 - config.noise) {
                            (family as u32 * 50 + t * 4 + rng.gen_range(0..4)) % 400
                        } else {
                            rng.gen_range(0..400)
                        }
                    })
                    .collect();
                Disease {
                    index,
                    name: format!("disease-{index:03}"),
                    latent,
                    phenotype,
                    ontology_path,
                    genes,
                    family,
                }
            })
            .collect();

        // Associations: top `association_rate` fraction of latent scores.
        let mut scores: Vec<f64> = Vec::with_capacity(config.n_drugs * config.n_diseases);
        for d in &drugs {
            for s in &diseases {
                scores.push(dot(&d.latent, &s.latent));
            }
        }
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let cutoff_idx = ((scores.len() as f64) * config.association_rate) as usize;
        let threshold = sorted[cutoff_idx.min(sorted.len() - 1)];

        let associations: Vec<Vec<bool>> = (0..config.n_drugs)
            .map(|i| {
                (0..config.n_diseases)
                    .map(|j| scores[i * config.n_diseases + j] >= threshold)
                    .collect()
            })
            .collect();

        Biobank {
            drugs,
            diseases,
            associations,
        }
    }

    /// Splits known associations into train/test: each positive pair is
    /// held out with probability `test_fraction`. Returns
    /// `(train_matrix, held_out_positives)`.
    pub fn split_associations(
        &self,
        test_fraction: f64,
        seed: u64,
    ) -> (Vec<Vec<bool>>, Vec<(usize, usize)>) {
        let mut rng = hc_common::rng::seeded_stream(seed, 202);
        let mut train = self.associations.clone();
        let mut held_out = Vec::new();
        for (i, row) in self.associations.iter().enumerate() {
            for (j, &assoc) in row.iter().enumerate() {
                if assoc && rng.gen_bool(test_fraction) {
                    train[i][j] = false;
                    held_out.push((i, j));
                }
            }
        }
        (train, held_out)
    }

    /// Count of true associations.
    pub fn association_count(&self) -> usize {
        self.associations
            .iter()
            .map(|r| r.iter().filter(|&&b| b).count())
            .sum()
    }
}

/// Tanimoto similarity of two fingerprints.
pub fn tanimoto(a: &[bool], b: &[bool]) -> f64 {
    let both = a.iter().zip(b).filter(|(x, y)| **x && **y).count();
    let either = a.iter().zip(b).filter(|(x, y)| **x || **y).count();
    if either == 0 {
        0.0
    } else {
        both as f64 / either as f64
    }
}

/// Jaccard similarity of two id sets.
pub fn jaccard(a: &BTreeSet<u32>, b: &BTreeSet<u32>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.union(b).count();
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Cosine similarity of two vectors.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Ontology-path similarity: shared prefix / max depth.
pub fn ontology_similarity(a: &[u32], b: &[u32]) -> f64 {
    let shared = a.iter().zip(b).take_while(|(x, y)| x == y).count();
    let depth = a.len().max(b.len());
    if depth == 0 {
        0.0
    } else {
        shared as f64 / depth as f64
    }
}

/// Builds the three drug-similarity matrices (chemical, target,
/// side-effect), each `n_drugs × n_drugs` in `[0, 1]`.
pub fn drug_similarity_sources(bank: &Biobank) -> Vec<Vec<Vec<f64>>> {
    let n = bank.drugs.len();
    let mut chem = vec![vec![0.0; n]; n];
    let mut target = vec![vec![0.0; n]; n];
    let mut side = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i..n {
            let c = tanimoto(&bank.drugs[i].fingerprint, &bank.drugs[j].fingerprint);
            let t = jaccard(&bank.drugs[i].targets, &bank.drugs[j].targets);
            let s = jaccard(&bank.drugs[i].side_effects, &bank.drugs[j].side_effects);
            chem[i][j] = c;
            chem[j][i] = c;
            target[i][j] = t;
            target[j][i] = t;
            side[i][j] = s;
            side[j][i] = s;
        }
    }
    vec![chem, target, side]
}

/// Builds the three disease-similarity matrices (phenotype, ontology,
/// gene), each `n_diseases × n_diseases` in `[0, 1]`.
pub fn disease_similarity_sources(bank: &Biobank) -> Vec<Vec<Vec<f64>>> {
    let n = bank.diseases.len();
    let mut pheno = vec![vec![0.0; n]; n];
    let mut onto = vec![vec![0.0; n]; n];
    let mut gene = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i..n {
            let p = (cosine(&bank.diseases[i].phenotype, &bank.diseases[j].phenotype) + 1.0) / 2.0;
            let o = ontology_similarity(
                &bank.diseases[i].ontology_path,
                &bank.diseases[j].ontology_path,
            );
            let g = jaccard(&bank.diseases[i].genes, &bank.diseases[j].genes);
            pheno[i][j] = p;
            pheno[j][i] = p;
            onto[i][j] = o;
            onto[j][i] = o;
            gene[i][j] = g;
            gene[j][i] = g;
        }
    }
    vec![pheno, onto, gene]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Biobank {
        Biobank::generate(
            &BiobankConfig {
                n_drugs: 40,
                n_diseases: 30,
                ..BiobankConfig::default()
            },
            7,
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.drugs, b.drugs);
        assert_eq!(a.associations, b.associations);
    }

    #[test]
    fn association_rate_respected() {
        let bank = small();
        let total = 40 * 30;
        let count = bank.association_count();
        let rate = count as f64 / total as f64;
        assert!((0.02..=0.08).contains(&rate), "rate={rate}");
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn same_class_drugs_more_similar() {
        let bank = Biobank::generate(&BiobankConfig::default(), 11);
        let sources = drug_similarity_sources(&bank);
        // Average within-class vs cross-class tanimoto.
        let mut within = (0.0, 0usize);
        let mut cross = (0.0, 0usize);
        for i in 0..bank.drugs.len() {
            for j in (i + 1)..bank.drugs.len() {
                let s = sources[0][i][j];
                if bank.drugs[i].class == bank.drugs[j].class {
                    within = (within.0 + s, within.1 + 1);
                } else {
                    cross = (cross.0 + s, cross.1 + 1);
                }
            }
        }
        let within_avg = within.0 / within.1 as f64;
        let cross_avg = cross.0 / cross.1 as f64;
        assert!(
            within_avg > cross_avg + 0.02,
            "within={within_avg} cross={cross_avg}"
        );
    }

    #[test]
    fn split_removes_only_positives() {
        let bank = small();
        let (train, held) = bank.split_associations(0.3, 1);
        assert!(!held.is_empty());
        for &(i, j) in &held {
            assert!(bank.associations[i][j]);
            assert!(!train[i][j]);
        }
        let train_count: usize = train.iter().map(|r| r.iter().filter(|&&b| b).count()).sum();
        assert_eq!(train_count + held.len(), bank.association_count());
    }

    #[test]
    fn similarity_metrics_sane() {
        assert_eq!(tanimoto(&[true, false], &[true, false]), 1.0);
        assert_eq!(tanimoto(&[true, false], &[false, true]), 0.0);
        assert_eq!(tanimoto(&[false, false], &[false, false]), 0.0);
        let a: BTreeSet<u32> = [1, 2, 3].into();
        let b: BTreeSet<u32> = [2, 3, 4].into();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert!((cosine(&[1.0, 1.0], &[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(ontology_similarity(&[0, 1, 5], &[0, 1, 9]), 2.0 / 3.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn similarity_matrices_symmetric_unit_diagonal() {
        let bank = small();
        for m in drug_similarity_sources(&bank) {
            for i in 0..m.len() {
                assert!((m[i][i] - 1.0).abs() < 1e-9, "diag {}", m[i][i]);
                for j in 0..m.len() {
                    assert_eq!(m[i][j], m[j][i]);
                }
            }
        }
    }
}
