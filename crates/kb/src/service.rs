//! The knowledge-base query service with a local cache.
//!
//! §III: "We cache data from these knowledge bases locally. That way, data
//! can be accessed and analyzed more quickly than if it needs to be
//! fetched remotely. For the most up-to-date data, the remote knowledge
//! bases can be directly queried."

use hc_cache::policy::{CachePolicy, LruCache};
use hc_common::clock::{SimClock, SimDuration};

use crate::biobank::{Biobank, Disease, Drug};

/// A cached or remote query result, with its cost.
#[derive(Clone, Debug)]
pub struct KbAnswer<T> {
    /// The value (if the entity exists).
    pub value: Option<T>,
    /// Whether it came from the local cache.
    pub cached: bool,
    /// The simulated cost of the lookup.
    pub latency: SimDuration,
}

/// A knowledge-base front end over the synthetic biobank.
pub struct KnowledgeBaseService {
    bank: Biobank,
    clock: SimClock,
    remote_latency: SimDuration,
    local_latency: SimDuration,
    drug_cache: LruCache<usize, Drug>,
    disease_cache: LruCache<usize, Disease>,
}

impl std::fmt::Debug for KnowledgeBaseService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnowledgeBaseService")
            .field("drugs", &self.bank.drugs.len())
            .field("diseases", &self.bank.diseases.len())
            .finish()
    }
}

impl KnowledgeBaseService {
    /// Wraps a biobank with a cache of `cache_capacity` entries per type.
    pub fn new(bank: Biobank, clock: SimClock, cache_capacity: usize) -> Self {
        KnowledgeBaseService {
            bank,
            clock,
            remote_latency: SimDuration::from_millis(40),
            local_latency: SimDuration::from_micros(5),
            drug_cache: LruCache::new(cache_capacity.max(1)),
            disease_cache: LruCache::new(cache_capacity.max(1)),
        }
    }

    /// Overrides the latency model.
    #[must_use]
    pub fn with_latencies(mut self, remote: SimDuration, local: SimDuration) -> Self {
        self.remote_latency = remote;
        self.local_latency = local;
        self
    }

    /// Looks up a drug, going to the cache first.
    pub fn drug(&mut self, index: usize) -> KbAnswer<Drug> {
        if let Some(hit) = self.drug_cache.get(&index) {
            self.clock.advance(self.local_latency);
            return KbAnswer {
                value: Some(hit),
                cached: true,
                latency: self.local_latency,
            };
        }
        self.clock.advance(self.remote_latency);
        let value = self.bank.drugs.get(index).cloned();
        if let Some(v) = &value {
            self.drug_cache.put(index, v.clone());
        }
        KbAnswer {
            value,
            cached: false,
            latency: self.remote_latency,
        }
    }

    /// Looks up a disease, going to the cache first.
    pub fn disease(&mut self, index: usize) -> KbAnswer<Disease> {
        if let Some(hit) = self.disease_cache.get(&index) {
            self.clock.advance(self.local_latency);
            return KbAnswer {
                value: Some(hit),
                cached: true,
                latency: self.local_latency,
            };
        }
        self.clock.advance(self.remote_latency);
        let value = self.bank.diseases.get(index).cloned();
        if let Some(v) = &value {
            self.disease_cache.put(index, v.clone());
        }
        KbAnswer {
            value,
            cached: false,
            latency: self.remote_latency,
        }
    }

    /// Bypasses the cache for the freshest data (always remote cost).
    pub fn drug_fresh(&mut self, index: usize) -> KbAnswer<Drug> {
        self.clock.advance(self.remote_latency);
        KbAnswer {
            value: self.bank.drugs.get(index).cloned(),
            cached: false,
            latency: self.remote_latency,
        }
    }

    /// The underlying biobank.
    pub fn bank(&self) -> &Biobank {
        &self.bank
    }

    /// Cache hit ratio across both caches.
    pub fn cache_hit_ratio(&self) -> f64 {
        let d = self.drug_cache.stats();
        let s = self.disease_cache.stats();
        let hits = d.hits + s.hits;
        let total = d.lookups() + s.lookups();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biobank::BiobankConfig;

    fn service() -> KnowledgeBaseService {
        let bank = Biobank::generate(
            &BiobankConfig {
                n_drugs: 20,
                n_diseases: 10,
                ..BiobankConfig::default()
            },
            3,
        );
        KnowledgeBaseService::new(bank, SimClock::new(), 8)
    }

    #[test]
    fn second_lookup_is_cached_and_cheap() {
        let mut svc = service();
        let cold = svc.drug(3);
        assert!(!cold.cached);
        let warm = svc.drug(3);
        assert!(warm.cached);
        assert!(warm.latency < cold.latency);
        assert_eq!(warm.value.unwrap().index, 3);
    }

    #[test]
    fn fresh_lookup_bypasses_cache() {
        let mut svc = service();
        let _ = svc.drug(3);
        let fresh = svc.drug_fresh(3);
        assert!(!fresh.cached);
    }

    #[test]
    fn missing_entity_returns_none() {
        let mut svc = service();
        assert!(svc.drug(999).value.is_none());
        assert!(svc.disease(999).value.is_none());
    }

    #[test]
    fn hit_ratio_tracks_traffic() {
        let mut svc = service();
        let _ = svc.drug(1);
        let _ = svc.drug(1);
        let _ = svc.disease(2);
        let _ = svc.disease(2);
        assert!((svc.cache_hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clock_charged_per_lookup() {
        let mut svc = service();
        let before = svc.clock.now();
        let _ = svc.drug(1);
        let after = svc.clock.now();
        assert_eq!(after.duration_since(before).as_millis(), 40);
    }
}
