//! A PubMed-like synthetic corpus with extractable planted facts.
//!
//! §I: "There are millions of scientific articles available in PubMed, and
//! natural language processing techniques which can automatically extract
//! important information from these papers are being used." This module
//! generates abstracts containing treatment assertions in a few surface
//! forms (plus distractor sentences), and a pattern-based extractor whose
//! precision/recall against the plant is measurable — the platform's
//! "standard tests which we run to test the accuracy of the services".

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A planted fact: drug treats disease.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TreatmentFact {
    /// Drug index.
    pub drug: usize,
    /// Disease index.
    pub disease: usize,
}

/// A synthetic abstract.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Article {
    /// Article id.
    pub id: usize,
    /// Title.
    pub title: String,
    /// Abstract body.
    pub body: String,
    /// Facts actually asserted by the body (ground truth).
    pub facts: Vec<TreatmentFact>,
}

/// The corpus.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// All articles.
    pub articles: Vec<Article>,
}

fn drug_name(d: usize) -> String {
    format!("drug-{d:03}")
}

fn disease_name(s: usize) -> String {
    format!("disease-{s:03}")
}

impl Corpus {
    /// Generates `n_articles` abstracts over the given entity universe.
    pub fn generate(n_articles: usize, n_drugs: usize, n_diseases: usize, seed: u64) -> Self {
        let mut rng = hc_common::rng::seeded_stream(seed, 404);
        let articles = (0..n_articles)
            .map(|id| {
                let drug = rng.gen_range(0..n_drugs);
                let disease = rng.gen_range(0..n_diseases);
                let mut facts = vec![TreatmentFact { drug, disease }];
                let surface = rng.gen_range(0..4);
                let mut body = match surface {
                    0 => format!(
                        "In a randomized trial, {} was effective in treating {}.",
                        drug_name(drug),
                        disease_name(disease)
                    ),
                    1 => format!(
                        "{} significantly improved outcomes in patients with {}.",
                        drug_name(drug),
                        disease_name(disease)
                    ),
                    2 => format!(
                        "We report that {} reduces the severity of {}.",
                        drug_name(drug),
                        disease_name(disease)
                    ),
                    // A phrasing outside the extractor's pattern set —
                    // a real fact it will miss (bounds recall).
                    _ => format!(
                        "{} markedly ameliorated the course of {}.",
                        drug_name(drug),
                        disease_name(disease)
                    ),
                };
                // A negation trap: contains a positive pattern but the
                // finding failed — naive extraction yields a false
                // positive (bounds precision).
                if rng.gen_bool(0.12) {
                    let d5 = rng.gen_range(0..n_drugs);
                    let s5 = rng.gen_range(0..n_diseases);
                    body.push_str(&format!(
                        " An early report that {} reduces the severity of {} was later retracted.",
                        drug_name(d5),
                        disease_name(s5)
                    ));
                }
                // Distractors: mentions that are NOT treatment assertions.
                if rng.gen_bool(0.5) {
                    let d2 = rng.gen_range(0..n_drugs);
                    let s2 = rng.gen_range(0..n_diseases);
                    body.push_str(&format!(
                        " However, {} showed no benefit for {}.",
                        drug_name(d2),
                        disease_name(s2)
                    ));
                }
                if rng.gen_bool(0.3) {
                    let d3 = rng.gen_range(0..n_drugs);
                    let s3 = rng.gen_range(0..n_diseases);
                    body.push_str(&format!(
                        " Prior work studied {} and {} independently.",
                        drug_name(d3),
                        disease_name(s3)
                    ));
                }
                // Occasionally a second true assertion.
                if rng.gen_bool(0.2) {
                    let d4 = rng.gen_range(0..n_drugs);
                    let s4 = rng.gen_range(0..n_diseases);
                    body.push_str(&format!(
                        " Additionally, {} was effective in treating {}.",
                        drug_name(d4),
                        disease_name(s4)
                    ));
                    facts.push(TreatmentFact {
                        drug: d4,
                        disease: s4,
                    });
                }
                Article {
                    id,
                    title: format!(
                        "{} in the management of {}",
                        drug_name(drug),
                        disease_name(disease)
                    ),
                    body,
                    facts,
                }
            })
            .collect();
        Corpus { articles }
    }

    /// The union of all planted facts.
    pub fn all_facts(&self) -> Vec<TreatmentFact> {
        let mut facts: Vec<TreatmentFact> =
            self.articles.iter().flat_map(|a| a.facts.clone()).collect();
        facts.sort();
        facts.dedup();
        facts
    }
}

fn parse_entity(token: &str, prefix: &str) -> Option<usize> {
    let token = token.trim_end_matches(['.', ',', ';']);
    token.strip_prefix(prefix)?.parse().ok()
}

/// Extracts treatment facts from an abstract with sentence patterns.
///
/// Recognizes the positive surface forms ("effective in treating",
/// "significantly improved outcomes in patients with", "reduces the
/// severity of") and ignores negative/neutral mentions.
pub fn extract_facts(body: &str) -> Vec<TreatmentFact> {
    let mut facts = Vec::new();
    for sentence in body.split('.') {
        let sentence = sentence.trim();
        let positive = sentence.contains("effective in treating")
            || sentence.contains("significantly improved outcomes in patients with")
            || sentence.contains("reduces the severity of");
        if !positive || sentence.contains("no benefit") {
            continue;
        }
        let tokens: Vec<&str> = sentence.split_whitespace().collect();
        let drug = tokens.iter().find_map(|t| parse_entity(t, "drug-"));
        let disease = tokens.iter().find_map(|t| parse_entity(t, "disease-"));
        if let (Some(drug), Some(disease)) = (drug, disease) {
            facts.push(TreatmentFact { drug, disease });
        }
    }
    facts
}

/// Precision/recall of the extractor over a corpus.
pub fn extraction_accuracy(corpus: &Corpus) -> (f64, f64) {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for article in &corpus.articles {
        let extracted = extract_facts(&article.body);
        for f in &extracted {
            if article.facts.contains(f) {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        for f in &article.facts {
            if !extracted.contains(f) {
                fn_ += 1;
            }
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extractor_finds_planted_fact() {
        let facts = extract_facts("In a randomized trial, drug-007 was effective in treating disease-042.");
        assert_eq!(
            facts,
            vec![TreatmentFact {
                drug: 7,
                disease: 42
            }]
        );
    }

    #[test]
    fn extractor_ignores_negative_mentions() {
        let facts = extract_facts("However, drug-001 showed no benefit for disease-002.");
        assert!(facts.is_empty());
    }

    #[test]
    fn extractor_ignores_neutral_mentions() {
        let facts = extract_facts("Prior work studied drug-003 and disease-004 independently.");
        assert!(facts.is_empty());
    }

    #[test]
    fn corpus_accuracy_is_high_but_imperfect() {
        // The "standard tests" of §III: good but measurably imperfect —
        // unknown phrasings bound recall, negation traps bound precision.
        let corpus = Corpus::generate(600, 50, 40, 9);
        let (precision, recall) = extraction_accuracy(&corpus);
        assert!((0.75..1.0).contains(&precision), "precision={precision}");
        assert!((0.6..1.0).contains(&recall), "recall={recall}");
    }

    #[test]
    fn negation_trap_fools_extractor() {
        let facts = extract_facts(
            "An early report that drug-001 reduces the severity of disease-002 was later retracted.",
        );
        assert_eq!(facts.len(), 1, "the naive extractor takes the bait");
    }

    #[test]
    fn unknown_phrasing_is_missed() {
        let facts = extract_facts("drug-001 markedly ameliorated the course of disease-002.");
        assert!(facts.is_empty(), "recall is bounded by the pattern set");
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::generate(20, 10, 10, 1);
        let b = Corpus::generate(20, 10, 10, 1);
        assert_eq!(a.articles, b.articles);
    }

    #[test]
    fn all_facts_deduplicated() {
        let corpus = Corpus::generate(100, 5, 5, 2);
        let facts = corpus.all_facts();
        let mut sorted = facts.clone();
        sorted.dedup();
        assert_eq!(facts.len(), sorted.len());
    }
}
