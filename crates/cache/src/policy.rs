//! Eviction policies: LRU, LFU and TTL.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::Hash;

use crate::stats::CacheStats;

/// An object-safe cache with a pluggable eviction policy.
///
/// Values are returned by clone so implementations remain object-safe;
/// callers typically store cheaply clonable values (`Arc<T>`, `Bytes`).
pub trait CachePolicy<K, V> {
    /// Looks up `key`, updating recency/frequency metadata.
    fn get(&mut self, key: &K) -> Option<V>;

    /// Inserts or replaces `key`, evicting per policy when full.
    fn put(&mut self, key: K, value: V);

    /// Removes `key` if present, returning whether it was present.
    fn invalidate(&mut self, key: &K) -> bool;

    /// Current number of live entries.
    fn len(&self) -> usize;

    /// Whether the cache holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries.
    fn capacity(&self) -> usize;

    /// Counter snapshot.
    fn stats(&self) -> CacheStats;

    /// Removes every entry (counted as invalidations).
    fn clear(&mut self);
}

/// A least-recently-used cache.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    entries: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
    tick: u64,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates an LRU cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn touch(&mut self, key: &K) {
        if let Some((_, old_tick)) = self.entries.get(key) {
            let old_tick = *old_tick;
            self.recency.remove(&old_tick);
            self.tick += 1;
            let t = self.tick;
            self.recency.insert(t, key.clone());
            if let Some(entry) = self.entries.get_mut(key) {
                entry.1 = t;
            }
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> CachePolicy<K, V> for LruCache<K, V> {
    fn get(&mut self, key: &K) -> Option<V> {
        if self.entries.contains_key(key) {
            self.touch(key);
            self.stats.hits += 1;
            self.entries.get(key).map(|(v, _)| v.clone())
        } else {
            self.stats.misses += 1;
            None
        }
    }

    fn put(&mut self, key: K, value: V) {
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.0 = value;
            self.touch(&key);
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some((&oldest_tick, _)) = self.recency.iter().next() {
                if let Some(victim) = self.recency.remove(&oldest_tick) {
                    self.entries.remove(&victim);
                    self.stats.evictions += 1;
                }
            }
        }
        self.tick += 1;
        self.recency.insert(self.tick, key.clone());
        self.entries.insert(key, (value, self.tick));
    }

    fn invalidate(&mut self, key: &K) -> bool {
        if let Some((_, tick)) = self.entries.remove(key) {
            self.recency.remove(&tick);
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn clear(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.recency.clear();
    }
}

/// A least-frequently-used cache (ties broken by recency).
#[derive(Debug)]
pub struct LfuCache<K, V> {
    capacity: usize,
    entries: HashMap<K, (V, u64, u64)>, // value, count, tick
    order: BTreeSet<(u64, u64, K)>,     // (count, tick, key)
    tick: u64,
    stats: CacheStats,
}

impl<K: Eq + Hash + Ord + Clone, V: Clone> LfuCache<K, V> {
    /// Creates an LFU cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LfuCache {
            capacity,
            entries: HashMap::new(),
            order: BTreeSet::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn bump(&mut self, key: &K) {
        if let Some((_, count, tick)) = self.entries.get(key) {
            let (count, tick) = (*count, *tick);
            self.order.remove(&(count, tick, key.clone()));
            self.tick += 1;
            let new = (count + 1, self.tick);
            self.order.insert((new.0, new.1, key.clone()));
            if let Some(e) = self.entries.get_mut(key) {
                e.1 = new.0;
                e.2 = new.1;
            }
        }
    }
}

impl<K: Eq + Hash + Ord + Clone, V: Clone> CachePolicy<K, V> for LfuCache<K, V> {
    fn get(&mut self, key: &K) -> Option<V> {
        if self.entries.contains_key(key) {
            self.bump(key);
            self.stats.hits += 1;
            self.entries.get(key).map(|(v, _, _)| v.clone())
        } else {
            self.stats.misses += 1;
            None
        }
    }

    fn put(&mut self, key: K, value: V) {
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.0 = value;
            self.bump(&key);
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(victim) = self.order.iter().next().cloned() {
                self.order.remove(&victim);
                self.entries.remove(&victim.2);
                self.stats.evictions += 1;
            }
        }
        self.tick += 1;
        self.order.insert((1, self.tick, key.clone()));
        self.entries.insert(key, (value, 1, self.tick));
    }

    fn invalidate(&mut self, key: &K) -> bool {
        if let Some((_, count, tick)) = self.entries.remove(key) {
            self.order.remove(&(count, tick, key.clone()));
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn clear(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.order.clear();
    }
}

/// Wraps any policy with a time-to-live: entries older than `ttl` (on the
/// logical tick clock advanced by [`TtlCache::advance`]) are treated as
/// misses and dropped.
///
/// The paper: "It may not be feasible to cache rapidly changing data for
/// which it is very important to have updated copies" — TTL bounds the
/// staleness window for such data.
#[derive(Debug)]
pub struct TtlCache<K, V, C> {
    inner: C,
    ttl: u64,
    now: u64,
    inserted_at: HashMap<K, u64>,
    expirations: u64,
    _value: std::marker::PhantomData<V>,
}

impl<K: Eq + Hash + Clone, V: Clone, C: CachePolicy<K, V>> TtlCache<K, V, C> {
    /// Wraps `inner` with a TTL of `ttl` logical time units.
    ///
    /// # Panics
    ///
    /// Panics if `ttl` is zero.
    pub fn new(inner: C, ttl: u64) -> Self {
        assert!(ttl > 0, "ttl must be positive");
        TtlCache {
            inner,
            ttl,
            now: 0,
            inserted_at: HashMap::new(),
            expirations: 0,
            _value: std::marker::PhantomData,
        }
    }

    /// Advances the logical clock by `delta`.
    pub fn advance(&mut self, delta: u64) {
        self.now += delta;
    }

    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }
}

impl<K: Eq + Hash + Clone, V: Clone, C: CachePolicy<K, V>> CachePolicy<K, V>
    for TtlCache<K, V, C>
{
    fn get(&mut self, key: &K) -> Option<V> {
        if let Some(&at) = self.inserted_at.get(key) {
            if self.now.saturating_sub(at) >= self.ttl {
                self.inner.invalidate(key);
                self.inserted_at.remove(key);
                self.expirations += 1;
                // Fall through so the inner cache records the miss.
            }
        }
        self.inner.get(key)
    }

    fn put(&mut self, key: K, value: V) {
        self.inserted_at.insert(key.clone(), self.now);
        self.inner.put(key, value);
    }

    fn invalidate(&mut self, key: &K) -> bool {
        self.inserted_at.remove(key);
        self.inner.invalidate(key)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn stats(&self) -> CacheStats {
        let mut stats = self.inner.stats();
        stats.expirations = self.expirations;
        stats
    }

    fn clear(&mut self) {
        self.inserted_at.clear();
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(1));
        c.put("c", 3);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lru_update_refreshes() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10); // refresh a
        c.put("c", 3); // evicts b
        assert_eq!(c.get(&"a"), Some(10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = LfuCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        let _ = c.get(&"a");
        let _ = c.get(&"a");
        c.put("c", 3); // b has lowest frequency
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(1));
    }

    #[test]
    fn lfu_ties_broken_by_recency() {
        let mut c = LfuCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        // Both have count 1; "a" is older → evicted.
        c.put("c", 3);
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.get(&"b"), Some(2));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = LruCache::new(4);
        c.put("a", 1);
        assert!(c.invalidate(&"a"));
        assert!(!c.invalidate(&"a"));
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn clear_empties() {
        let mut c = LfuCache::new(4);
        c.put(1, "x");
        c.put(2, "y");
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c = TtlCache::new(LruCache::new(4), 10);
        c.put("a", 1);
        assert_eq!(c.get(&"a"), Some(1));
        c.advance(10);
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn ttl_fresh_entries_survive() {
        let mut c = TtlCache::new(LruCache::new(4), 10);
        c.put("a", 1);
        c.advance(9);
        assert_eq!(c.get(&"a"), Some(1));
    }

    #[test]
    fn ttl_reinsert_resets_age() {
        let mut c = TtlCache::new(LruCache::new(4), 10);
        c.put("a", 1);
        c.advance(9);
        c.put("a", 2);
        c.advance(9);
        assert_eq!(c.get(&"a"), Some(2));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u32, u32>::new(0);
    }

    #[test]
    fn len_never_exceeds_capacity_lru() {
        let mut c = LruCache::new(3);
        for i in 0..100 {
            c.put(i, i);
            assert!(c.len() <= 3);
        }
    }

    proptest! {
        #[test]
        fn lru_len_bounded(ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..200)) {
            let mut c = LruCache::new(8);
            for (k, is_put) in ops {
                if is_put { c.put(k, k); } else { let _ = c.get(&k); }
                prop_assert!(c.len() <= 8);
            }
        }

        #[test]
        fn lfu_get_after_put_hits(keys in proptest::collection::vec(any::<u8>(), 1..50)) {
            let mut c = LfuCache::new(keys.len());
            for &k in &keys {
                c.put(k, u32::from(k));
                prop_assert_eq!(c.get(&k), Some(u32::from(k)));
            }
        }

        #[test]
        fn lru_most_recent_key_always_present(keys in proptest::collection::vec(any::<u16>(), 1..100)) {
            let mut c = LruCache::new(4);
            for &k in &keys {
                c.put(k, ());
            }
            let last = *keys.last().unwrap();
            prop_assert_eq!(c.get(&last), Some(()));
        }
    }
}
