//! Cache statistics.

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed (absent or expired).
    pub misses: u64,
    /// Entries evicted by the policy (not explicit invalidations).
    pub evictions: u64,
    /// Entries removed by explicit invalidation.
    pub invalidations: u64,
    /// Entries that expired (TTL caches only).
    pub expirations: u64,
}

impl CacheStats {
    /// The hit ratio in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_of_empty_is_zero() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn ratio_counts_hits() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.lookups(), 4);
    }
}
