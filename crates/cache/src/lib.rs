//! Multi-level caching for the healthcare cloud platform.
//!
//! Caching is one of the paper's headline performance features: "The cost
//! for accessing data from remote cloud servers can be orders of magnitude
//! higher than the cost for accessing data locally. … Our system employs
//! caching at multiple levels and not just at the client level" (§I), and
//! "Caching works best for data which do not change frequently. If the
//! data are changing frequently, cache consistency algorithms need to be
//! applied" (§III).
//!
//! * [`policy`] — eviction policies: [`policy::LruCache`],
//!   [`policy::LfuCache`], and a TTL wrapper [`policy::TtlCache`], all
//!   behind the object-safe [`policy::CachePolicy`] trait.
//! * [`stats`] — hit/miss/eviction accounting shared by every cache.
//! * [`multilevel`] — the client → server → origin [`multilevel::CacheHierarchy`]
//!   with per-level access latencies on the simulated clock, read-through
//!   fills and write-invalidate consistency.
//! * [`invalidation`] — the multi-client consistency protocol: a
//!   versioned origin publishes invalidations to every subscribed client
//!   cache (the "cache consistency algorithms" §III calls for).
//! * [`shard`] — the multi-core serving path: a lock-striped
//!   [`shard::ShardedCache`] (N power-of-two stripes, seeded-hash
//!   routing, per-shard eviction state and telemetry) and the sharded
//!   invalidation protocol ([`shard::ShardedOrigin`] /
//!   [`shard::ShardedClient`]) preserving the consistency semantics
//!   above while letting reader threads proceed in parallel.
//! * [`fleet`] — the multi-node serving path: a consistent-hash ring
//!   of cache nodes placed across simulated regions
//!   ([`fleet::CacheFleet`]), with R-way replication, read-repair, and
//!   write-invalidation fan-out riding the calibrated network model;
//!   node failure is absorbed by per-node circuit breakers and
//!   deadline budgets from `hc-resilience`.
//!
//! # Examples
//!
//! ```
//! use hc_cache::policy::{CachePolicy, LruCache};
//!
//! let mut cache = LruCache::new(2);
//! cache.put("a", 1);
//! cache.put("b", 2);
//! assert_eq!(cache.get(&"a"), Some(1)); // refresh "a"
//! cache.put("c", 3);                    // evicts "b"
//! assert_eq!(cache.get(&"b"), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod invalidation;
pub mod multilevel;
pub mod policy;
pub mod shard;
pub mod stats;
