//! Multi-client cache consistency via an invalidation bus.
//!
//! §III: "If the data are changing frequently, cache consistency
//! algorithms need to be applied to keep multiple versions of the data
//! consistent." A single [`crate::multilevel::CacheHierarchy`] handles
//! its own levels; *multiple independent clients* caching the same origin
//! need a protocol. The [`InvalidationBus`] implements the standard
//! write-invalidate scheme: every server-side write publishes the key,
//! each subscribed client drains its invalidation queue before serving
//! reads, and a version counter lets tests (and monitoring) measure the
//! stale-read window that remains between publish and drain.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use crossbeam::channel::{unbounded, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::policy::CachePolicy;

/// A versioned origin store shared by all clients.
#[derive(Debug)]
pub struct VersionedOrigin<K, V> {
    entries: Mutex<HashMap<K, (V, u64)>>,
    bus: InvalidationBus<K>,
}

type SubscriberList<K> = Mutex<Vec<(u64, Sender<K>)>>;

/// The invalidation bus: fan-out of written keys to subscribers.
pub struct InvalidationBus<K> {
    subscribers: Arc<SubscriberList<K>>,
    next_id: AtomicU64,
}

impl<K> std::fmt::Debug for InvalidationBus<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvalidationBus")
            .field("subscribers", &self.subscribers.lock().len())
            .finish()
    }
}

/// A live subscription to an [`InvalidationBus`].
///
/// Holds the receiving end of the invalidation channel plus a weak
/// back-reference to the bus's subscriber list: dropping a
/// `Subscription` removes its sender slot *immediately*, rather than
/// waiting for the next publish to notice the dead receiver. Without
/// this, a crashed fleet node that never publishes again would leak
/// its subscriber slot forever.
pub struct Subscription<K> {
    rx: crossbeam::channel::Receiver<K>,
    id: u64,
    list: Weak<SubscriberList<K>>,
}

impl<K> std::fmt::Debug for Subscription<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription").field("id", &self.id).finish()
    }
}

impl<K> Subscription<K> {
    /// Receives the next pending invalidation, if any.
    pub fn try_recv(&self) -> Result<K, TryRecvError> {
        self.rx.try_recv()
    }
}

impl<K> Drop for Subscription<K> {
    fn drop(&mut self) {
        // The bus may already be gone (Weak fails to upgrade) — fine:
        // its subscriber list died with it.
        if let Some(list) = self.list.upgrade() {
            list.lock().retain(|(id, _)| *id != self.id);
        }
    }
}

impl<K: Clone> InvalidationBus<K> {
    pub(crate) fn new() -> Self {
        InvalidationBus {
            subscribers: Arc::new(Mutex::new(Vec::new())),
            next_id: AtomicU64::new(0),
        }
    }

    pub(crate) fn subscribe(&self) -> Subscription<K> {
        // Invalidation keys are tiny and drained on every cache access;
        // a bounded channel would deadlock the single-threaded simulation
        // when a burst of invalidations outruns the reader.
        // hc-lint: allow(sync-unbounded-channel)
        let (tx, rx) = unbounded();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subscribers.lock().push((id, tx));
        Subscription {
            rx,
            id,
            list: Arc::downgrade(&self.subscribers),
        }
    }

    /// Publishes `key`. Slots are normally reclaimed by
    /// [`Subscription`]'s `Drop`; the disconnected-send check here is a
    /// backstop for receivers dropped without their guard (e.g. a
    /// `mem::forget`-style leak), so a dead client can still cost at
    /// most one failed send.
    pub(crate) fn publish(&self, key: &K) {
        self.subscribers
            .lock()
            .retain(|(_, tx)| tx.send(key.clone()).is_ok());
    }

    /// Live subscriber count. Dropped subscriptions prune themselves,
    /// so this reflects drops immediately — no publish required.
    pub(crate) fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

impl<K: Clone + Eq + Hash, V: Clone> VersionedOrigin<K, V> {
    /// Creates an empty origin.
    pub fn new() -> Arc<Self> {
        Arc::new(VersionedOrigin {
            entries: Mutex::new(HashMap::new()),
            bus: InvalidationBus::new(),
        })
    }

    /// Writes a value, bumping its version and publishing an
    /// invalidation.
    pub fn write(&self, key: K, value: V) -> u64 {
        let mut entries = self.entries.lock();
        let version = entries.get(&key).map(|(_, v)| v + 1).unwrap_or(1);
        entries.insert(key.clone(), (value, version));
        drop(entries);
        self.bus.publish(&key);
        version
    }

    /// Reads the current value and version.
    pub fn read(&self, key: &K) -> Option<(V, u64)> {
        self.entries.lock().get(key).cloned()
    }

    /// The current version of a key (0 = absent).
    pub fn version(&self, key: &K) -> u64 {
        self.entries.lock().get(key).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Number of live subscribers on the bus. Dropped clients prune
    /// their slot on drop, so this reflects them immediately.
    pub fn subscriber_count(&self) -> usize {
        self.bus.subscriber_count()
    }
}

impl<K: Clone + Eq + Hash, V: Clone> Default for VersionedOrigin<K, V> {
    fn default() -> Self {
        VersionedOrigin {
            entries: Mutex::new(HashMap::new()),
            bus: InvalidationBus::new(),
        }
    }
}

/// A client cache kept consistent through the bus.
pub struct ConsistentClient<K, V, C> {
    origin: Arc<VersionedOrigin<K, V>>,
    cache: C,
    inbox: Subscription<K>,
    stale_reads: u64,
    _value: std::marker::PhantomData<V>,
}

impl<K, V, C: std::fmt::Debug> std::fmt::Debug for ConsistentClient<K, V, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsistentClient")
            .field("cache", &self.cache)
            .field("stale_reads", &self.stale_reads)
            .finish()
    }
}

impl<K, V, C> ConsistentClient<K, V, C>
where
    K: Clone + Eq + Hash,
    V: Clone,
    C: CachePolicy<K, (V, u64)>,
{
    /// Subscribes a new client with its own cache.
    pub fn subscribe(origin: Arc<VersionedOrigin<K, V>>, cache: C) -> Self {
        let inbox = origin.bus.subscribe();
        ConsistentClient {
            origin,
            cache,
            inbox,
            stale_reads: 0,
            _value: std::marker::PhantomData,
        }
    }

    /// Applies all pending invalidations. Returns how many were applied.
    pub fn drain_invalidations(&mut self) -> usize {
        let mut applied = 0;
        while let Ok(key) = self.inbox.try_recv() {
            self.cache.invalidate(&key);
            applied += 1;
        }
        applied
    }

    /// Consistent read: drains invalidations, then serves from cache or
    /// origin. With this protocol a read never returns a value older
    /// than the last write that was *published before the read began*.
    pub fn read(&mut self, key: &K) -> Option<V> {
        self.drain_invalidations();
        if let Some((value, version)) = self.cache.get(key) {
            // Instrumentation: count residual staleness (only possible
            // from writes racing this read).
            if version != self.origin.version(key) {
                self.stale_reads += 1;
            }
            return Some(value);
        }
        let (value, version) = self.origin.read(key)?;
        self.cache.put(key.clone(), (value.clone(), version));
        Some(value)
    }

    /// Unsafe-mode read that skips draining (quantifies what the
    /// protocol buys; used by tests and E2 commentary).
    pub fn read_without_draining(&mut self, key: &K) -> Option<V> {
        if let Some((value, version)) = self.cache.get(key) {
            if version != self.origin.version(key) {
                self.stale_reads += 1;
            }
            return Some(value);
        }
        let (value, version) = self.origin.read(key)?;
        self.cache.put(key.clone(), (value.clone(), version));
        Some(value)
    }

    /// Stale reads observed so far.
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LruCache;

    type Client = ConsistentClient<String, u64, LruCache<String, (u64, u64)>>;

    fn client(origin: &Arc<VersionedOrigin<String, u64>>) -> Client {
        ConsistentClient::subscribe(Arc::clone(origin), LruCache::new(16))
    }

    #[test]
    fn writes_invalidate_all_subscribers() {
        let origin = VersionedOrigin::new();
        let mut a = client(&origin);
        let mut b = client(&origin);
        origin.write("k".into(), 1);
        assert_eq!(a.read(&"k".to_string()), Some(1));
        assert_eq!(b.read(&"k".to_string()), Some(1));
        origin.write("k".into(), 2);
        assert_eq!(a.read(&"k".to_string()), Some(2), "a sees the new value");
        assert_eq!(b.read(&"k".to_string()), Some(2), "b sees the new value");
        assert_eq!(a.stale_reads() + b.stale_reads(), 0);
    }

    #[test]
    fn skipping_the_protocol_serves_stale_data() {
        let origin = VersionedOrigin::new();
        let mut a = client(&origin);
        origin.write("k".into(), 1);
        assert_eq!(a.read(&"k".to_string()), Some(1));
        origin.write("k".into(), 2);
        // Without draining, the cached version 1 is served — stale.
        assert_eq!(a.read_without_draining(&"k".to_string()), Some(1));
        assert_eq!(a.stale_reads(), 1);
        // The protocolful read repairs it.
        assert_eq!(a.read(&"k".to_string()), Some(2));
    }

    #[test]
    fn drain_applies_each_invalidation_once() {
        let origin = VersionedOrigin::new();
        let mut a = client(&origin);
        origin.write("x".into(), 1);
        origin.write("y".into(), 1);
        let _ = a.read(&"x".to_string());
        origin.write("x".into(), 2);
        origin.write("y".into(), 2);
        assert_eq!(a.drain_invalidations(), 2);
        assert_eq!(a.drain_invalidations(), 0);
    }

    #[test]
    fn absent_keys_are_none() {
        let origin: Arc<VersionedOrigin<String, u64>> = VersionedOrigin::new();
        let mut a = client(&origin);
        assert_eq!(a.read(&"ghost".to_string()), None);
    }

    #[test]
    fn versions_monotonically_increase() {
        let origin: Arc<VersionedOrigin<String, u64>> = VersionedOrigin::new();
        assert_eq!(origin.write("k".into(), 10), 1);
        assert_eq!(origin.write("k".into(), 20), 2);
        assert_eq!(origin.version(&"k".to_string()), 2);
        assert_eq!(origin.version(&"ghost".to_string()), 0);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let origin: Arc<VersionedOrigin<String, u64>> = VersionedOrigin::new();
        {
            let _short_lived = client(&origin);
        }
        // Publishing after the subscriber dropped must not error or leak.
        origin.write("k".into(), 1);
        origin.write("k".into(), 2);
        let mut a = client(&origin);
        assert_eq!(a.read(&"k".to_string()), Some(2));
    }

    #[test]
    fn dropped_subscriber_frees_slot_without_a_publish() {
        let origin: Arc<VersionedOrigin<String, u64>> = VersionedOrigin::new();
        let keep = client(&origin);
        {
            let _a = client(&origin);
            let _b = client(&origin);
            assert_eq!(origin.subscriber_count(), 3);
        }
        // Regression: pruning used to happen only inside publish, so a
        // subscriber that crashed and never saw another write leaked its
        // slot forever. Drop now reclaims it eagerly.
        assert_eq!(origin.subscriber_count(), 1);
        origin.write("k".into(), 1);
        assert_eq!(origin.subscriber_count(), 1);
        drop(keep);
        assert_eq!(origin.subscriber_count(), 0);
        // Publishing into an empty bus is a no-op, not an error.
        origin.write("k".into(), 2);
        assert_eq!(origin.subscriber_count(), 0);
    }

    #[test]
    fn subscription_outliving_bus_drops_cleanly() {
        let bus: InvalidationBus<u64> = InvalidationBus::new();
        let sub = bus.subscribe();
        drop(bus);
        // The Weak back-reference fails to upgrade; Drop must not panic.
        drop(sub);
    }
}
