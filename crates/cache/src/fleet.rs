//! A distributed cache fleet: consistent hashing, replication, and
//! cross-region invalidation.
//!
//! §II-C's intercloud argument ("the cost for accessing data from remote
//! cloud servers can be orders of magnitude higher") assumes data is
//! served near its home region. This module scales the intra-process
//! [`ShardedCache`] out into a fleet of
//! cache *nodes* placed at [`Location`]s on the simulated topology:
//!
//! * a [`HashRing`] maps each key to `R` distinct nodes (equal-width
//!   arcs with rendezvous-elected owners for balance, seeded placement
//!   for determinism);
//! * reads fan out to the replica set in parallel and are served by the
//!   nearest live replica, paying that replica's round trip on the
//!   calibrated [`NetworkModel`] (local µs / intra-DC 0.5 ms /
//!   inter-cloud 50 ms);
//! * replica divergence observed during a read triggers *read-repair*:
//!   stale or missing copies are rewritten to the newest version seen;
//! * writes publish *invalidations* that ride the network model to every
//!   replica, so the staleness window is bounded by the slowest link in
//!   the fan-out (plus the drain cadence);
//! * node failure and partitions reuse `hc-resilience`: a
//!   [`CircuitBreaker`] per node stops reads from waiting on a dead
//!   replica after a few probe timeouts, and every read runs under a
//!   caller-supplied [`TimeoutBudget`] deadline.
//!
//! The fleet is deterministic: ring placement, replica ordering and
//! delivery ordering depend only on the seed and the simulated clock,
//! never on wall time or iteration order of a hash map.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};

use hc_cloudsim::net::{Location, NetworkModel};
use hc_common::clock::{SimClock, SimDuration, SimInstant};
use hc_resilience::breaker::CircuitBreaker;
use hc_resilience::timeout::TimeoutBudget;

use crate::policy::LruCache;
use crate::shard::{shard_capacity, SeededFnv, ShardedCache};

/// Hashes one `(arc, node)` rendezvous ballot or a key onto the ring.
fn ring_hash<T: Hash + ?Sized>(seed: u64, value: &T) -> u64 {
    let mut h = SeededFnv::new(seed);
    value.hash(&mut h);
    h.finish()
}

/// How many equal-width arcs the ring carves out per configured vnode.
///
/// Placing vnodes at i.i.d. hashed points caps balance at a coefficient
/// of variation of `1/sqrt(vnodes)` (≈ 6% at 256 — a worst-case max/min
/// load ratio near 1.3), so instead the ring is pre-carved into
/// `vnodes × ARCS_PER_VNODE` *equal-width* arcs and each arc elects its
/// owner by seeded rendezvous (highest-random-weight) hashing over the
/// membership. Equal arcs make node load binomial (CV
/// `sqrt(n / arcs)` — well under 3% for the fleets simulated here), and
/// rendezvous election keeps the consistent-hashing contract exact: a
/// join claims only the arcs the newcomer wins, a leave re-homes only
/// the leaver's arcs.
pub const ARCS_PER_VNODE: usize = 64;

/// A consistent-hash ring with seeded placement.
///
/// The ring is split into `vnodes × `[`ARCS_PER_VNODE`] equal-width
/// arcs; each arc is owned by the member maximising
/// `hash(seed, (arc, node))` (rendezvous hashing). A key lands on the
/// arc containing `hash(seed, key)`; its replica set is the owner of
/// that arc followed by the next *distinct* owners walking clockwise.
/// Losing a node re-routes only the arcs it owned (≈ `1/N` of the
/// keyspace) instead of reshuffling everything — the property E20
/// measures.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `owners[q]` is the member owning arc `q`; empty until the first
    /// member joins.
    owners: Vec<usize>,
    seed: u64,
    arcs: usize,
    members: Vec<usize>,
}

impl HashRing {
    /// An empty ring with `vnodes × `[`ARCS_PER_VNODE`] arcs.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes` is zero — a ring with no arcs could own
    /// nothing and silently unbalance every replica set.
    pub fn new(seed: u64, vnodes: usize) -> Self {
        assert!(vnodes > 0, "a ring needs at least one vnode");
        HashRing {
            owners: Vec::new(),
            seed,
            arcs: vnodes * ARCS_PER_VNODE,
            members: Vec::new(),
        }
    }

    /// The arc containing ring position `h` (multiplicative range map,
    /// no modulo bias).
    fn arc_of(&self, h: u64) -> usize {
        ((u128::from(h) * self.arcs as u128) >> 64) as usize
    }

    /// Re-elects every arc's owner from the current membership. Pure
    /// function of `(seed, arcs, members)`, so two rings built through
    /// different join/leave histories converge to identical placement.
    fn rebuild(&mut self) {
        if self.members.is_empty() {
            self.owners.clear();
            return;
        }
        let owners = (0..self.arcs)
            .map(|q| {
                self.members
                    .iter()
                    .copied()
                    .max_by_key(|&n| (ring_hash(self.seed, &(q, n)), Reverse(n)))
                    .expect("membership checked non-empty") // hc-lint: allow(panic-expect)
            })
            .collect();
        self.owners = owners;
    }

    /// Adds `node` to the ring (no-op if already a member).
    pub fn add_node(&mut self, node: usize) {
        if self.members.contains(&node) {
            return;
        }
        self.members.push(node);
        self.members.sort_unstable();
        self.rebuild();
    }

    /// Removes `node` from the ring (no-op if absent).
    pub fn remove_node(&mut self, node: usize) {
        self.members.retain(|&m| m != node);
        self.rebuild();
    }

    /// Current member node ids, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The node owning `key` (its primary replica), or `None` on an
    /// empty ring.
    pub fn primary<K: Hash + ?Sized>(&self, key: &K) -> Option<usize> {
        self.replicas(key, 1).first().copied()
    }

    /// The first `r` distinct arc owners clockwise from `key`'s arc:
    /// primary first, then followers. Returns fewer than `r` when the
    /// ring has fewer members.
    pub fn replicas<K: Hash + ?Sized>(&self, key: &K, r: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(r.min(self.members.len()));
        if self.owners.is_empty() || r == 0 {
            return out;
        }
        let r = r.min(self.members.len());
        let start = self.arc_of(ring_hash(self.seed, key));
        for i in 0..self.arcs {
            let node = self.owners[(start + i) % self.arcs]; // hc-lint: allow(panic-index)
            if !out.contains(&node) {
                out.push(node);
                if out.len() == r {
                    break;
                }
            }
        }
        out
    }

    /// Fraction of `sample` keys whose primary differs between `self`
    /// and `other` — the rebalance cost of a membership change. On a
    /// healthy ring, adding one node to `n` moves ≈ `1/(n+1)`.
    pub fn moved_fraction<K: Hash>(&self, other: &HashRing, sample: &[K]) -> f64 {
        if sample.is_empty() {
            return 0.0;
        }
        let moved = sample
            .iter()
            .filter(|k| self.primary(*k) != other.primary(*k))
            .count();
        moved as f64 / sample.len() as f64
    }

    /// Keys-per-node histogram over a key sample: `counts[i]` is how
    /// many sample keys the `i`-th member (ascending id order) owns.
    pub fn load_counts<K: Hash>(&self, sample: &[K]) -> Vec<(usize, usize)> {
        let mut counts: Vec<(usize, usize)> = self.members.iter().map(|&m| (m, 0)).collect();
        for key in sample {
            if let Some(p) = self.primary(key) {
                if let Some(slot) = counts.iter_mut().find(|(m, _)| *m == p) {
                    slot.1 += 1;
                }
            }
        }
        counts
    }
}

/// Configuration for a [`CacheFleet`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Replicas per key (primary + `replication - 1` followers).
    pub replication: usize,
    /// Ring resolution: the ring has `vnodes ×` [`ARCS_PER_VNODE`]
    /// equal-width arcs; more vnodes means tighter load balance.
    pub vnodes: usize,
    /// Total entry capacity of each node's cache.
    pub node_capacity: usize,
    /// Lock stripes inside each node's cache (non-zero power of two).
    pub node_shards: usize,
    /// Seed for ring placement and shard routing.
    pub seed: u64,
    /// Latency/bandwidth model for replica traffic.
    pub network: NetworkModel,
    /// Time a read burns discovering that a probed node is dead (before
    /// its breaker opens and stops the probes).
    pub probe_timeout: SimDuration,
    /// Consecutive probe failures before a node's breaker opens.
    pub breaker_trip_threshold: u32,
    /// How long an open breaker waits before re-probing the node.
    pub breaker_cooldown: SimDuration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replication: 3,
            vnodes: 128,
            node_capacity: 4096,
            node_shards: 8,
            seed: 0xF1EE7,
            network: NetworkModel::default(),
            probe_timeout: SimDuration::from_millis(5),
            breaker_trip_threshold: 3,
            breaker_cooldown: SimDuration::from_millis(250),
        }
    }
}

/// A node's local store: versioned values behind the lock-striped cache.
type NodeCache<K, V> = ShardedCache<K, (V, u64), LruCache<K, (V, u64)>>;

/// One replica's answer to a read probe: `(node, copy, round trip)`.
type ProbeResponse<V> = (usize, Option<(V, u64)>, SimDuration);

/// Per-node state: a sharded cache pinned to a topology location, plus
/// the circuit breaker that guards reads against it.
struct FleetNode<K, V> {
    location: Location,
    cache: NodeCache<K, V>,
    breaker: CircuitBreaker,
    up: bool,
}

/// The outcome of a fleet read.
#[derive(Clone, Debug, PartialEq)]
pub enum FleetRead<V> {
    /// Served by replica `node` at `cost` (its round trip plus any
    /// probe time burnt on dead replicas ahead of it).
    Hit {
        /// The newest value seen across the replica set.
        value: V,
        /// Its version.
        version: u64,
        /// The serving node's id.
        node: usize,
        /// Simulated time the read cost the caller.
        cost: SimDuration,
    },
    /// No replica holds the key (or none was reachable in budget).
    Miss {
        /// Simulated time burnt learning that.
        cost: SimDuration,
    },
}

impl<V> FleetRead<V> {
    /// The simulated cost of this read, hit or miss.
    pub fn cost(&self) -> SimDuration {
        match self {
            FleetRead::Hit { cost, .. } | FleetRead::Miss { cost } => *cost,
        }
    }

    /// Whether the read hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, FleetRead::Hit { .. })
    }
}

/// Running counters, exposed raw for harness assertions (the `fleet.*`
/// telemetry family mirrors them when [`CacheFleet::instrument`] is on).
#[derive(Clone, Debug, Default)]
pub struct FleetStats {
    /// Reads served by some replica.
    pub hits: u64,
    /// Reads no replica could serve.
    pub misses: u64,
    /// Stale or missing replica copies rewritten by read-repair.
    pub read_repairs: u64,
    /// Reads that observed replicas disagreeing on a key's version.
    pub divergent_reads: u64,
    /// Probes that found a node dead or unreachable.
    pub probe_failures: u64,
    /// Probes a node's open breaker suppressed (fast-fail, no timeout).
    pub breaker_skips: u64,
    /// Invalidation deliveries scheduled.
    pub invalidations_sent: u64,
    /// Invalidation deliveries applied at a replica.
    pub invalidations_delivered: u64,
    /// Deliveries parked behind a partition, awaiting heal.
    pub invalidations_parked: u64,
    /// Deliveries dropped because the target was down (its cache is
    /// cleared on crash, so the invalidation is moot).
    pub invalidations_dropped: u64,
    /// Worst write→last-replica-invalidated gap seen so far.
    pub max_staleness: SimDuration,
}

/// Telemetry handles for the `fleet.*` metric family.
struct FleetInstruments {
    node_hits: Vec<hc_telemetry::Counter>,
    node_misses: Vec<hc_telemetry::Counter>,
    read_repairs: hc_telemetry::Counter,
    divergence: hc_telemetry::Histogram,
    probe_failures: hc_telemetry::Counter,
    fanout_latency: hc_telemetry::Histogram,
    staleness: hc_telemetry::Histogram,
    parked: hc_telemetry::Gauge,
    nodes_up: hc_telemetry::Gauge,
}

/// A pending invalidation delivery: `(due, seq, node, written, key)`.
/// Ordered by due time then sequence number, so simultaneous deliveries
/// apply in publish order — deterministic across runs.
type Delivery<K> = (SimInstant, u64, usize, SimInstant, K);

/// A delivery parked behind a partition: `(node, written, from, key)`.
type Parked<K> = (usize, SimInstant, Location, K);

/// A replicated, region-aware cache fleet on the simulated topology.
///
/// See the [module docs](self) for the protocol. All time is accounted
/// against the shared [`SimClock`] handed to [`CacheFleet::new`];
/// callers advance it and call [`CacheFleet::tick`] to land in-flight
/// invalidation deliveries.
pub struct CacheFleet<K, V> {
    cfg: FleetConfig,
    clock: SimClock,
    ring: HashRing,
    nodes: Vec<FleetNode<K, V>>,
    /// Regions currently cut off from the rest of the topology.
    partitioned: Vec<bool>,
    pending: BinaryHeap<Reverse<Delivery<K>>>,
    parked: Vec<Parked<K>>,
    seq: u64,
    stats: FleetStats,
    instruments: Option<FleetInstruments>,
}

impl<K, V> std::fmt::Debug for CacheFleet<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheFleet")
            .field("nodes", &self.nodes.len())
            .field("replication", &self.cfg.replication)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl<K, V> CacheFleet<K, V>
where
    K: Hash + Eq + Ord + Clone,
    V: Clone,
{
    /// An empty fleet on `clock`; add nodes with
    /// [`add_node`](CacheFleet::add_node).
    pub fn new(cfg: FleetConfig, clock: SimClock) -> Self {
        let ring = HashRing::new(cfg.seed, cfg.vnodes);
        CacheFleet {
            cfg,
            clock,
            ring,
            nodes: Vec::new(),
            partitioned: Vec::new(),
            pending: BinaryHeap::new(),
            parked: Vec::new(),
            seq: 0,
            stats: FleetStats::default(),
            instruments: None,
        }
    }

    /// Convenience: a fleet of `nodes_per_region` nodes in each of
    /// `regions` regions, hosts numbered within the region.
    pub fn with_topology(cfg: FleetConfig, clock: SimClock, regions: usize, nodes_per_region: usize) -> Self {
        let mut fleet = CacheFleet::new(cfg, clock);
        for region in 0..regions {
            for host in 0..nodes_per_region {
                fleet.add_node(Location::new(region, host));
            }
        }
        fleet
    }

    /// Adds a node at `location` and rebalances the ring. Returns the
    /// new node's id.
    pub fn add_node(&mut self, location: Location) -> usize {
        let id = self.nodes.len();
        let cache = ShardedCache::new(
            self.cfg.node_shards,
            hc_common::rng::split(self.cfg.seed, id as u64),
            |_| LruCache::new(shard_capacity(self.cfg.node_capacity, self.cfg.node_shards)),
        );
        let breaker = CircuitBreaker::new(self.clock.clone())
            .with_trip_threshold(self.cfg.breaker_trip_threshold)
            .with_cooldown(self.cfg.breaker_cooldown);
        self.nodes.push(FleetNode {
            location,
            cache,
            breaker,
            up: true,
        });
        if self.partitioned.len() <= location.region {
            self.partitioned.resize(location.region + 1, false);
        }
        self.ring.add_node(id);
        self.refresh_gauges();
        id
    }

    /// Decommissions a node: removes it from the ring and drops its
    /// contents. Keys it owned re-route to the next replicas clockwise.
    pub fn remove_node(&mut self, node: usize) {
        self.ring.remove_node(node);
        if let Some(n) = self.nodes.get_mut(node) {
            n.up = false;
            n.cache.clear();
        }
        self.refresh_gauges();
    }

    /// Registers the `fleet.*` metric family on `registry`.
    pub fn instrument(&mut self, registry: &hc_telemetry::Registry) {
        self.instruments = Some(FleetInstruments {
            node_hits: (0..self.nodes.len())
                .map(|i| registry.counter(&format!("fleet.node.{i}.hits")))
                .collect(),
            node_misses: (0..self.nodes.len())
                .map(|i| registry.counter(&format!("fleet.node.{i}.misses")))
                .collect(),
            read_repairs: registry.counter("fleet.read_repair.count"),
            divergence: registry.histogram("fleet.read_repair.divergence"),
            probe_failures: registry.counter("fleet.probe.failures"),
            fanout_latency: registry.histogram("fleet.invalidation.fanout_latency_ns"),
            staleness: registry.histogram("fleet.invalidation.staleness_ns"),
            parked: registry.gauge("fleet.invalidation.parked"),
            nodes_up: registry.gauge("fleet.nodes.up"),
        });
        self.refresh_gauges();
    }

    fn refresh_gauges(&mut self) {
        if let Some(inst) = &self.instruments {
            let up = self.nodes.iter().filter(|n| n.up).count();
            inst.nodes_up.set(up as i64);
            inst.parked.set(self.parked.len() as i64);
        }
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The ring (for balance/rebalance measurements).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Running counters.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// Number of nodes ever added (including crashed/decommissioned).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A node's topology location.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    pub fn node_location(&self, node: usize) -> Location {
        self.nodes[node].location // hc-lint: allow(panic-index)
    }

    /// Whether two locations can currently talk: same region, or
    /// neither side is partitioned off.
    fn reachable(&self, a: Location, b: Location) -> bool {
        a.region == b.region
            || (!self.partitioned.get(a.region).copied().unwrap_or(false)
                && !self.partitioned.get(b.region).copied().unwrap_or(false))
    }

    /// Crashes a node: it stops answering probes and loses its contents
    /// (a restart comes back cold).
    pub fn crash_node(&mut self, node: usize) {
        if let Some(n) = self.nodes.get_mut(node) {
            n.up = false;
            n.cache.clear();
        }
        self.refresh_gauges();
    }

    /// Restores a crashed node (cold — read-repair and fills warm it).
    pub fn restore_node(&mut self, node: usize) {
        if let Some(n) = self.nodes.get_mut(node) {
            n.up = true;
        }
        self.refresh_gauges();
    }

    /// Cuts `region` off from every other region. Traffic within the
    /// region still flows; cross-boundary invalidations park until
    /// [`heal_region`](CacheFleet::heal_region).
    pub fn partition_region(&mut self, region: usize) {
        if self.partitioned.len() <= region {
            self.partitioned.resize(region + 1, false);
        }
        self.partitioned[region] = true; // hc-lint: allow(panic-index)
    }

    /// Heals a partition: parked deliveries that can now cross re-enter
    /// the fan-out, due one network latency from now.
    pub fn heal_region(&mut self, region: usize) {
        if let Some(flag) = self.partitioned.get_mut(region) {
            *flag = false;
        }
        let parked = std::mem::take(&mut self.parked);
        for (node, written, from, key) in parked {
            let Some(target) = self.nodes.get(node) else { continue };
            if self.reachable(from, target.location) {
                let due = self.clock.now() + self.cfg.network.latency(from, target.location);
                self.seq += 1;
                self.pending.push(Reverse((due, self.seq, node, written, key)));
            } else {
                self.parked.push((node, written, from, key));
            }
        }
        self.refresh_gauges();
    }

    /// Replica candidates for `key`, nearest-first from `client`
    /// (latency, then node id — total and deterministic).
    fn replica_order(&self, key: &K, client: Location) -> Vec<usize> {
        let mut replicas = self.ring.replicas(key, self.cfg.replication);
        replicas.sort_by_key(|&n| {
            let loc = self.nodes.get(n).map(|node| node.location).unwrap_or(client);
            (self.cfg.network.latency(client, loc).as_nanos(), n)
        });
        replicas
    }

    /// Reads `key` from the replica set, fanning out in parallel.
    ///
    /// The read is served by the nearest live replica that holds the
    /// key, at its round trip. Dead replicas that are probed (breaker
    /// still closed) burn [`FleetConfig::probe_timeout`] and feed the
    /// breaker; replicas behind an open breaker are skipped for free. A
    /// miss costs the slowest probe that had to answer before the miss
    /// was definitive. All costs are clamped to what `budget` has left.
    ///
    /// If replicas disagree on the key's version, the newest value wins
    /// and stale or missing copies are rewritten (read-repair) off the
    /// request path.
    pub fn read(&mut self, key: &K, client: Location, budget: &TimeoutBudget) -> FleetRead<V> {
        let order = self.replica_order(key, client);
        let remaining = budget.remaining(&self.clock);
        let mut responses: Vec<ProbeResponse<V>> = Vec::new();
        let mut slowest_probe = SimDuration::ZERO;
        for node_id in order {
            let Some((location, up)) = self.nodes.get(node_id).map(|n| (n.location, n.up)) else {
                continue;
            };
            let rtt = self.cfg.network.latency(client, location).saturating_mul(2);
            let alive = up && self.reachable(client, location);
            let Some(node) = self.nodes.get_mut(node_id) else { continue };
            if !node.breaker.allow() {
                // Open breaker: fail fast, don't even send the probe.
                self.stats.breaker_skips += 1;
                continue;
            }
            if !alive {
                node.breaker.record_failure();
                self.stats.probe_failures += 1;
                if let Some(inst) = &self.instruments {
                    inst.probe_failures.inc();
                }
                slowest_probe = slowest_probe.max(self.cfg.probe_timeout);
                continue;
            }
            node.breaker.record_success();
            let answer = node.cache.get(key);
            if let Some(inst) = &self.instruments {
                let counters = if answer.is_some() {
                    &inst.node_hits
                } else {
                    &inst.node_misses
                };
                if let Some(c) = counters.get(node_id) {
                    c.inc();
                }
            }
            responses.push((node_id, answer, rtt));
        }

        // Newest version wins; candidates arrive nearest-first, so ties
        // go to the closest replica.
        let best = responses
            .iter()
            .filter_map(|(n, ans, rtt)| ans.as_ref().map(|(v, ver)| (*n, v.clone(), *ver, *rtt)))
            .max_by(|a, b| a.2.cmp(&b.2).then(b.3.cmp(&a.3)));

        match best {
            Some((node, value, version, rtt)) => {
                self.stats.hits += 1;
                self.read_repair(key, &value, version, &responses);
                let cost = rtt.min(remaining);
                FleetRead::Hit {
                    value,
                    version,
                    node,
                    cost,
                }
            }
            None => {
                self.stats.misses += 1;
                // A definitive miss waits for every live replica's
                // answer and every probed-dead replica's timeout.
                let slowest_answer = responses
                    .iter()
                    .map(|(_, _, rtt)| *rtt)
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                let cost = slowest_answer.max(slowest_probe).min(remaining);
                FleetRead::Miss { cost }
            }
        }
    }

    /// Rewrites replicas whose copy of `key` is older than `version`
    /// (or missing) with the winning value. Off the request path: the
    /// repair traffic is asynchronous and not charged to the reader.
    fn read_repair(
        &mut self,
        key: &K,
        value: &V,
        version: u64,
        responses: &[ProbeResponse<V>],
    ) {
        let mut diverged = false;
        let mut repairs = 0u64;
        for (node_id, answer, _) in responses {
            let stale = match answer {
                Some((_, v)) => *v < version,
                None => true,
            };
            if stale {
                diverged |= answer.is_some();
                if let Some(node) = self.nodes.get_mut(*node_id) {
                    node.cache.put(key.clone(), (value.clone(), version));
                    repairs += 1;
                }
            }
        }
        if repairs > 0 {
            self.stats.read_repairs += repairs;
            if diverged {
                self.stats.divergent_reads += 1;
            }
            if let Some(inst) = &self.instruments {
                inst.read_repairs.add(repairs);
                inst.divergence.record(repairs);
            }
        }
    }

    /// Fills `key` at every live, reachable replica (an origin fetch
    /// completing). Version-gated: a replica already holding something
    /// newer keeps it.
    pub fn fill(&mut self, key: &K, value: &V, version: u64, from: Location) {
        let replicas = self.ring.replicas(key, self.cfg.replication);
        for node_id in replicas {
            let reachable = self
                .nodes
                .get(node_id)
                .is_some_and(|n| self.reachable(from, n.location));
            if let Some(node) = self.nodes.get_mut(node_id) {
                if !node.up || !reachable {
                    continue;
                }
                let newer_exists = node.cache.get(key).is_some_and(|(_, v)| v >= version);
                if !newer_exists {
                    node.cache.put(key.clone(), (value.clone(), version));
                }
            }
        }
    }

    /// Publishes a write-invalidation for `key` from `from`: one
    /// delivery per replica, due one one-way network latency out.
    /// Deliveries to partitioned replicas park until the heal;
    /// deliveries to crashed replicas are dropped (the crash already
    /// emptied the cache).
    pub fn write_invalidate(&mut self, key: &K, from: Location) {
        let now = self.clock.now();
        let replicas = self.ring.replicas(key, self.cfg.replication);
        for node_id in replicas {
            let Some(node) = self.nodes.get(node_id) else { continue };
            self.stats.invalidations_sent += 1;
            if !node.up {
                self.stats.invalidations_dropped += 1;
                continue;
            }
            if !self.reachable(from, node.location) {
                self.stats.invalidations_parked += 1;
                self.parked.push((node_id, now, from, key.clone()));
                continue;
            }
            let due = now + self.cfg.network.latency(from, node.location);
            self.seq += 1;
            self.pending
                .push(Reverse((due, self.seq, node_id, now, key.clone())));
        }
        self.refresh_gauges();
    }

    /// Applies every invalidation delivery due by `now`, advancing the
    /// staleness accounting. Call this on the simulation's cadence
    /// (e.g. each closed-loop tick).
    pub fn tick(&mut self, now: SimInstant) {
        while let Some(Reverse((due, _, _, _, _))) = self.pending.peek() {
            if *due > now {
                break;
            }
            let Some(Reverse((due, _, node_id, written, key))) = self.pending.pop() else {
                break;
            };
            let Some(node) = self.nodes.get_mut(node_id) else { continue };
            if node.up {
                node.cache.invalidate(&key);
                self.stats.invalidations_delivered += 1;
            } else {
                self.stats.invalidations_dropped += 1;
            }
            let staleness = due.duration_since(written);
            self.stats.max_staleness = self.stats.max_staleness.max(staleness);
            if let Some(inst) = &self.instruments {
                inst.fanout_latency.record(staleness.as_nanos());
                inst.staleness.record(due.duration_since(written).as_nanos());
            }
        }
        self.refresh_gauges();
    }

    /// Each replica's view of `key`: `(node, version)`, version 0 when
    /// the replica has no copy. The convergence probe for the partition
    /// soak test: after a heal plus a read, all live replicas agree.
    pub fn replica_versions(&self, key: &K) -> Vec<(usize, u64)> {
        self.ring
            .replicas(key, self.cfg.replication)
            .into_iter()
            .map(|n| {
                let version = self
                    .nodes
                    .get(n)
                    .and_then(|node| node.cache.get(key))
                    .map(|(_, v)| v)
                    .unwrap_or(0);
                (n, version)
            })
            .collect()
    }

    /// Invalidation deliveries still in flight (not yet due).
    pub fn pending_deliveries(&self) -> usize {
        self.pending.len()
    }

    /// Deliveries parked behind a partition.
    pub fn parked_deliveries(&self) -> usize {
        self.parked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(clock: &SimClock) -> TimeoutBudget {
        TimeoutBudget::starting_now(clock, SimDuration::from_secs(1))
    }

    fn small_fleet(clock: &SimClock) -> CacheFleet<u64, u64> {
        let cfg = FleetConfig {
            node_capacity: 256,
            ..FleetConfig::default()
        };
        CacheFleet::with_topology(cfg, clock.clone(), 3, 2)
    }

    #[test]
    fn ring_is_deterministic() {
        let mut a = HashRing::new(7, 64);
        let mut b = HashRing::new(7, 64);
        for n in 0..6 {
            a.add_node(n);
            b.add_node(n);
        }
        for k in 0..500u64 {
            assert_eq!(a.replicas(&k, 3), b.replicas(&k, 3));
        }
    }

    #[test]
    fn replicas_are_distinct_and_capped() {
        let mut ring = HashRing::new(1, 32);
        for n in 0..4 {
            ring.add_node(n);
        }
        for k in 0..200u64 {
            let r = ring.replicas(&k, 3);
            assert_eq!(r.len(), 3);
            let mut sorted = r.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct nodes");
        }
        // Asking for more replicas than members returns all members.
        assert_eq!(ring.replicas(&1u64, 9).len(), 4);
    }

    #[test]
    fn removing_a_node_moves_only_its_arc() {
        let mut before = HashRing::new(3, 128);
        for n in 0..8 {
            before.add_node(n);
        }
        let mut after = before.clone();
        after.remove_node(3);
        let sample: Vec<u64> = (0..4000).collect();
        let moved = before.moved_fraction(&after, &sample);
        // Node 3 owned ≈ 1/8 of the keyspace; nothing else may move.
        assert!(moved < 0.25, "moved {moved}, expected ≈ 1/8");
        for k in sample {
            if before.primary(&k) != Some(3) {
                assert_eq!(before.primary(&k), after.primary(&k));
            }
        }
    }

    #[test]
    fn fill_then_read_hits_nearest_replica() {
        let clock = SimClock::new();
        let mut fleet = small_fleet(&clock);
        let client = Location::new(0, 9);
        fleet.fill(&42, &777, 1, client);
        let read = fleet.read(&42, client, &budget(&clock));
        match read {
            FleetRead::Hit { value, version, node, cost } => {
                assert_eq!((value, version), (777, 1));
                // Cost is the serving replica's round trip.
                let loc = fleet.node_location(node);
                let rtt = fleet.cfg.network.latency(client, loc).saturating_mul(2);
                assert_eq!(cost, rtt);
            }
            FleetRead::Miss { .. } => panic!("filled key must hit"),
        }
        assert_eq!(fleet.stats().hits, 1);
    }

    #[test]
    fn miss_costs_the_slowest_answer() {
        let clock = SimClock::new();
        let mut fleet = small_fleet(&clock);
        let client = Location::new(0, 9);
        let read = fleet.read(&1, client, &budget(&clock));
        assert!(!read.is_hit());
        // At least one replica of key 1 is in a remote region, so the
        // definitive miss waits on an inter-region round trip unless all
        // three replicas landed in region 0.
        let replicas = fleet.ring().replicas(&1u64, 3);
        let max_rtt = replicas
            .iter()
            .map(|&n| {
                fleet
                    .cfg
                    .network
                    .latency(client, fleet.node_location(n))
                    .saturating_mul(2)
            })
            .max()
            .unwrap();
        assert_eq!(read.cost(), max_rtt);
    }

    #[test]
    fn crashed_node_degrades_but_serves() {
        let clock = SimClock::new();
        let mut fleet = small_fleet(&clock);
        let client = Location::new(0, 9);
        for k in 0..100u64 {
            fleet.fill(&k, &k, 1, client);
        }
        fleet.crash_node(0);
        let mut hits = 0;
        for k in 0..100u64 {
            if fleet.read(&k, client, &budget(&clock)).is_hit() {
                hits += 1;
            }
        }
        // R=3: every key has two surviving replicas.
        assert_eq!(hits, 100, "replication must mask a single crash");
        assert!(fleet.stats().probe_failures > 0, "dead node was probed");
    }

    #[test]
    fn breaker_opens_and_stops_probing_a_dead_node() {
        let clock = SimClock::new();
        let mut fleet = small_fleet(&clock);
        let client = Location::new(0, 9);
        fleet.fill(&5, &5, 1, client);
        fleet.crash_node(fleet.ring().replicas(&5u64, 1)[0]); // hc-lint: allow(panic-index)
        for _ in 0..10 {
            fleet.read(&5, client, &budget(&clock));
        }
        assert!(
            fleet.stats().breaker_skips > 0,
            "after the trip threshold, probes fast-fail through the breaker"
        );
    }

    #[test]
    fn invalidation_rides_the_network_and_is_bounded() {
        let clock = SimClock::new();
        let mut fleet = small_fleet(&clock);
        let writer = Location::new(0, 0);
        fleet.fill(&9, &1, 1, writer);
        fleet.write_invalidate(&9, writer);
        assert!(fleet.pending_deliveries() > 0);
        // Nothing lands before the clock reaches the due times.
        fleet.tick(clock.now());
        let inter = fleet.cfg.network.inter_latency;
        clock.advance(inter);
        fleet.tick(clock.now());
        assert_eq!(fleet.pending_deliveries(), 0, "all deliveries due within one inter-region latency");
        assert!(fleet.stats().max_staleness <= inter);
        // Every replica dropped its copy.
        assert!(fleet.replica_versions(&9).iter().all(|&(_, v)| v == 0));
    }

    #[test]
    fn partition_parks_and_heal_converges() {
        let clock = SimClock::new();
        let mut fleet = small_fleet(&clock);
        let writer = Location::new(0, 0);
        // Pick a key with a replica outside region 0.
        let key = (0..1000u64)
            .find(|k| {
                fleet
                    .ring()
                    .replicas(k, 3)
                    .iter()
                    .any(|&n| fleet.node_location(n).region != 0)
            })
            .unwrap();
        fleet.fill(&key, &1, 1, writer);
        let remote_region = fleet
            .ring()
            .replicas(&key, 3)
            .iter()
            .map(|&n| fleet.node_location(n).region)
            .find(|&r| r != 0)
            .unwrap();
        fleet.partition_region(remote_region);
        fleet.write_invalidate(&key, writer);
        assert!(fleet.parked_deliveries() > 0, "cross-partition delivery parks");
        clock.advance(SimDuration::from_secs(1));
        fleet.tick(clock.now());
        // The partitioned replica still holds the stale copy.
        assert!(fleet
            .replica_versions(&key)
            .iter()
            .any(|&(_, v)| v == 1));
        fleet.heal_region(remote_region);
        clock.advance(fleet.cfg.network.inter_latency);
        fleet.tick(clock.now());
        assert_eq!(fleet.parked_deliveries(), 0);
        assert!(
            fleet.replica_versions(&key).iter().all(|&(_, v)| v == 0),
            "heal flushes parked invalidations to every replica"
        );
    }

    #[test]
    fn read_repair_heals_a_stale_replica() {
        let clock = SimClock::new();
        let mut fleet = small_fleet(&clock);
        let client = Location::new(0, 9);
        fleet.fill(&7, &1, 1, client);
        // A node restart loses its copy.
        let victim = fleet.ring().replicas(&7u64, 3)[2]; // hc-lint: allow(panic-index)
        fleet.crash_node(victim);
        fleet.restore_node(victim);
        assert!(fleet.replica_versions(&7).iter().any(|&(_, v)| v == 0));
        // One read repairs it.
        assert!(fleet.read(&7, client, &budget(&clock)).is_hit());
        assert!(fleet.replica_versions(&7).iter().all(|&(_, v)| v == 1));
        assert!(fleet.stats().read_repairs >= 1);
    }

    #[test]
    fn newer_version_wins_over_nearer_replica() {
        let clock = SimClock::new();
        let mut fleet = small_fleet(&clock);
        let client = Location::new(0, 9);
        fleet.fill(&3, &10, 1, client);
        // Simulate a replica that took a later fill: bump it directly.
        let replicas = fleet.ring().replicas(&3u64, 3);
        let far = *replicas.last().unwrap();
        fleet.nodes[far].cache.put(3, (20, 2)); // hc-lint: allow(panic-index)
        match fleet.read(&3, client, &budget(&clock)) {
            FleetRead::Hit { value, version, .. } => {
                assert_eq!((value, version), (20, 2), "newest version wins");
            }
            FleetRead::Miss { .. } => panic!("must hit"),
        }
        // And the stale replicas were repaired to version 2.
        assert!(fleet.replica_versions(&3).iter().all(|&(_, v)| v == 2));
    }

    #[test]
    fn fleet_metrics_register_and_count() {
        let clock = SimClock::new();
        let registry = hc_telemetry::Registry::new();
        let mut fleet = small_fleet(&clock);
        fleet.instrument(&registry);
        let client = Location::new(0, 9);
        fleet.fill(&1, &1, 1, client);
        fleet.read(&1, client, &budget(&clock));
        fleet.write_invalidate(&1, client);
        clock.advance(SimDuration::from_millis(60));
        fleet.tick(clock.now());
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("fleet.nodes.up"), Some(6));
        let node_hits: u64 = (0..6)
            .map(|i| snap.counter(&format!("fleet.node.{i}.hits")).unwrap_or(0))
            .sum();
        assert!(node_hits >= 1);
        assert!(snap.histogram("fleet.invalidation.staleness_ns").is_some());
    }
}
