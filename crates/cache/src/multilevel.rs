//! The client → server → origin cache hierarchy (paper Fig. 4).
//!
//! Each level pairs a [`CachePolicy`] with an access latency charged to the
//! shared [`SimClock`]. Reads probe levels nearest-first, fill on the way
//! back (read-through), and a miss everywhere pays the origin latency —
//! which in the paper's setting is "orders of magnitude higher" than a
//! local hit (E1). Writes go through to the origin and *invalidate* every
//! level (write-invalidate consistency, §III).

use std::collections::HashMap;

use hc_common::clock::{SimClock, SimDuration};
use hc_telemetry::{Counter, Gauge, Histogram, Registry};

use crate::policy::CachePolicy;
use crate::stats::CacheStats;

/// Registry handles for one cache level (`cache.<level>.*`).
struct LevelInstruments {
    hits: Counter,
    misses: Counter,
    evictions: Gauge,
}

/// Registry handles for the whole hierarchy.
struct HierarchyInstruments {
    registry: Registry,
    levels: Vec<LevelInstruments>,
    origin_reads: Counter,
    absent: Counter,
    writes: Counter,
    read_latency: Histogram,
}

impl HierarchyInstruments {
    fn for_level(registry: &Registry, name: &str) -> LevelInstruments {
        LevelInstruments {
            hits: registry.counter(&format!("cache.{name}.hits")),
            misses: registry.counter(&format!("cache.{name}.misses")),
            evictions: registry.gauge(&format!("cache.{name}.evictions")),
        }
    }
}

/// One level of the hierarchy.
pub struct Level<K, V> {
    /// Human-readable name ("client", "server", …).
    pub name: String,
    /// The cache at this level.
    pub cache: Box<dyn CachePolicy<K, V> + Send>,
    /// Cost of probing this level.
    pub latency: SimDuration,
}

impl<K, V> std::fmt::Debug for Level<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Level")
            .field("name", &self.name)
            .field("latency_us", &self.latency.as_micros())
            .finish()
    }
}

/// Where a read was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitLevel {
    /// Served from cache level `index` (0 = nearest).
    Cache {
        /// The level index.
        index: usize,
    },
    /// Served from the origin store.
    Origin,
    /// The key does not exist anywhere.
    Absent,
}

/// The outcome of a hierarchical read.
#[derive(Clone, Debug)]
pub struct ReadOutcome<V> {
    /// The value, if the key exists.
    pub value: Option<V>,
    /// Where it was found.
    pub hit: HitLevel,
    /// Total simulated latency charged for this read.
    pub latency: SimDuration,
}

/// A multi-level read-through, write-invalidate cache over an origin map.
///
/// # Examples
///
/// ```
/// use hc_cache::multilevel::CacheHierarchy;
/// use hc_cache::policy::LruCache;
/// use hc_common::clock::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let mut h = CacheHierarchy::new(clock, SimDuration::from_millis(50));
/// h.add_level("client", Box::new(LruCache::new(8)), SimDuration::from_micros(1));
/// h.write("k".to_string(), 1u64);
/// let cold = h.read(&"k".to_string());
/// let warm = h.read(&"k".to_string());
/// assert!(warm.latency < cold.latency);
/// ```
pub struct CacheHierarchy<K, V> {
    clock: SimClock,
    levels: Vec<Level<K, V>>,
    origin: HashMap<K, V>,
    origin_latency: SimDuration,
    origin_reads: u64,
    instruments: Option<HierarchyInstruments>,
}

impl<K, V> std::fmt::Debug for CacheHierarchy<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheHierarchy")
            .field("levels", &self.levels)
            .field("origin_entries", &self.origin.len())
            .finish()
    }
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> CacheHierarchy<K, V> {
    /// Creates a hierarchy with no cache levels yet.
    pub fn new(clock: SimClock, origin_latency: SimDuration) -> Self {
        CacheHierarchy {
            clock,
            levels: Vec::new(),
            origin: HashMap::new(),
            origin_latency,
            origin_reads: 0,
            instruments: None,
        }
    }

    /// Mirrors this hierarchy's counters into `registry` under
    /// `cache.<level>.*` / `cache.origin.*` / `cache.read.*`. The
    /// per-level [`CacheStats`] keep working unchanged; the registry
    /// handles are updated lock-free on every read and write.
    pub fn instrument(&mut self, registry: &Registry) {
        let levels = self
            .levels
            .iter()
            .map(|l| HierarchyInstruments::for_level(registry, &l.name))
            .collect();
        self.instruments = Some(HierarchyInstruments {
            registry: registry.clone(),
            levels,
            origin_reads: registry.counter("cache.origin.reads"),
            absent: registry.counter("cache.read.absent"),
            writes: registry.counter("cache.write.count"),
            read_latency: registry.histogram("cache.read.sim_latency_ns"),
        });
        self.sync_eviction_gauges();
    }

    /// Copies each level's eviction total from its [`CacheStats`] into
    /// the corresponding `cache.<level>.evictions` gauge.
    fn sync_eviction_gauges(&self) {
        if let Some(inst) = &self.instruments {
            for (level, li) in self.levels.iter().zip(&inst.levels) {
                li.evictions.set(level.cache.stats().evictions as i64);
            }
        }
    }

    /// Appends a level; levels are probed in insertion order (nearest first).
    pub fn add_level(
        &mut self,
        name: &str,
        cache: Box<dyn CachePolicy<K, V> + Send>,
        latency: SimDuration,
    ) {
        self.levels.push(Level {
            name: name.to_owned(),
            cache,
            latency,
        });
        if let Some(inst) = &mut self.instruments {
            inst.levels.push(HierarchyInstruments::for_level(&inst.registry, name));
        }
    }

    /// Reads `key`, charging simulated latency and filling nearer levels.
    pub fn read(&mut self, key: &K) -> ReadOutcome<V> {
        let mut spent = SimDuration::ZERO;
        for i in 0..self.levels.len() {
            spent += self.levels[i].latency;
            if let Some(value) = self.levels[i].cache.get(key) {
                // Fill all nearer levels on the way back.
                for nearer in &mut self.levels[..i] {
                    nearer.cache.put(key.clone(), value.clone());
                }
                self.clock.advance(spent);
                if let Some(inst) = &self.instruments {
                    inst.levels[i].hits.inc();
                    for li in &inst.levels[..i] {
                        li.misses.inc();
                    }
                    inst.read_latency.record(spent.as_nanos());
                }
                if i > 0 {
                    // A fill happened, which may have evicted upstream.
                    self.sync_eviction_gauges();
                }
                return ReadOutcome {
                    value: Some(value),
                    hit: HitLevel::Cache { index: i },
                    latency: spent,
                };
            }
        }
        spent += self.origin_latency;
        self.clock.advance(spent);
        self.origin_reads += 1;
        if let Some(inst) = &self.instruments {
            for li in &inst.levels {
                li.misses.inc();
            }
            inst.origin_reads.inc();
            inst.read_latency.record(spent.as_nanos());
        }
        self.sync_eviction_gauges();
        match self.origin.get(key).cloned() {
            Some(value) => {
                for level in &mut self.levels {
                    level.cache.put(key.clone(), value.clone());
                }
                ReadOutcome {
                    value: Some(value),
                    hit: HitLevel::Origin,
                    latency: spent,
                }
            }
            None => {
                if let Some(inst) = &self.instruments {
                    inst.absent.inc();
                }
                ReadOutcome {
                    value: None,
                    hit: HitLevel::Absent,
                    latency: spent,
                }
            }
        }
    }

    /// Writes through to the origin and invalidates every cache level.
    ///
    /// Returns the simulated latency charged (origin round trip).
    pub fn write(&mut self, key: K, value: V) -> SimDuration {
        for level in &mut self.levels {
            level.cache.invalidate(&key);
        }
        self.origin.insert(key, value);
        self.clock.advance(self.origin_latency);
        if let Some(inst) = &self.instruments {
            inst.writes.inc();
        }
        self.origin_latency
    }

    /// Deletes from the origin and every level.
    pub fn delete(&mut self, key: &K) {
        for level in &mut self.levels {
            level.cache.invalidate(key);
        }
        self.origin.remove(key);
        self.clock.advance(self.origin_latency);
    }

    /// Per-level statistics, nearest first.
    pub fn level_stats(&self) -> Vec<(String, CacheStats)> {
        self.levels
            .iter()
            .map(|l| (l.name.clone(), l.cache.stats()))
            .collect()
    }

    /// How many reads reached the origin.
    pub fn origin_reads(&self) -> u64 {
        self.origin_reads
    }

    /// Number of entries in the origin store.
    pub fn origin_len(&self) -> usize {
        self.origin.len()
    }

    /// A handle to the shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LruCache;

    fn hierarchy() -> CacheHierarchy<String, u64> {
        let clock = SimClock::new();
        let mut h = CacheHierarchy::new(clock, SimDuration::from_millis(50));
        h.add_level(
            "client",
            Box::new(LruCache::new(4)),
            SimDuration::from_micros(1),
        );
        h.add_level(
            "server",
            Box::new(LruCache::new(16)),
            SimDuration::from_micros(500),
        );
        h
    }

    #[test]
    fn cold_read_hits_origin_warm_read_hits_client() {
        let mut h = hierarchy();
        h.write("k".into(), 7);
        let cold = h.read(&"k".to_string());
        assert_eq!(cold.hit, HitLevel::Origin);
        let warm = h.read(&"k".to_string());
        assert_eq!(warm.hit, HitLevel::Cache { index: 0 });
        assert_eq!(warm.value, Some(7));
        // Orders of magnitude: 1 µs vs 50.501 ms.
        assert!(cold.latency.as_nanos() > 1000 * warm.latency.as_nanos());
    }

    #[test]
    fn server_hit_fills_client() {
        let mut h = hierarchy();
        h.write("k".into(), 7);
        let _ = h.read(&"k".to_string()); // fills both
                                          // Evict from the tiny client cache.
        for i in 0..5 {
            h.write(format!("other{i}"), 0);
            let _ = h.read(&format!("other{i}"));
        }
        // "k" was evicted from client (cap 4) but lives in server (cap 16)?
        // Writes invalidate, so re-read "k": it may be in server still.
        let outcome = h.read(&"k".to_string());
        assert!(outcome.value.is_some());
    }

    #[test]
    fn write_invalidates_all_levels() {
        let mut h = hierarchy();
        h.write("k".into(), 1);
        let _ = h.read(&"k".to_string());
        h.write("k".into(), 2);
        let outcome = h.read(&"k".to_string());
        assert_eq!(outcome.hit, HitLevel::Origin, "stale copy must be gone");
        assert_eq!(outcome.value, Some(2));
    }

    #[test]
    fn absent_key_reported() {
        let mut h = hierarchy();
        let outcome = h.read(&"nope".to_string());
        assert_eq!(outcome.hit, HitLevel::Absent);
        assert!(outcome.value.is_none());
    }

    #[test]
    fn delete_removes_everywhere() {
        let mut h = hierarchy();
        h.write("k".into(), 1);
        let _ = h.read(&"k".to_string());
        h.delete(&"k".to_string());
        assert_eq!(h.read(&"k".to_string()).hit, HitLevel::Absent);
        assert_eq!(h.origin_len(), 0);
    }

    #[test]
    fn clock_advances_with_traffic() {
        let mut h = hierarchy();
        h.write("k".into(), 1);
        let before = h.clock().now();
        let _ = h.read(&"k".to_string());
        assert!(h.clock().now() > before);
    }

    #[test]
    fn stats_reflect_hits() {
        let mut h = hierarchy();
        h.write("k".into(), 1);
        let _ = h.read(&"k".to_string());
        let _ = h.read(&"k".to_string());
        let stats = h.level_stats();
        assert_eq!(stats[0].0, "client");
        assert_eq!(stats[0].1.hits, 1);
        assert_eq!(stats[0].1.misses, 1);
        assert_eq!(h.origin_reads(), 1);
    }

    #[test]
    fn instrumented_reads_mirror_into_registry() {
        let mut h = hierarchy();
        let registry = Registry::new();
        h.instrument(&registry);
        h.write("k".into(), 1);
        let _ = h.read(&"k".to_string()); // origin (miss both levels)
        let _ = h.read(&"k".to_string()); // client hit
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cache.client.hits"), Some(1));
        assert_eq!(snap.counter("cache.client.misses"), Some(1));
        assert_eq!(snap.counter("cache.server.misses"), Some(1));
        assert_eq!(snap.counter("cache.origin.reads"), Some(1));
        assert_eq!(snap.counter("cache.write.count"), Some(1));
        let lat = snap.histogram("cache.read.sim_latency_ns").unwrap();
        assert_eq!(lat.count, 2);
        assert!(lat.max > lat.min, "origin read must be slower than a hit");
    }

    #[test]
    fn no_levels_still_works() {
        let clock = SimClock::new();
        let mut h: CacheHierarchy<String, u64> =
            CacheHierarchy::new(clock, SimDuration::from_millis(1));
        h.write("k".into(), 1);
        assert_eq!(h.read(&"k".to_string()).hit, HitLevel::Origin);
    }
}
