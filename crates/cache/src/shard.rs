//! Lock-striped sharded caching for the multi-core serving hot path.
//!
//! The single-`Mutex` stores in [`crate::invalidation`] serialize every
//! client request on one lock, so added cores buy nothing ("serves heavy
//! traffic from millions of users" needs the opposite). This module
//! stripes both halves of the serving path:
//!
//! * [`ShardedCache`] — `N` power-of-two shards, each an independent
//!   [`CachePolicy`] (LRU/LFU/TTL behaviour preserved per shard) behind
//!   its own lock. Keys route via a seeded FNV-1a hash, so the routing
//!   is stable for a given seed and uncorrelated with insertion order.
//!   A `ShardedCache` with `shards = 1` *is* the global-lock baseline —
//!   E18 measures exactly that configuration gap.
//! * [`ShardedOrigin`] / [`ShardedClient`] — the write-invalidate
//!   consistency protocol of [`crate::invalidation`], sharded: each
//!   origin shard owns its own invalidation bus, and a client drains
//!   only the bus shard a key routes to before serving it. The
//!   consistency argument is per-shard identical to the unsharded
//!   proof: a write inserts the new version into shard `s` *before*
//!   publishing on bus `s`, and a read of a key in shard `s` drains bus
//!   `s` before probing its local cache — so once the bus has delivered
//!   an invalidation, the stale entry is gone before any later read of
//!   that key ("an invalidated key is never served stale after the bus
//!   delivers").
//!
//! Per-shard hit/miss/eviction state stays inside each shard's
//! [`CacheStats`]; [`ShardedCache::stats`] sums them, and
//! [`ShardedCache::enable_telemetry`] mirrors them into per-shard
//! `hc-telemetry` counters (`cache.shard.<i>.*`, see OBSERVABILITY.md).

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::invalidation::Subscription;
use parking_lot::Mutex;

use crate::invalidation::InvalidationBus;
use crate::policy::CachePolicy;
use crate::stats::CacheStats;

/// Per-shard telemetry handles (see `enable_telemetry`).
struct ShardInstruments {
    hits: hc_telemetry::Counter,
    misses: hc_telemetry::Counter,
    puts: hc_telemetry::Counter,
    invalidations: hc_telemetry::Counter,
    entries: hc_telemetry::Gauge,
}

/// A seeded FNV-1a hasher: deterministic across hosts and Rust versions
/// (unlike `DefaultHasher`), and keyed so shard routing is a property of
/// the store's seed, not of the key distribution.
#[derive(Clone, Copy, Debug)]
pub struct SeededFnv(u64);

impl SeededFnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher whose stream is offset by `seed`.
    pub fn new(seed: u64) -> Self {
        SeededFnv(Self::OFFSET ^ seed)
    }
}

impl Hasher for SeededFnv {
    fn finish(&self) -> u64 {
        // One SplitMix64-style finalizer round so low output bits (the
        // shard mask) depend on every input byte.
        hc_common::rng::split(self.0, 0x5eed)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// Routes keys to one of `shards` (power of two) stripes.
#[derive(Clone, Copy, Debug)]
pub struct ShardRouter {
    mask: u64,
    seed: u64,
}

impl ShardRouter {
    /// A router over `shards` stripes with routing seed `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `shards` is a non-zero power of two.
    pub fn new(shards: usize, seed: u64) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a non-zero power of two, got {shards}"
        );
        ShardRouter {
            mask: shards as u64 - 1,
            seed,
        }
    }

    /// The stripe `key` routes to. Total (defined for every key) and
    /// stable (same key, same seed ⇒ same shard).
    pub fn route<K: Hash + ?Sized>(&self, key: &K) -> usize {
        let mut h = SeededFnv::new(self.seed);
        key.hash(&mut h);
        (h.finish() & self.mask) as usize
    }

    /// Number of stripes.
    pub fn shards(&self) -> usize {
        self.mask as usize + 1
    }
}

/// Splits a total capacity over `shards` stripes: every shard gets
/// `ceil(total / shards)` entries (at least 1), so the per-shard
/// capacity never exceeds `total / shards + 1`.
pub fn shard_capacity(total: usize, shards: usize) -> usize {
    total.div_ceil(shards).max(1)
}

/// A lock-striped cache: `N` independent policy instances, one lock
/// each, with seeded-hash routing.
///
/// All operations take `&self` and are safe to call from many threads;
/// an operation locks exactly one shard (never two), so there is no
/// lock-ordering hazard and contention falls roughly `N`-fold on
/// uniform traffic.
pub struct ShardedCache<K, V, C> {
    shards: Vec<Mutex<C>>,
    router: ShardRouter,
    instruments: Option<Vec<ShardInstruments>>,
    _marker: std::marker::PhantomData<(K, V)>,
}

impl<K, V, C: std::fmt::Debug> std::fmt::Debug for ShardedCache<K, V, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<K: Hash + Eq, V, C: CachePolicy<K, V>> ShardedCache<K, V, C> {
    /// Builds a store of `shards` stripes; `factory(i)` constructs the
    /// policy instance for shard `i` (use [`shard_capacity`] to split a
    /// total budget).
    ///
    /// # Panics
    ///
    /// Panics unless `shards` is a non-zero power of two.
    pub fn new(shards: usize, seed: u64, mut factory: impl FnMut(usize) -> C) -> Self {
        let router = ShardRouter::new(shards, seed);
        ShardedCache {
            shards: (0..shards).map(|i| Mutex::new(factory(i))).collect(),
            router,
            instruments: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Registers per-shard counters (`<prefix>.shard.<i>.hits`,
    /// `.misses`, `.puts`, `.invalidations`, `.entries`) on `registry`.
    ///
    /// Takes `&mut self` so instrumentation is wired before the store is
    /// shared across threads; the hot path then reads the handles
    /// without any extra lock.
    pub fn enable_telemetry(&mut self, registry: &hc_telemetry::Registry, prefix: &str) {
        self.instruments = Some(
            (0..self.shards.len())
                .map(|i| ShardInstruments {
                    hits: registry.counter(&format!("{prefix}.shard.{i}.hits")),
                    misses: registry.counter(&format!("{prefix}.shard.{i}.misses")),
                    puts: registry.counter(&format!("{prefix}.shard.{i}.puts")),
                    invalidations: registry
                        .counter(&format!("{prefix}.shard.{i}.invalidations")),
                    entries: registry.gauge(&format!("{prefix}.shard.{i}.entries")),
                })
                .collect(),
        );
    }

    /// The shard index `key` routes to.
    pub fn shard_of(&self, key: &K) -> usize {
        self.router.route(key)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks up `key` in its shard.
    pub fn get(&self, key: &K) -> Option<V> {
        let s = self.router.route(key);
        // s < shards.len(): route() masks the hash by len-1, and the
        // instruments Vec is built with the same length.
        let out = self.shards[s].lock().get(key); // hc-lint: allow(panic-index)
        if let Some(inst) = self.instruments.as_ref().map(|v| &v[s]) {
            if out.is_some() {
                inst.hits.inc();
            } else {
                inst.misses.inc();
            }
        }
        out
    }

    /// Inserts or replaces `key` in its shard, evicting per the shard's
    /// policy when that shard is full.
    pub fn put(&self, key: K, value: V) {
        let s = self.router.route(&key);
        let len = {
            let mut shard = self.shards[s].lock(); // hc-lint: allow(panic-index)
            shard.put(key, value);
            shard.len()
        };
        if let Some(inst) = self.instruments.as_ref().map(|v| &v[s]) { // hc-lint: allow(panic-index)
            inst.puts.inc();
            inst.entries.set(len as i64);
        }
    }

    /// Removes `key` from its shard; returns whether it was present.
    pub fn invalidate(&self, key: &K) -> bool {
        let s = self.router.route(key);
        let (hit, len) = {
            let mut shard = self.shards[s].lock(); // hc-lint: allow(panic-index)
            let hit = shard.invalidate(key);
            (hit, shard.len())
        };
        if let Some(inst) = self.instruments.as_ref().map(|v| &v[s]) { // hc-lint: allow(panic-index)
            if hit {
                inst.invalidations.inc();
            }
            inst.entries.set(len as i64);
        }
        hit
    }

    /// Live entries across all shards. Shards are locked one at a time,
    /// so the total is a per-shard-consistent snapshot.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity()).sum()
    }

    /// Per-shard counter snapshots, indexed by shard.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| s.lock().stats()).collect()
    }

    /// Aggregated counters: the field-wise sum of [`Self::shard_stats`].
    pub fn stats(&self) -> CacheStats {
        self.shard_stats()
            .into_iter()
            .fold(CacheStats::default(), |mut acc, s| {
                acc.hits += s.hits;
                acc.misses += s.misses;
                acc.evictions += s.evictions;
                acc.invalidations += s.invalidations;
                acc.expirations += s.expirations;
                acc
            })
    }

    /// Clears every shard (each entry counted as an invalidation).
    pub fn clear(&self) {
        for (s, shard) in self.shards.iter().enumerate() {
            shard.lock().clear();
            // s comes from enumerate() over a same-length Vec.
            if let Some(inst) = self.instruments.as_ref().map(|v| &v[s]) { // hc-lint: allow(panic-index)
                inst.entries.set(0);
            }
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V, crate::policy::LruCache<K, V>> {
    /// Convenience: an LRU store of `total_capacity` entries split over
    /// `shards` stripes (per-shard capacity via [`shard_capacity`]).
    pub fn lru(total_capacity: usize, shards: usize, seed: u64) -> Self {
        let per_shard = shard_capacity(total_capacity, shards);
        ShardedCache::new(shards, seed, |_| crate::policy::LruCache::new(per_shard))
    }
}

impl<K: Hash + Eq + Ord + Clone, V: Clone> ShardedCache<K, V, crate::policy::LfuCache<K, V>> {
    /// Convenience: an LFU store of `total_capacity` entries split over
    /// `shards` stripes.
    pub fn lfu(total_capacity: usize, shards: usize, seed: u64) -> Self {
        let per_shard = shard_capacity(total_capacity, shards);
        ShardedCache::new(shards, seed, |_| crate::policy::LfuCache::new(per_shard))
    }
}

/// A sharded versioned origin with a per-shard invalidation bus.
///
/// The sharded counterpart of
/// [`VersionedOrigin`](crate::invalidation::VersionedOrigin): writes
/// lock one entry shard, bump the key's version, then publish on that
/// shard's bus. Subscribing clients ([`ShardedClient`]) receive one
/// inbox per bus shard and drain only the shard a key routes to.
pub struct ShardedOrigin<K, V> {
    entries: Vec<Mutex<std::collections::HashMap<K, (V, u64)>>>,
    buses: Vec<InvalidationBus<K>>,
    router: ShardRouter,
}

impl<K, V> std::fmt::Debug for ShardedOrigin<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOrigin")
            .field("shards", &self.entries.len())
            .finish()
    }
}

impl<K: Clone + Eq + Hash, V: Clone> ShardedOrigin<K, V> {
    /// An empty origin of `shards` stripes (non-zero power of two)
    /// routed with `seed`.
    pub fn new(shards: usize, seed: u64) -> Arc<Self> {
        let router = ShardRouter::new(shards, seed);
        Arc::new(ShardedOrigin {
            entries: (0..shards)
                .map(|_| Mutex::new(std::collections::HashMap::new()))
                .collect(),
            buses: (0..shards).map(|_| InvalidationBus::new()).collect(),
            router,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.entries.len()
    }

    /// The shard `key` routes to.
    pub fn shard_of(&self, key: &K) -> usize {
        self.router.route(key)
    }

    /// Writes a value, bumping its version, then publishing the
    /// invalidation on the key's bus shard. The insert happens *before*
    /// the publish, so any reader that drains the invalidation finds
    /// the new version (or newer) at the origin.
    pub fn write(&self, key: K, value: V) -> u64 {
        let s = self.router.route(&key);
        let version = {
            let mut entries = self.entries[s].lock(); // hc-lint: allow(panic-index)
            let version = entries.get(&key).map(|(_, v)| v + 1).unwrap_or(1);
            if hc_common::conc::mc::active() {
                hc_common::conc::mc::write(&format!("cache.origin.shard{s}"));
            }
            entries.insert(key.clone(), (value, version));
            version
        };
        self.buses[s].publish(&key); // hc-lint: allow(panic-index)
        version
    }

    /// Reads the current value and version from the key's shard.
    pub fn read(&self, key: &K) -> Option<(V, u64)> {
        let s = self.router.route(key);
        let entries = self.entries[s].lock(); // hc-lint: allow(panic-index)
        if hc_common::conc::mc::active() {
            hc_common::conc::mc::read(&format!("cache.origin.shard{s}"));
        }
        entries.get(key).cloned()
    }

    /// The current version of a key (0 = absent).
    pub fn version(&self, key: &K) -> u64 {
        self.entries[self.router.route(key)] // hc-lint: allow(panic-index)
            .lock()
            .get(key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Live subscribers per bus shard. Dropped clients release their
    /// slots eagerly (see [`Subscription`]), so counts reflect drops
    /// immediately rather than after the next publish on their shard.
    pub fn subscriber_counts(&self) -> Vec<usize> {
        self.buses.iter().map(|b| b.subscriber_count()).collect()
    }

    fn subscribe_all(&self) -> Vec<Subscription<K>> {
        self.buses.iter().map(|b| b.subscribe()).collect()
    }
}

/// A client cache kept consistent with a [`ShardedOrigin`] through the
/// sharded bus. One instance per reader thread (reads take `&mut self`,
/// matching [`ConsistentClient`](crate::invalidation::ConsistentClient));
/// the origin itself is shared.
pub struct ShardedClient<K, V, C> {
    origin: Arc<ShardedOrigin<K, V>>,
    cache: ShardedCache<K, (V, u64), C>,
    inboxes: Vec<Subscription<K>>,
}

impl<K, V, C: std::fmt::Debug> std::fmt::Debug for ShardedClient<K, V, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedClient")
            .field("cache", &self.cache)
            .finish()
    }
}

impl<K, V, C> ShardedClient<K, V, C>
where
    K: Clone + Eq + Hash,
    V: Clone,
    C: CachePolicy<K, (V, u64)>,
{
    /// Subscribes a new client whose local store is `cache`.
    ///
    /// # Panics
    ///
    /// Panics if `cache` has a different shard count than the origin —
    /// shard `s` of the local cache must correspond to bus shard `s`
    /// for the per-shard drain to cover the key being read.
    pub fn subscribe(origin: Arc<ShardedOrigin<K, V>>, cache: ShardedCache<K, (V, u64), C>) -> Self {
        assert_eq!(
            cache.shard_count(),
            origin.shard_count(),
            "client cache must mirror the origin's shard layout"
        );
        assert_eq!(
            cache.router.seed, origin.router.seed,
            "client cache must route with the origin's seed"
        );
        let inboxes = origin.subscribe_all();
        ShardedClient {
            origin,
            cache,
            inboxes,
        }
    }

    /// Applies pending invalidations for bus shard `s`; returns how many.
    fn drain_shard(&mut self, s: usize) -> usize {
        let mut applied = 0;
        while let Ok(key) = self.inboxes[s].try_recv() { // hc-lint: allow(panic-index)
            self.cache.invalidate(&key);
            applied += 1;
        }
        applied
    }

    /// Applies every pending invalidation across all bus shards.
    pub fn drain_invalidations(&mut self) -> usize {
        (0..self.inboxes.len()).map(|s| self.drain_shard(s)).sum()
    }

    /// Consistent read: drains the key's bus shard, then serves from the
    /// local shard or the origin. Returns the value with its version so
    /// harnesses (the linearizability-lite checker) can assert ordering
    /// without re-locking the origin.
    pub fn read_versioned(&mut self, key: &K) -> Option<(V, u64)> {
        let s = self.origin.shard_of(key);
        self.drain_shard(s);
        if let Some(entry) = self.cache.get(key) {
            return Some(entry);
        }
        let (value, version) = self.origin.read(key)?;
        self.cache.put(key.clone(), (value.clone(), version));
        Some((value, version))
    }

    /// Consistent read returning just the value.
    pub fn read(&mut self, key: &K) -> Option<V> {
        self.read_versioned(key).map(|(v, _)| v)
    }

    /// The client's local sharded store (per-shard stats, len, …).
    pub fn cache(&self) -> &ShardedCache<K, (V, u64), C> {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{LfuCache, LruCache};
    use proptest::prelude::*;

    #[test]
    fn routing_covers_all_shards_eventually() {
        let router = ShardRouter::new(8, 42);
        let mut seen = [false; 8];
        for k in 0..1000u64 {
            seen[router.route(&k)] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 keys should touch all 8 shards");
    }

    #[test]
    fn different_seeds_route_differently() {
        let a = ShardRouter::new(16, 1);
        let b = ShardRouter::new(16, 2);
        let moved = (0..256u64).filter(|k| a.route(k) != b.route(k)).count();
        assert!(moved > 64, "routing must depend on the seed (moved {moved})");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_panic() {
        let _ = ShardRouter::new(6, 0);
    }

    #[test]
    fn sharded_basic_get_put_invalidate() {
        // Ample capacity so no shard evicts during this test.
        let cache = ShardedCache::lru(256, 8, 7);
        for k in 0..32u64 {
            cache.put(k, k * 10);
        }
        assert_eq!(cache.get(&3), Some(30));
        assert!(cache.invalidate(&3));
        assert!(!cache.invalidate(&3));
        assert_eq!(cache.get(&3), None);
        assert_eq!(cache.len(), 31);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shard_stats_sum_to_global() {
        let cache = ShardedCache::lru(32, 4, 9);
        for k in 0..100u64 {
            cache.put(k, k);
        }
        for k in 0..200u64 {
            let _ = cache.get(&k);
        }
        let per_shard = cache.shard_stats();
        let global = cache.stats();
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), global.hits);
        assert_eq!(per_shard.iter().map(|s| s.misses).sum::<u64>(), global.misses);
        assert_eq!(
            per_shard.iter().map(|s| s.evictions).sum::<u64>(),
            global.evictions
        );
        assert_eq!(global.lookups(), 200);
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        let registry = hc_telemetry::Registry::new();
        let mut cache = ShardedCache::lru(16, 2, 3);
        cache.enable_telemetry(&registry, "cache");
        for k in 0..8u64 {
            cache.put(k, k);
        }
        for k in 0..16u64 {
            let _ = cache.get(&k);
        }
        let stats = cache.stats();
        let sum = |name: &str| {
            (0..2)
                .map(|i| registry.counter(&format!("cache.shard.{i}.{name}")).get())
                .sum::<u64>()
        };
        assert_eq!(sum("hits"), stats.hits);
        assert_eq!(sum("misses"), stats.misses);
        assert_eq!(sum("puts"), 8);
    }

    #[test]
    fn sharded_origin_write_invalidate_read() {
        let origin: Arc<ShardedOrigin<u64, u64>> = ShardedOrigin::new(4, 5);
        let mut client = ShardedClient::subscribe(
            Arc::clone(&origin),
            ShardedCache::new(4, 5, |_| LruCache::new(16)),
        );
        origin.write(1, 100);
        assert_eq!(client.read(&1), Some(100));
        origin.write(1, 200);
        assert_eq!(client.read(&1), Some(200), "never stale after delivery");
        assert_eq!(client.read(&9999), None);
    }

    #[test]
    fn sharded_client_versions_monotonic() {
        let origin: Arc<ShardedOrigin<u64, u64>> = ShardedOrigin::new(8, 11);
        let mut client = ShardedClient::subscribe(
            Arc::clone(&origin),
            ShardedCache::new(8, 11, |_| LruCache::new(4)),
        );
        let mut last = 0;
        for round in 1..=20u64 {
            origin.write(7, round);
            let (v, version) = client.read_versioned(&7).unwrap();
            assert_eq!(v, round);
            assert!(version >= last);
            last = version;
        }
    }

    #[test]
    fn dropped_sharded_client_is_pruned_per_shard() {
        let origin: Arc<ShardedOrigin<u64, u64>> = ShardedOrigin::new(4, 2);
        {
            let _gone = ShardedClient::subscribe(
                Arc::clone(&origin),
                ShardedCache::new(4, 2, |_| LruCache::new(4)),
            );
            assert_eq!(origin.subscriber_counts(), vec![1, 1, 1, 1]);
        }
        // Regression: the slots are reclaimed by the client's drop — no
        // publish on any shard is needed to notice the dead receivers.
        assert_eq!(origin.subscriber_counts(), vec![0, 0, 0, 0]);
        // And publishing afterwards stays a clean no-op on every shard.
        for k in 0..16u64 {
            origin.write(k, 0);
        }
        assert_eq!(origin.subscriber_counts(), vec![0, 0, 0, 0]);
    }

    /// The E2 reproduction constraint: sharding must not change policy
    /// behaviour materially. Same Zipf workload as EXPERIMENTS.md E2
    /// (2 000 keys, 30 000 reads, read-through fill), 10% cache.
    fn hit_ratio_sharded_vs_unsharded(lfu: bool, shards: usize) -> (f64, f64) {
        let keys = 2000usize;
        let reads = 30_000usize;
        let capacity = keys / 10;
        let mut rng = hc_common::rng::seeded(0xE2);
        let workload: Vec<usize> = (0..reads)
            .map(|_| hc_common::conc::zipf_key(&mut rng, keys))
            .collect();
        let unsharded_ratio = if lfu {
            let mut c = LfuCache::new(capacity);
            for &k in &workload {
                if c.get(&k).is_none() {
                    c.put(k, k);
                }
            }
            c.stats().hit_ratio()
        } else {
            let mut c = LruCache::new(capacity);
            for &k in &workload {
                if c.get(&k).is_none() {
                    c.put(k, k);
                }
            }
            c.stats().hit_ratio()
        };
        let sharded_ratio = if lfu {
            let c = ShardedCache::lfu(capacity, shards, 0xE2);
            for &k in &workload {
                if c.get(&k).is_none() {
                    c.put(k, k);
                }
            }
            c.stats().hit_ratio()
        } else {
            let c = ShardedCache::lru(capacity, shards, 0xE2);
            for &k in &workload {
                if c.get(&k).is_none() {
                    c.put(k, k);
                }
            }
            c.stats().hit_ratio()
        };
        (unsharded_ratio, sharded_ratio)
    }

    #[test]
    fn sharded_lru_hit_ratio_tracks_unsharded_within_2pc() {
        for shards in [2usize, 8] {
            let (unsharded, sharded) = hit_ratio_sharded_vs_unsharded(false, shards);
            assert!(
                (unsharded - sharded).abs() < 0.02,
                "LRU {shards} shards: {sharded:.3} vs unsharded {unsharded:.3}"
            );
        }
    }

    #[test]
    fn sharded_lfu_hit_ratio_tracks_unsharded_within_2pc() {
        for shards in [2usize, 8] {
            let (unsharded, sharded) = hit_ratio_sharded_vs_unsharded(true, shards);
            assert!(
                (unsharded - sharded).abs() < 0.02,
                "LFU {shards} shards: {sharded:.3} vs unsharded {unsharded:.3}"
            );
        }
    }

    proptest! {
        /// Routing is total (always lands in range) and stable (a fresh
        /// router with the same seed agrees).
        #[test]
        fn routing_total_and_stable(
            keys in proptest::collection::vec(0u64..u64::MAX, 1..200),
            exp in 0u32..7,
            seed in 0u64..u64::MAX,
        ) {
            let shards = 1usize << exp;
            let a = ShardRouter::new(shards, seed);
            let b = ShardRouter::new(shards, seed);
            for k in &keys {
                let s = a.route(k);
                prop_assert!(s < shards);
                prop_assert_eq!(s, b.route(k));
            }
        }

        /// No shard ever holds more than `total / shards + 1` entries.
        #[test]
        fn per_shard_capacity_bounded(
            total in 1usize..256,
            exp in 0u32..6,
            keys in proptest::collection::vec(0u64..10_000, 0..400),
        ) {
            let shards = 1usize << exp;
            let cache = ShardedCache::lru(total, shards, 17);
            for &k in &keys {
                cache.put(k, k);
            }
            let bound = total / shards + 1;
            for (i, stats) in cache.shard_stats().iter().enumerate() {
                let _ = stats;
                let len = cache.shards[i].lock().len();
                prop_assert!(
                    len <= bound,
                    "shard {} holds {} > bound {}", i, len, bound
                );
            }
        }

        /// A key written through the sharded origin is read back at its
        /// latest version by a fresh consistent client.
        #[test]
        fn sharded_read_sees_latest_write(
            writes in proptest::collection::vec((0u64..64, 0u64..1000), 1..100),
            exp in 0u32..5,
        ) {
            let shards = 1usize << exp;
            let origin: Arc<ShardedOrigin<u64, u64>> = ShardedOrigin::new(shards, 23);
            let mut client = ShardedClient::subscribe(
                Arc::clone(&origin),
                ShardedCache::new(shards, 23, |_| LruCache::new(8)),
            );
            let mut latest = std::collections::HashMap::new();
            for &(k, v) in &writes {
                origin.write(k, v);
                latest.insert(k, v);
                // Interleave reads with writes.
                prop_assert_eq!(client.read(&k), Some(v));
            }
            for (k, v) in latest {
                prop_assert_eq!(client.read(&k), Some(v));
            }
        }
    }
}
