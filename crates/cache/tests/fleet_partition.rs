//! Partition soak: a region drops off the network mid-write, the fleet
//! keeps serving from the reachable replicas, and after the heal
//! read-repair plus the parked invalidation backlog converge every
//! replica. Seeded (override with `HC_SOAK_SEED`); CI's `fleet-tests`
//! job runs it with two rotated seeds.

use hc_cache::fleet::{CacheFleet, FleetConfig};
use hc_cloudsim::net::{Location, NetworkModel};
use hc_common::clock::{SimClock, SimDuration};
use hc_resilience::timeout::TimeoutBudget;

fn seed() -> u64 {
    std::env::var("HC_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE20)
}

const KEYS: u64 = 512;
const PARTITIONED_REGION: usize = 2;

fn budget(clock: &SimClock) -> TimeoutBudget {
    TimeoutBudget::starting_now(clock, SimDuration::from_secs(1))
}

/// Writes land while region 2 is unreachable; its replicas go stale.
/// After the heal, parked invalidations flush and repair reads rewrite
/// every stale copy — no replica is left behind.
#[test]
fn read_repair_converges_all_replicas_after_heal() {
    let clock = SimClock::new();
    let cfg = FleetConfig {
        seed: seed(),
        ..FleetConfig::default()
    };
    let network = cfg.network;
    let breaker_cooldown = cfg.breaker_cooldown;
    let mut fleet: CacheFleet<u64, u64> = CacheFleet::with_topology(cfg, clock.clone(), 3, 2);
    let writer = Location::new(0, 0);
    let reader = Location::new(1, 0);

    // Baseline: every replica of every key at version 1.
    for k in 0..KEYS {
        fleet.fill(&k, &k, 1, writer);
    }
    for k in 0..KEYS {
        assert!(fleet.replica_versions(&k).iter().all(|&(_, v)| v == 1));
    }

    // Region 2 drops off the network. Keys 0 mod 3 are overwritten at
    // version 2, keys 1 mod 3 are invalidated, keys 2 mod 3 untouched.
    // Reads during the outage must still hit (R=3 spans three regions,
    // so at least one replica stays reachable) while the unreachable
    // probes trip breakers.
    fleet.partition_region(PARTITIONED_REGION);
    let tick = SimDuration::from_millis(10);
    for k in 0..KEYS {
        match k % 3 {
            0 => fleet.fill(&k, &(k + 1_000), 2, writer),
            1 => fleet.write_invalidate(&k, writer),
            _ => {}
        }
        if k % 16 == 0 {
            let read = fleet.read(&k, reader, &budget(&clock));
            assert!(read.is_hit() || k % 3 == 1, "key {k} lost during partition");
            clock.advance(tick);
            fleet.tick(clock.now());
        }
    }
    assert!(fleet.parked_deliveries() > 0, "cross-partition invalidations must park");
    assert!(fleet.stats().probe_failures > 0, "unreachable probes must be observed");

    // Heal, let the parked backlog land and breakers cool down, then
    // read every key twice (first read may be the breaker's half-open
    // probe) to trigger read-repair on the divergent replicas.
    fleet.heal_region(PARTITIONED_REGION);
    clock.advance(network.inter_latency.saturating_mul(2).saturating_add(breaker_cooldown));
    fleet.tick(clock.now());
    assert_eq!(fleet.parked_deliveries(), 0, "heal must flush the parking lot");
    for _pass in 0..2 {
        for k in 0..KEYS {
            let _ = fleet.read(&k, reader, &budget(&clock));
        }
        clock.advance(tick);
        fleet.tick(clock.now());
    }

    for k in 0..KEYS {
        let versions = fleet.replica_versions(&k);
        let want = match k % 3 {
            0 => 2, // overwritten during the outage
            1 => 0, // invalidated: parked delivery lands post-heal
            _ => 1, // untouched
        };
        assert!(
            versions.iter().all(|&(_, v)| v == want),
            "key {k}: replicas {versions:?} did not converge to version {want}"
        );
    }
    assert!(fleet.stats().read_repairs > 0, "stale region-2 copies must be repaired");
}

/// A crashed node comes back empty; repair reads rebuild its copies
/// from the surviving replicas.
#[test]
fn restored_node_is_rebuilt_by_read_repair() {
    let clock = SimClock::new();
    let cfg = FleetConfig {
        seed: seed().wrapping_add(1),
        network: NetworkModel::default(),
        ..FleetConfig::default()
    };
    let cooldown = cfg.breaker_cooldown;
    let mut fleet: CacheFleet<u64, u64> = CacheFleet::with_topology(cfg, clock.clone(), 3, 2);
    let writer = Location::new(0, 0);
    for k in 0..KEYS {
        fleet.fill(&k, &k, 1, writer);
    }

    fleet.crash_node(0);
    // Reads during the crash trip node 0's breaker.
    for k in 0..64 {
        let _ = fleet.read(&k, writer, &budget(&clock));
        clock.advance(SimDuration::from_millis(10));
        fleet.tick(clock.now());
    }
    fleet.restore_node(0);
    clock.advance(cooldown.saturating_add(SimDuration::from_millis(10)));
    fleet.tick(clock.now());

    for _pass in 0..2 {
        for k in 0..KEYS {
            let _ = fleet.read(&k, writer, &budget(&clock));
        }
        clock.advance(SimDuration::from_millis(10));
        fleet.tick(clock.now());
    }
    for k in 0..KEYS {
        assert!(
            fleet.replica_versions(&k).iter().all(|&(_, v)| v == 1),
            "key {k}: restored node still missing its copy"
        );
    }
    assert!(fleet.stats().read_repairs > 0);
}
