//! Seeded property tests for the consistent-hash ring: assignment is
//! deterministic (and join-order invariant), balanced (max/min node
//! load ratio ≤ 1.25 at 256 vnodes), and membership changes move only
//! the affected arcs.

use hc_cache::fleet::HashRing;
use proptest::prelude::*;

fn keys(n: u64) -> Vec<u64> {
    (0..n).collect()
}

fn build(seed: u64, vnodes: usize, nodes: &[usize]) -> HashRing {
    let mut ring = HashRing::new(seed, vnodes);
    for &n in nodes {
        ring.add_node(n);
    }
    ring
}

fn ratio(ring: &HashRing, sample: &[u64]) -> f64 {
    let counts = ring.load_counts(sample);
    let min = counts.iter().map(|&(_, c)| c).min().unwrap_or(0);
    let max = counts.iter().map(|&(_, c)| c).max().unwrap_or(0);
    max as f64 / min.max(1) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same `(seed, vnodes, membership)` always yields the same
    /// replica sets — regardless of the order nodes joined in.
    #[test]
    fn assignment_is_deterministic_and_join_order_invariant(
        seed in any::<u64>(),
        nodes in 2usize..=12,
    ) {
        let forward: Vec<usize> = (0..nodes).collect();
        let reverse: Vec<usize> = (0..nodes).rev().collect();
        let a = build(seed, 64, &forward);
        let b = build(seed, 64, &forward);
        let c = build(seed, 64, &reverse);
        for k in 0..512u64 {
            let set = a.replicas(&k, 3);
            prop_assert_eq!(&set, &b.replicas(&k, 3), "same history must agree");
            prop_assert_eq!(&set, &c.replicas(&k, 3), "join order must not matter");
            prop_assert_eq!(set.len(), 3.min(nodes));
            let mut distinct = set.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), 3.min(nodes), "replicas must be distinct");
        }
    }

    /// At 256 vnodes the heaviest node carries at most 1.25x the
    /// lightest, for any seed and any fleet size up to 12.
    #[test]
    fn ring_is_balanced_at_256_vnodes(
        seed in any::<u64>(),
        nodes in 2usize..=12,
    ) {
        let members: Vec<usize> = (0..nodes).collect();
        let ring = build(seed, 256, &members);
        let sample = keys(65_536);
        let r = ratio(&ring, &sample);
        prop_assert!(r <= 1.25, "max/min load ratio {r:.3} > 1.25 ({nodes} nodes, seed {seed})");
    }

    /// A leave re-homes only the leaver's keys; every key the leaver did
    /// not own keeps its primary.
    #[test]
    fn leave_moves_only_the_lost_arcs(
        seed in any::<u64>(),
        nodes in 3usize..=12,
    ) {
        let members: Vec<usize> = (0..nodes).collect();
        let before = build(seed, 64, &members);
        let mut after = before.clone();
        let leaver = nodes / 2;
        after.remove_node(leaver);
        for k in 0..2_048u64 {
            if before.primary(&k) != Some(leaver) {
                prop_assert_eq!(before.primary(&k), after.primary(&k));
            } else {
                prop_assert_ne!(after.primary(&k), Some(leaver));
            }
        }
    }
}

#[test]
#[ignore = "calibration sweep, run by hand with --nocapture"]
fn calibrate_balance() {
    let sample = keys(65_536);
    for nodes in [4usize, 6, 8, 12] {
        for vnodes in [128usize, 256] {
            let mut worst: f64 = 0.0;
            for seed in 0..64u64 {
                let members: Vec<usize> = (0..nodes).collect();
                worst = worst.max(ratio(&build(seed, vnodes, &members), &sample));
            }
            println!("nodes={nodes} vnodes={vnodes} worst-of-64-seeds={worst:.3}");
        }
    }
}
