//! The trusted back-end storage system ("Data Lake") of the platform.
//!
//! §II-B: "After successful validation, the data is de-identified and
//! stored in the backend storage system (Data Lake) with a reference-id,
//! and the reference-id to identity the mapping is stored in the
//! metadata." §IV-B1: "Both the original and anonymized versions of data
//! objects are encrypted and stored."
//!
//! * [`wal`] — a write-ahead log with CRC-protected, length-prefixed
//!   records and corruption-detecting replay; the durability substrate.
//! * [`datalake`] — the versioned object store: reference-id addressing,
//!   the confidential reference-id → patient identity mapping, a tag
//!   metadata index, hot/cold tiering with simulated access latency, and
//!   tombstone + purge secure deletion (pairing with KMS crypto-shredding).
//!
//! # Examples
//!
//! ```
//! use hc_storage::datalake::{DataLake, Tier};
//! use hc_common::clock::SimClock;
//!
//! let mut lake = DataLake::new(SimClock::new());
//! let mut rng = hc_common::rng::seeded(1);
//! let rid = lake.put(&mut rng, b"sealed bytes".to_vec(), &[("kind", "observation")]);
//! assert_eq!(lake.get_latest(rid).unwrap().data, b"sealed bytes");
//! assert_eq!(lake.find_by_tag("kind", "observation"), vec![rid]);
//! ```

#![forbid(unsafe_code)]

pub mod datalake;
pub mod wal;
