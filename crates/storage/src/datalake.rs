//! The versioned, tiered data lake.
//!
//! Records are addressed by an opaque [`ReferenceId`] (the de-identified
//! handle the rest of the platform passes around); the confidential
//! reference-id → patient mapping lives in a separate metadata map, as the
//! paper prescribes. Every mutation is logged to the WAL first. Records
//! carry versions ("Both the original and anonymized versions of data
//! objects are encrypted and stored"), a tag index supports retrieval, and
//! a hot/cold tier split models the latency difference between online
//! storage and archival storage. Deletion is two-phase: tombstone, then
//! purge (the caller pairs purge with KMS crypto-shredding for true
//! secure deletion).

use std::collections::{BTreeMap, HashMap, HashSet};

use hc_common::clock::{SimClock, SimDuration};
use hc_common::fault::{FaultInjector, FaultKind};
use hc_common::id::{PatientId, ReferenceId};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::wal::{WalError, WalOp, WriteAheadLog};

/// Fault point consulted by [`DataLake::try_put`]: an active
/// [`FaultKind::StorageCrash`] here crashes the store mid-WAL-append,
/// leaving a torn record at the log tail for
/// [`DataLake::recover_from_wal`] to clean up.
pub const STORAGE_CRASH: &str = "storage.crash";

/// Storage tier of a record version.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Tier {
    /// Online storage: fast access.
    Hot,
    /// Archival storage: slow access, cheap capacity.
    Cold,
}

/// One stored version of a record.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StoredVersion {
    /// 1-based version number.
    pub version: u32,
    /// The (normally sealed/encrypted) payload bytes.
    pub data: Vec<u8>,
    /// Free-form metadata tags.
    pub tags: BTreeMap<String, String>,
    /// Which tier the bytes live on.
    pub tier: Tier,
}

/// Errors returned by the data lake.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LakeError {
    /// No record under this reference id (or it was purged).
    Unknown(ReferenceId),
    /// The record is tombstoned and cannot be read.
    Tombstoned(ReferenceId),
    /// The requested version does not exist.
    NoSuchVersion {
        /// The record.
        reference: ReferenceId,
        /// The missing version.
        version: u32,
    },
    /// The store crashed mid-WAL-append: the write was lost and the log
    /// tail is torn. Run [`DataLake::recover_from_wal`] before trusting
    /// [`DataLake::verify_against_wal`] again.
    CrashedMidWrite,
}

impl std::fmt::Display for LakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LakeError::Unknown(r) => write!(f, "unknown record {r}"),
            LakeError::Tombstoned(r) => write!(f, "record {r} is deleted"),
            LakeError::NoSuchVersion { reference, version } => {
                write!(f, "record {reference} has no version {version}")
            }
            LakeError::CrashedMidWrite => {
                write!(f, "storage crashed mid-write; WAL tail is torn")
            }
        }
    }
}

/// What [`DataLake::recover_from_wal`] found and fixed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WalRecoveryReport {
    /// Intact records replayed from the log.
    pub records_replayed: usize,
    /// Torn-tail bytes discarded.
    pub torn_bytes_discarded: usize,
    /// Whether the lake verified clean against the repaired log.
    pub consistent: bool,
}

impl std::error::Error for LakeError {}

struct RecordEntry {
    versions: Vec<StoredVersion>,
    tombstoned: bool,
}

/// Metadata-only audit view of one record, from
/// [`DataLake::audit_records`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecordAudit {
    /// The record's reference id.
    pub reference: ReferenceId,
    /// Whether the record is tombstoned (phase one of deletion).
    pub tombstoned: bool,
    /// The patient this reference maps to, when an identity mapping exists
    /// (identified PHI rather than de-identified derivatives).
    pub patient: Option<PatientId>,
    /// Per-version metadata, oldest first.
    pub versions: Vec<VersionAudit>,
}

/// Metadata-only audit view of one stored version.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VersionAudit {
    /// 1-based version number.
    pub version: u32,
    /// The version's metadata tags.
    pub tags: BTreeMap<String, String>,
    /// Storage tier.
    pub tier: Tier,
    /// Payload length in bytes (bytes themselves are never exposed).
    pub payload_len: usize,
}

/// The data lake.
pub struct DataLake {
    clock: SimClock,
    wal: WriteAheadLog,
    records: HashMap<ReferenceId, RecordEntry>,
    tag_index: HashMap<(String, String), HashSet<ReferenceId>>,
    identity_map: HashMap<ReferenceId, PatientId>,
    hot_latency: SimDuration,
    cold_latency: SimDuration,
    injector: FaultInjector,
}

impl std::fmt::Debug for DataLake {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataLake")
            .field("records", &self.records.len())
            .field("wal_records", &self.wal.record_count())
            .finish()
    }
}

impl DataLake {
    /// Creates a lake with default tier latencies (100 µs hot, 20 ms cold).
    pub fn new(clock: SimClock) -> Self {
        DataLake {
            clock,
            wal: WriteAheadLog::new(),
            records: HashMap::new(),
            tag_index: HashMap::new(),
            identity_map: HashMap::new(),
            hot_latency: SimDuration::from_micros(100),
            cold_latency: SimDuration::from_millis(20),
            injector: FaultInjector::disabled(),
        }
    }

    /// Attaches a fault injector; [`STORAGE_CRASH`] faults hit
    /// [`try_put`](Self::try_put).
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = injector;
    }

    /// Overrides tier access latencies.
    #[must_use]
    pub fn with_tier_latencies(mut self, hot: SimDuration, cold: SimDuration) -> Self {
        self.hot_latency = hot;
        self.cold_latency = cold;
        self
    }

    /// Stores a new record on the hot tier, returning its reference id.
    pub fn put<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        data: Vec<u8>,
        tags: &[(&str, &str)],
    ) -> ReferenceId {
        let reference = ReferenceId::random(rng);
        self.put_version_internal(reference, data, tags);
        reference
    }

    /// Fault-aware [`put`](Self::put): consults the [`STORAGE_CRASH`]
    /// fault point first. A [`FaultKind::StorageCrash`] (or other hard
    /// fault) there crashes the store mid-WAL-append — the in-memory
    /// state never sees the write and the log is left with a torn tail.
    /// A latency spike just slows the write down. With no injector (or
    /// no active fault) this is exactly `put`.
    ///
    /// # Errors
    ///
    /// Returns [`LakeError::CrashedMidWrite`] when the scripted crash
    /// fires.
    pub fn try_put<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        data: Vec<u8>,
        tags: &[(&str, &str)],
    ) -> Result<ReferenceId, LakeError> {
        match self.injector.check(STORAGE_CRASH) {
            None => {}
            Some(FaultKind::LatencySpike(extra)) => {
                self.clock.advance(extra);
            }
            Some(_) => {
                // Crash mid-append: the length prefix and most of the
                // body hit the log, the tail did not, and the in-memory
                // maps were never touched.
                let reference = ReferenceId::random(rng);
                self.wal.append_torn(reference.as_u128(), WalOp::Put, &data);
                self.clock.advance(self.hot_latency);
                return Err(LakeError::CrashedMidWrite);
            }
        }
        Ok(self.put(rng, data, tags))
    }

    /// Crash recovery: replays the WAL, discards any torn tail, and
    /// re-verifies the lake against the repaired log.
    pub fn recover_from_wal(&mut self) -> WalRecoveryReport {
        let (records, err) = self.wal.replay();
        let mut report = WalRecoveryReport {
            records_replayed: records.len(),
            ..WalRecoveryReport::default()
        };
        if let Some(e) = err {
            let offset = match e {
                WalError::ChecksumMismatch { offset }
                | WalError::TruncatedRecord { offset }
                | WalError::MalformedRecord { offset } => offset,
            };
            report.torn_bytes_discarded = self.wal.byte_len() - offset;
            self.wal.truncate_to(offset);
        }
        report.consistent = self.verify_against_wal().is_empty();
        report
    }

    /// Appends a new version to an existing record.
    ///
    /// # Errors
    ///
    /// Fails if the record is unknown or tombstoned.
    pub fn put_version(
        &mut self,
        reference: ReferenceId,
        data: Vec<u8>,
        tags: &[(&str, &str)],
    ) -> Result<u32, LakeError> {
        match self.records.get(&reference) {
            None => return Err(LakeError::Unknown(reference)),
            Some(e) if e.tombstoned => return Err(LakeError::Tombstoned(reference)),
            Some(_) => {}
        }
        Ok(self.put_version_internal(reference, data, tags))
    }

    fn put_version_internal(
        &mut self,
        reference: ReferenceId,
        data: Vec<u8>,
        tags: &[(&str, &str)],
    ) -> u32 {
        self.wal.append(reference.as_u128(), WalOp::Put, &data);
        let entry = self.records.entry(reference).or_insert(RecordEntry {
            versions: Vec::new(),
            tombstoned: false,
        });
        let version = entry.versions.len() as u32 + 1;
        let tag_map: BTreeMap<String, String> = tags
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        for (k, v) in &tag_map {
            self.tag_index
                .entry((k.clone(), v.clone()))
                .or_default()
                .insert(reference);
        }
        entry.versions.push(StoredVersion {
            version,
            data,
            tags: tag_map,
            tier: Tier::Hot,
        });
        self.clock.advance(self.hot_latency);
        version
    }

    /// Records the confidential reference-id → patient identity mapping.
    pub fn map_identity(&mut self, reference: ReferenceId, patient: PatientId) {
        self.identity_map.insert(reference, patient);
    }

    /// Looks up the patient behind a reference id (re-identification; the
    /// caller must enforce authorization and consent first).
    pub fn identity_of(&self, reference: ReferenceId) -> Option<PatientId> {
        self.identity_map.get(&reference).copied()
    }

    /// All reference ids mapped to `patient` (for right-to-forget sweeps).
    pub fn references_of(&self, patient: PatientId) -> Vec<ReferenceId> {
        let mut refs: Vec<ReferenceId> = self
            .identity_map
            .iter()
            .filter(|(_, p)| **p == patient)
            .map(|(r, _)| *r)
            .collect();
        refs.sort();
        refs
    }

    /// Reads the latest version, charging tier latency.
    ///
    /// # Errors
    ///
    /// Fails if the record is unknown or tombstoned.
    pub fn get_latest(&mut self, reference: ReferenceId) -> Result<&StoredVersion, LakeError> {
        let entry = self
            .records
            .get(&reference)
            .ok_or(LakeError::Unknown(reference))?;
        if entry.tombstoned {
            return Err(LakeError::Tombstoned(reference));
        }
        let version = entry.versions.last().ok_or(LakeError::Unknown(reference))?;
        let latency = match version.tier {
            Tier::Hot => self.hot_latency,
            Tier::Cold => self.cold_latency,
        };
        self.clock.advance(latency);
        // Re-borrow after the clock mutation; the entry cannot have
        // vanished, but return an error rather than trusting that.
        self.records
            .get(&reference)
            .and_then(|e| e.versions.last())
            .ok_or(LakeError::Unknown(reference))
    }

    /// Reads a specific version.
    ///
    /// # Errors
    ///
    /// Fails if the record or version is missing, or the record deleted.
    pub fn get_version(
        &mut self,
        reference: ReferenceId,
        version: u32,
    ) -> Result<&StoredVersion, LakeError> {
        let entry = self
            .records
            .get(&reference)
            .ok_or(LakeError::Unknown(reference))?;
        if entry.tombstoned {
            return Err(LakeError::Tombstoned(reference));
        }
        let idx = version
            .checked_sub(1)
            .map(|i| i as usize)
            .filter(|&i| i < entry.versions.len())
            .ok_or(LakeError::NoSuchVersion { reference, version })?;
        let latency = match entry.versions.get(idx).map(|v| v.tier) {
            Some(Tier::Hot) => self.hot_latency,
            Some(Tier::Cold) => self.cold_latency,
            None => return Err(LakeError::NoSuchVersion { reference, version }),
        };
        self.clock.advance(latency);
        self.records
            .get(&reference)
            .and_then(|e| e.versions.get(idx))
            .ok_or(LakeError::NoSuchVersion { reference, version })
    }

    /// Tombstones a record: reads fail, bytes remain until [`purge`](Self::purge).
    ///
    /// # Errors
    ///
    /// Fails if the record is unknown.
    pub fn tombstone(&mut self, reference: ReferenceId) -> Result<(), LakeError> {
        let entry = self
            .records
            .get_mut(&reference)
            .ok_or(LakeError::Unknown(reference))?;
        entry.tombstoned = true;
        self.wal.append(reference.as_u128(), WalOp::Delete, b"");
        Ok(())
    }

    /// Physically removes a tombstoned record and its index entries.
    ///
    /// Pair with KMS shredding of the record's DEK for cryptographic
    /// deletion across backups.
    ///
    /// # Errors
    ///
    /// Fails if the record is unknown; purging a live (non-tombstoned)
    /// record is allowed and acts as tombstone + purge.
    pub fn purge(&mut self, reference: ReferenceId) -> Result<(), LakeError> {
        let entry = self
            .records
            .remove(&reference)
            .ok_or(LakeError::Unknown(reference))?;
        for v in &entry.versions {
            for (k, val) in &v.tags {
                if let Some(set) = self.tag_index.get_mut(&(k.clone(), val.clone())) {
                    set.remove(&reference);
                }
            }
        }
        self.identity_map.remove(&reference);
        self.wal.append(reference.as_u128(), WalOp::Purge, b"");
        Ok(())
    }

    /// Demotes all versions of a record to the cold tier.
    ///
    /// # Errors
    ///
    /// Fails if the record is unknown.
    pub fn demote(&mut self, reference: ReferenceId) -> Result<(), LakeError> {
        let entry = self
            .records
            .get_mut(&reference)
            .ok_or(LakeError::Unknown(reference))?;
        for v in &mut entry.versions {
            v.tier = Tier::Cold;
        }
        Ok(())
    }

    /// Promotes the latest version back to hot (e.g. after a cold hit).
    ///
    /// # Errors
    ///
    /// Fails if the record is unknown.
    pub fn promote_latest(&mut self, reference: ReferenceId) -> Result<(), LakeError> {
        let entry = self
            .records
            .get_mut(&reference)
            .ok_or(LakeError::Unknown(reference))?;
        if let Some(v) = entry.versions.last_mut() {
            v.tier = Tier::Hot;
        }
        Ok(())
    }

    /// Reference ids carrying the tag `(key, value)`, sorted.
    pub fn find_by_tag(&self, key: &str, value: &str) -> Vec<ReferenceId> {
        let mut refs: Vec<ReferenceId> = self
            .tag_index
            .get(&(key.to_owned(), value.to_owned()))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        refs.sort();
        refs
    }

    /// Number of live (non-tombstoned) records.
    pub fn live_count(&self) -> usize {
        self.records.values().filter(|e| !e.tombstoned).count()
    }

    /// Read-only audit view over every stored record, sorted by reference
    /// id for deterministic scans. Exposes per-version metadata (tags,
    /// tier, payload length) but never payload bytes — the posture
    /// scanner's encryption-at-rest audit runs on this.
    pub fn audit_records(&self) -> Vec<RecordAudit> {
        let mut all: Vec<RecordAudit> = self
            .records
            .iter()
            .map(|(&reference, entry)| RecordAudit {
                reference,
                tombstoned: entry.tombstoned,
                patient: self.identity_map.get(&reference).copied(),
                versions: entry
                    .versions
                    .iter()
                    .map(|v| VersionAudit {
                        version: v.version,
                        tags: v.tags.clone(),
                        tier: v.tier,
                        payload_len: v.data.len(),
                    })
                    .collect(),
            })
            .collect();
        all.sort_by_key(|r| r.reference);
        all
    }

    /// The WAL (for recovery and fault-injection tests).
    pub fn wal(&self) -> &WriteAheadLog {
        &self.wal
    }

    /// Crash-recovery check: replays the WAL and verifies that every
    /// live record's versions match the logged `Put` payloads in order
    /// and that tombstoned/purged records are absent. Returns the list
    /// of discrepancies (empty = consistent).
    pub fn verify_against_wal(&self) -> Vec<String> {
        use std::collections::HashMap as Map;
        let (records, err) = self.wal.replay();
        let mut problems = Vec::new();
        if let Some(e) = err {
            problems.push(format!("wal corruption: {e}"));
            return problems;
        }
        // Rebuild expected state from the log.
        let mut expected: Map<u128, (Vec<Vec<u8>>, bool)> = Map::new(); // (versions, tombstoned)
        for r in records {
            match r.op {
                WalOp::Put => expected.entry(r.key).or_default().0.push(r.payload),
                WalOp::Delete => {
                    expected.entry(r.key).or_default().1 = true;
                }
                WalOp::Purge => {
                    expected.remove(&r.key);
                }
            }
        }
        for (key, (versions, tombstoned)) in &expected {
            let reference = ReferenceId::from_raw(*key);
            match self.records.get(&reference) {
                None => problems.push(format!("record {reference} in WAL but not in lake")),
                Some(entry) => {
                    if entry.tombstoned != *tombstoned {
                        problems.push(format!("record {reference} tombstone state diverges"));
                    }
                    if entry.versions.len() != versions.len() {
                        problems.push(format!(
                            "record {reference} has {} versions, WAL has {}",
                            entry.versions.len(),
                            versions.len()
                        ));
                    } else {
                        for (i, (stored, logged)) in
                            entry.versions.iter().zip(versions).enumerate()
                        {
                            if &stored.data != logged {
                                problems.push(format!(
                                    "record {reference} version {} diverges from WAL",
                                    i + 1
                                ));
                            }
                        }
                    }
                }
            }
        }
        for reference in self.records.keys() {
            if !expected.contains_key(&reference.as_u128()) {
                problems.push(format!("record {reference} in lake but not in WAL"));
            }
        }
        problems
    }

    /// The shared clock handle.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lake() -> (DataLake, rand::rngs::StdRng) {
        (DataLake::new(SimClock::new()), hc_common::rng::seeded(7))
    }

    #[test]
    fn put_get_round_trip() {
        let (mut lake, mut rng) = lake();
        let r = lake.put(&mut rng, b"v1".to_vec(), &[("kind", "obs")]);
        let v = lake.get_latest(r).unwrap();
        assert_eq!(v.data, b"v1");
        assert_eq!(v.version, 1);
        assert_eq!(v.tier, Tier::Hot);
    }

    #[test]
    fn versions_accumulate() {
        let (mut lake, mut rng) = lake();
        let r = lake.put(&mut rng, b"v1".to_vec(), &[]);
        let v2 = lake.put_version(r, b"v2".to_vec(), &[]).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(lake.get_latest(r).unwrap().data, b"v2");
        assert_eq!(lake.get_version(r, 1).unwrap().data, b"v1");
    }

    #[test]
    fn missing_version_errors() {
        let (mut lake, mut rng) = lake();
        let r = lake.put(&mut rng, b"v1".to_vec(), &[]);
        assert!(matches!(
            lake.get_version(r, 5),
            Err(LakeError::NoSuchVersion { version: 5, .. })
        ));
        assert!(matches!(
            lake.get_version(r, 0),
            Err(LakeError::NoSuchVersion { .. })
        ));
    }

    #[test]
    fn tombstone_blocks_reads_purge_removes() {
        let (mut lake, mut rng) = lake();
        let r = lake.put(&mut rng, b"v".to_vec(), &[("k", "v")]);
        lake.tombstone(r).unwrap();
        assert_eq!(lake.get_latest(r), Err(LakeError::Tombstoned(r)));
        assert_eq!(lake.live_count(), 0);
        lake.purge(r).unwrap();
        assert_eq!(lake.get_latest(r), Err(LakeError::Unknown(r)));
        assert!(lake.find_by_tag("k", "v").is_empty());
    }

    #[test]
    fn identity_mapping_and_right_to_forget_sweep() {
        let (mut lake, mut rng) = lake();
        let p = PatientId::from_raw(42);
        let r1 = lake.put(&mut rng, b"a".to_vec(), &[]);
        let r2 = lake.put(&mut rng, b"b".to_vec(), &[]);
        let r3 = lake.put(&mut rng, b"c".to_vec(), &[]);
        lake.map_identity(r1, p);
        lake.map_identity(r2, p);
        lake.map_identity(r3, PatientId::from_raw(9));
        let refs = lake.references_of(p);
        assert_eq!(refs.len(), 2);
        for r in refs {
            lake.purge(r).unwrap();
        }
        assert!(lake.references_of(p).is_empty());
        assert_eq!(lake.identity_of(r3), Some(PatientId::from_raw(9)));
    }

    #[test]
    fn tag_index_finds_records() {
        let (mut lake, mut rng) = lake();
        let r1 = lake.put(&mut rng, b"a".to_vec(), &[("study", "s1")]);
        let _r2 = lake.put(&mut rng, b"b".to_vec(), &[("study", "s2")]);
        assert_eq!(lake.find_by_tag("study", "s1"), vec![r1]);
        assert!(lake.find_by_tag("study", "s3").is_empty());
    }

    #[test]
    fn cold_tier_costs_more() {
        let (mut lake, mut rng) = lake();
        let r = lake.put(&mut rng, b"v".to_vec(), &[]);
        let t0 = lake.clock().now();
        let _ = lake.get_latest(r).unwrap();
        let hot_cost = lake.clock().now().duration_since(t0);
        lake.demote(r).unwrap();
        let t1 = lake.clock().now();
        let _ = lake.get_latest(r).unwrap();
        let cold_cost = lake.clock().now().duration_since(t1);
        assert!(cold_cost.as_nanos() > 10 * hot_cost.as_nanos());
        lake.promote_latest(r).unwrap();
        assert_eq!(lake.get_latest(r).unwrap().tier, Tier::Hot);
    }

    #[test]
    fn wal_records_every_mutation() {
        let (mut lake, mut rng) = lake();
        let r = lake.put(&mut rng, b"v".to_vec(), &[]);
        lake.put_version(r, b"v2".to_vec(), &[]).unwrap();
        lake.tombstone(r).unwrap();
        lake.purge(r).unwrap();
        let (records, err) = lake.wal().replay();
        assert!(err.is_none());
        assert_eq!(records.len(), 4);
        assert_eq!(records[2].op, WalOp::Delete);
        assert_eq!(records[3].op, WalOp::Purge);
    }

    #[test]
    fn put_version_on_tombstoned_fails() {
        let (mut lake, mut rng) = lake();
        let r = lake.put(&mut rng, b"v".to_vec(), &[]);
        lake.tombstone(r).unwrap();
        assert_eq!(
            lake.put_version(r, b"v2".to_vec(), &[]),
            Err(LakeError::Tombstoned(r))
        );
    }
}

#[cfg(test)]
mod wal_recovery_tests {
    use super::*;

    #[test]
    fn consistent_lake_verifies_against_wal() {
        let mut lake = DataLake::new(SimClock::new());
        let mut rng = hc_common::rng::seeded(60);
        let r1 = lake.put(&mut rng, b"a".to_vec(), &[]);
        lake.put_version(r1, b"a2".to_vec(), &[]).unwrap();
        let r2 = lake.put(&mut rng, b"b".to_vec(), &[]);
        lake.tombstone(r2).unwrap();
        let r3 = lake.put(&mut rng, b"c".to_vec(), &[]);
        lake.tombstone(r3).unwrap();
        lake.purge(r3).unwrap();
        assert!(lake.verify_against_wal().is_empty());
    }

    #[test]
    fn silent_state_mutation_detected() {
        let mut lake = DataLake::new(SimClock::new());
        let mut rng = hc_common::rng::seeded(61);
        let r = lake.put(&mut rng, b"original".to_vec(), &[]);
        // Bypass the WAL: mutate in-memory state directly (simulated
        // memory corruption / bug).
        lake.records.get_mut(&r).unwrap().versions[0].data = b"corrupt".to_vec();
        let problems = lake.verify_against_wal();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("diverges from WAL"));
    }

    #[test]
    fn crash_mid_wal_append_recovers_consistently() {
        use hc_common::fault::FaultSpec;

        let clock = SimClock::new();
        let mut lake = DataLake::new(clock.clone());
        let mut rng = hc_common::rng::seeded(63);
        let injector = FaultInjector::new(clock, 0xD1E);
        injector.schedule(
            STORAGE_CRASH,
            FaultSpec::always(FaultKind::StorageCrash).limit(1),
        );
        lake.set_fault_injector(injector);

        let r1 = lake.put(&mut rng, b"before".to_vec(), &[]);
        let err = lake.try_put(&mut rng, b"doomed".to_vec(), &[]).unwrap_err();
        assert_eq!(err, LakeError::CrashedMidWrite);
        // The torn tail makes the log unverifiable until recovery runs.
        assert!(lake.verify_against_wal()[0].contains("wal corruption"));

        let report = lake.recover_from_wal();
        assert_eq!(report.records_replayed, 1);
        assert!(report.torn_bytes_discarded > 0);
        assert!(report.consistent);
        assert!(lake.verify_against_wal().is_empty());

        // The crash budget is spent: writes work again and the durable
        // record survived untouched.
        let r2 = lake.try_put(&mut rng, b"after".to_vec(), &[]).unwrap();
        assert_eq!(lake.get_latest(r1).unwrap().data, b"before");
        assert_eq!(lake.get_latest(r2).unwrap().data, b"after");
    }

    #[test]
    fn try_put_without_faults_is_plain_put() {
        let mut lake = DataLake::new(SimClock::new());
        let mut rng = hc_common::rng::seeded(64);
        let r = lake.try_put(&mut rng, b"v".to_vec(), &[("k", "v")]).unwrap();
        assert_eq!(lake.get_latest(r).unwrap().data, b"v");
        assert!(lake.verify_against_wal().is_empty());
    }

    #[test]
    fn wal_corruption_reported() {
        let mut lake = DataLake::new(SimClock::new());
        let mut rng = hc_common::rng::seeded(62);
        let _ = lake.put(&mut rng, b"x".to_vec(), &[]);
        lake.wal.as_bytes_mut()[10] ^= 0xff;
        let problems = lake.verify_against_wal();
        assert!(problems[0].contains("wal corruption"));
    }
}
