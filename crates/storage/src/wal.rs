//! A write-ahead log with CRC-protected records.
//!
//! Every data-lake mutation is first appended here. Records are
//! length-prefixed and checksummed (CRC-32/ISO-HDLC, implemented below),
//! so replay detects torn or corrupted tails exactly like an on-disk WAL
//! would — the log itself lives in memory because the platform is a
//! simulation, but the format is byte-faithful.

use serde::{Deserialize, Serialize};

/// CRC-32 (ISO-HDLC polynomial 0xEDB88320), bitwise implementation.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// The operation a WAL record describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum WalOp {
    /// A value was written.
    Put,
    /// A value was tombstoned.
    Delete,
    /// A tombstoned value was physically purged.
    Purge,
}

/// One durable log record.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct WalRecord {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The affected record key (reference id raw value).
    pub key: u128,
    /// What happened.
    pub op: WalOp,
    /// Operation payload (serialized version data; empty for deletes).
    pub payload: Vec<u8>,
}

/// Errors detected during WAL replay.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalError {
    /// A record's checksum did not match its contents.
    ChecksumMismatch {
        /// Byte offset of the corrupt record.
        offset: usize,
    },
    /// The log ended mid-record (torn write).
    TruncatedRecord {
        /// Byte offset of the truncated record.
        offset: usize,
    },
    /// A record body failed to deserialize.
    MalformedRecord {
        /// Byte offset of the malformed record.
        offset: usize,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::ChecksumMismatch { offset } => {
                write!(f, "checksum mismatch at offset {offset}")
            }
            WalError::TruncatedRecord { offset } => {
                write!(f, "truncated record at offset {offset}")
            }
            WalError::MalformedRecord { offset } => {
                write!(f, "malformed record at offset {offset}")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// An append-only, checksummed log.
#[derive(Clone, Debug, Default)]
pub struct WriteAheadLog {
    buf: Vec<u8>,
    next_seq: u64,
}

impl WriteAheadLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        WriteAheadLog::default()
    }

    /// Appends an operation, returning its sequence number.
    pub fn append(&mut self, key: u128, op: WalOp, payload: &[u8]) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let record = WalRecord {
            seq,
            key,
            op,
            payload: payload.to_vec(),
        };
        let body = serde_json::to_vec(&record).expect("wal record serializes");
        self.buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(&body).to_le_bytes());
        self.buf.extend_from_slice(&body);
        seq
    }

    /// Appends a record but tears its tail (the final 4 body bytes never
    /// hit the log), simulating a crash mid-append. The record never
    /// became durable, so its sequence number is not consumed. Returns
    /// the byte offset of the torn record.
    pub fn append_torn(&mut self, key: u128, op: WalOp, payload: &[u8]) -> usize {
        let offset = self.buf.len();
        self.append(key, op, payload);
        self.next_seq -= 1;
        let keep = self.buf.len().saturating_sub(4).max(offset);
        self.buf.truncate(keep);
        offset
    }

    /// Truncates the log to `offset` bytes — crash recovery discarding a
    /// torn tail.
    pub fn truncate_to(&mut self, offset: usize) {
        self.buf.truncate(offset);
    }

    /// Total log size in bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Number of records appended so far.
    pub fn record_count(&self) -> u64 {
        self.next_seq
    }

    /// Raw log bytes (for tamper-injection tests).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Mutable raw bytes (test-only fault injection).
    pub fn as_bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Replays the log from the beginning, verifying checksums.
    ///
    /// # Errors
    ///
    /// Stops at the first corruption, returning the records recovered so
    /// far alongside the error — the standard crash-recovery contract.
    pub fn replay(&self) -> (Vec<WalRecord>, Option<WalError>) {
        let mut records = Vec::new();
        let mut offset = 0usize;
        while offset < self.buf.len() {
            if offset + 8 > self.buf.len() {
                return (records, Some(WalError::TruncatedRecord { offset }));
            }
            let len = u32::from_le_bytes(
                self.buf[offset..offset + 4]
                    .try_into()
                    .expect("4 bytes sliced"),
            ) as usize;
            let stored_crc = u32::from_le_bytes(
                self.buf[offset + 4..offset + 8]
                    .try_into()
                    .expect("4 bytes sliced"),
            );
            let body_start = offset + 8;
            if body_start + len > self.buf.len() {
                return (records, Some(WalError::TruncatedRecord { offset }));
            }
            let body = &self.buf[body_start..body_start + len];
            if crc32(body) != stored_crc {
                return (records, Some(WalError::ChecksumMismatch { offset }));
            }
            match serde_json::from_slice::<WalRecord>(body) {
                Ok(record) => records.push(record),
                Err(_) => return (records, Some(WalError::MalformedRecord { offset })),
            }
            offset = body_start + len;
        }
        (records, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_known_value() {
        // The canonical "123456789" check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn replay_round_trips() {
        let mut wal = WriteAheadLog::new();
        wal.append(1, WalOp::Put, b"v1");
        wal.append(1, WalOp::Put, b"v2");
        wal.append(1, WalOp::Delete, b"");
        let (records, err) = wal.replay();
        assert!(err.is_none());
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[2].op, WalOp::Delete);
    }

    #[test]
    fn corruption_detected() {
        let mut wal = WriteAheadLog::new();
        wal.append(1, WalOp::Put, b"payload-a");
        wal.append(2, WalOp::Put, b"payload-b");
        // Flip a byte in the middle of the second record's body.
        let len = wal.as_bytes().len();
        wal.as_bytes_mut()[len - 3] ^= 0xff;
        let (records, err) = wal.replay();
        assert_eq!(records.len(), 1, "first record recovered");
        assert!(matches!(err, Some(WalError::ChecksumMismatch { .. })));
    }

    #[test]
    fn torn_tail_detected() {
        let mut wal = WriteAheadLog::new();
        wal.append(1, WalOp::Put, b"payload");
        let new_len = wal.byte_len() - 4;
        wal.as_bytes_mut().truncate(new_len);
        let (records, err) = wal.replay();
        assert!(records.is_empty());
        assert!(matches!(err, Some(WalError::TruncatedRecord { .. })));
    }

    #[test]
    fn sequence_numbers_monotonic() {
        let mut wal = WriteAheadLog::new();
        assert_eq!(wal.append(1, WalOp::Put, b""), 0);
        assert_eq!(wal.append(1, WalOp::Put, b""), 1);
        assert_eq!(wal.record_count(), 2);
    }

    proptest! {
        #[test]
        fn arbitrary_payloads_replay(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..20)
        ) {
            let mut wal = WriteAheadLog::new();
            for (i, p) in payloads.iter().enumerate() {
                wal.append(i as u128, WalOp::Put, p);
            }
            let (records, err) = wal.replay();
            prop_assert!(err.is_none());
            prop_assert_eq!(records.len(), payloads.len());
            for (r, p) in records.iter().zip(&payloads) {
                prop_assert_eq!(&r.payload, p);
            }
        }
    }
}
