//! Change management.
//!
//! §II-B: "All authorized changes are first described, evaluated and
//! finally approved in the change management system; thereafter the CM
//! service accordingly updates the Attestation Service regarding the
//! approved changes and their new signatures."
//!
//! [`ChangeManagement`] drives change requests through the
//! described → evaluated → approved/rejected state machine; on approval it
//! pushes the new golden measurement into the [`AttestationService`].

use std::collections::HashMap;

use hc_common::id::ChangeId;
use hc_crypto::sha256::Digest;

use crate::attestation::AttestationService;

/// Lifecycle state of a change request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChangeState {
    /// Submitted with a description.
    Described,
    /// Reviewed/evaluated by the compliance policy.
    Evaluated,
    /// Approved and applied to the attestation service.
    Approved,
    /// Rejected; never applied.
    Rejected,
}

/// A change request against one component.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChangeRequest {
    /// Request id.
    pub id: ChangeId,
    /// The component whose golden measurement changes.
    pub component: String,
    /// The new measurement proposed.
    pub new_measurement: Digest,
    /// Free-form description/justification.
    pub description: String,
    /// Current state.
    pub state: ChangeState,
}

/// Errors from the change-management state machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChangeError {
    /// No request with this id.
    Unknown(ChangeId),
    /// The request is not in the state the operation requires.
    WrongState {
        /// The request.
        id: ChangeId,
        /// The state it is actually in.
        actual: ChangeState,
    },
}

impl std::fmt::Display for ChangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChangeError::Unknown(id) => write!(f, "unknown change request {id}"),
            ChangeError::WrongState { id, actual } => {
                write!(f, "change {id} is in state {actual:?}")
            }
        }
    }
}

impl std::error::Error for ChangeError {}

/// The change management service.
#[derive(Debug, Default)]
pub struct ChangeManagement {
    requests: HashMap<ChangeId, ChangeRequest>,
    next_raw: u128,
}

impl ChangeManagement {
    /// Creates an empty service.
    pub fn new() -> Self {
        ChangeManagement::default()
    }

    /// Describes (submits) a change, returning its id.
    pub fn describe(
        &mut self,
        component: &str,
        new_measurement: Digest,
        description: &str,
    ) -> ChangeId {
        self.next_raw += 1;
        let id = ChangeId::from_raw(self.next_raw);
        self.requests.insert(
            id,
            ChangeRequest {
                id,
                component: component.to_owned(),
                new_measurement,
                description: description.to_owned(),
                state: ChangeState::Described,
            },
        );
        id
    }

    /// Marks a described change as evaluated.
    ///
    /// # Errors
    ///
    /// Fails if the id is unknown or the request is not `Described`.
    pub fn evaluate(&mut self, id: ChangeId) -> Result<(), ChangeError> {
        let req = self.requests.get_mut(&id).ok_or(ChangeError::Unknown(id))?;
        if req.state != ChangeState::Described {
            return Err(ChangeError::WrongState {
                id,
                actual: req.state,
            });
        }
        req.state = ChangeState::Evaluated;
        Ok(())
    }

    /// Approves an evaluated change, updating the attestation service's
    /// golden value for the component.
    ///
    /// # Errors
    ///
    /// Fails if the id is unknown or the request is not `Evaluated`.
    pub fn approve(
        &mut self,
        id: ChangeId,
        attestation: &mut AttestationService,
    ) -> Result<(), ChangeError> {
        let req = self.requests.get_mut(&id).ok_or(ChangeError::Unknown(id))?;
        if req.state != ChangeState::Evaluated {
            return Err(ChangeError::WrongState {
                id,
                actual: req.state,
            });
        }
        req.state = ChangeState::Approved;
        attestation.update_golden(&req.component, req.new_measurement);
        Ok(())
    }

    /// Rejects a change in any pre-approval state.
    ///
    /// # Errors
    ///
    /// Fails if the id is unknown or the request is already decided.
    pub fn reject(&mut self, id: ChangeId) -> Result<(), ChangeError> {
        let req = self.requests.get_mut(&id).ok_or(ChangeError::Unknown(id))?;
        match req.state {
            ChangeState::Described | ChangeState::Evaluated => {
                req.state = ChangeState::Rejected;
                Ok(())
            }
            actual => Err(ChangeError::WrongState { id, actual }),
        }
    }

    /// Fetches a request.
    pub fn get(&self, id: ChangeId) -> Option<&ChangeRequest> {
        self.requests.get(&id)
    }

    /// All requests in a given state.
    pub fn in_state(&self, state: ChangeState) -> Vec<&ChangeRequest> {
        let mut v: Vec<&ChangeRequest> =
            self.requests.values().filter(|r| r.state == state).collect();
        v.sort_by_key(|r| r.id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{Component, Layer};
    use hc_crypto::sha256;

    #[test]
    fn full_lifecycle_updates_golden() {
        let mut cm = ChangeManagement::new();
        let mut svc = AttestationService::new();
        svc.register_golden(&Component::new(Layer::Vm, "guest", b"v1"));
        let new = sha256::hash(b"v2");
        let id = cm.describe("guest", new, "kernel patch");
        cm.evaluate(id).unwrap();
        cm.approve(id, &mut svc).unwrap();
        assert_eq!(svc.golden("guest"), Some(new));
        assert_eq!(cm.get(id).unwrap().state, ChangeState::Approved);
    }

    #[test]
    fn approval_requires_evaluation() {
        let mut cm = ChangeManagement::new();
        let mut svc = AttestationService::new();
        let id = cm.describe("x", sha256::hash(b"v"), "d");
        assert!(matches!(
            cm.approve(id, &mut svc),
            Err(ChangeError::WrongState { .. })
        ));
        assert_eq!(svc.golden("x"), None, "golden untouched");
    }

    #[test]
    fn rejected_change_never_applies() {
        let mut cm = ChangeManagement::new();
        let mut svc = AttestationService::new();
        let id = cm.describe("x", sha256::hash(b"v"), "d");
        cm.evaluate(id).unwrap();
        cm.reject(id).unwrap();
        assert!(matches!(
            cm.approve(id, &mut svc),
            Err(ChangeError::WrongState { .. })
        ));
    }

    #[test]
    fn cannot_reject_approved() {
        let mut cm = ChangeManagement::new();
        let mut svc = AttestationService::new();
        let id = cm.describe("x", sha256::hash(b"v"), "d");
        cm.evaluate(id).unwrap();
        cm.approve(id, &mut svc).unwrap();
        assert!(cm.reject(id).is_err());
    }

    #[test]
    fn unknown_id_errors() {
        let mut cm = ChangeManagement::new();
        let bogus = ChangeId::from_raw(999);
        assert_eq!(cm.evaluate(bogus), Err(ChangeError::Unknown(bogus)));
    }

    #[test]
    fn in_state_filters() {
        let mut cm = ChangeManagement::new();
        let a = cm.describe("a", sha256::hash(b"1"), "");
        let _b = cm.describe("b", sha256::hash(b"2"), "");
        cm.evaluate(a).unwrap();
        assert_eq!(cm.in_state(ChangeState::Described).len(), 1);
        assert_eq!(cm.in_state(ChangeState::Evaluated).len(), 1);
    }

    #[test]
    fn double_evaluate_fails() {
        let mut cm = ChangeManagement::new();
        let id = cm.describe("a", sha256::hash(b"1"), "");
        cm.evaluate(id).unwrap();
        assert!(cm.evaluate(id).is_err());
    }
}
