//! The image management service.
//!
//! §II-A: "The Image Management Service accepts only those VM images that
//! are signed by an approved list of keys managed by an attestation
//! service." Images are content-addressed, signed with hash-based
//! signatures by approved build keys, and verified again at deploy time.

use std::collections::{HashMap, HashSet};

use hc_common::id::ImageId;
use hc_crypto::ots::{self, MerklePublicKey, MerkleSignature, MerkleSigner};
use hc_crypto::sha256::{self, Digest};

/// A signed VM/container image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignedImage {
    /// Registry id.
    pub id: ImageId,
    /// Human-readable name:tag.
    pub name: String,
    /// Content digest.
    pub digest: Digest,
    /// Image size in bytes (contents are not retained; the digest is).
    pub size: u64,
    /// Build signature over `name ‖ digest`.
    pub signature: MerkleSignature,
    /// The signing key.
    pub signer: MerklePublicKey,
}

/// Errors from the image registry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ImageError {
    /// The image's signer is not on the approved list.
    UnapprovedSigner,
    /// The signature does not verify.
    BadSignature,
    /// No image registered under this id.
    Unknown(ImageId),
    /// The builder's signing key is exhausted.
    SignerExhausted,
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::UnapprovedSigner => f.write_str("image signer is not approved"),
            ImageError::BadSignature => f.write_str("image signature invalid"),
            ImageError::Unknown(id) => write!(f, "unknown image {id}"),
            ImageError::SignerExhausted => f.write_str("builder signing key exhausted"),
        }
    }
}

impl std::error::Error for ImageError {}

fn image_message(name: &str, digest: &Digest) -> Vec<u8> {
    let mut msg = Vec::with_capacity(name.len() + 33);
    msg.extend_from_slice(name.as_bytes());
    msg.push(0);
    msg.extend_from_slice(digest.as_bytes());
    msg
}

/// Signs image content with a builder key (done in the compliant DevOps
/// environment, per §IV-B2).
///
/// # Errors
///
/// Returns [`ImageError::SignerExhausted`] when the builder key is spent.
pub fn sign_image<R: rand::Rng + ?Sized>(
    rng: &mut R,
    builder: &mut MerkleSigner,
    name: &str,
    content: &[u8],
) -> Result<SignedImage, ImageError> {
    let digest = sha256::hash(content);
    let signature = builder
        .sign(&image_message(name, &digest))
        .map_err(|_| ImageError::SignerExhausted)?;
    Ok(SignedImage {
        id: ImageId::random(rng),
        name: name.to_owned(),
        digest,
        size: content.len() as u64,
        signature,
        signer: builder.public_key(),
    })
}

/// The image registry.
#[derive(Debug, Default)]
pub struct ImageRegistry {
    approved_signers: HashSet<MerklePublicKey>,
    images: HashMap<ImageId, SignedImage>,
}

impl ImageRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ImageRegistry::default()
    }

    /// Approves a builder key.
    pub fn approve_signer(&mut self, key: MerklePublicKey) {
        self.approved_signers.insert(key);
    }

    /// Revokes a builder key. Already-registered images remain but fail
    /// future deploy-time verification.
    pub fn revoke_signer(&mut self, key: &MerklePublicKey) {
        self.approved_signers.remove(key);
    }

    /// Registers an image, verifying its signature and signer approval.
    ///
    /// # Errors
    ///
    /// Rejects unapproved signers and invalid signatures.
    pub fn register(&mut self, image: SignedImage) -> Result<ImageId, ImageError> {
        self.check(&image)?;
        let id = image.id;
        self.images.insert(id, image);
        Ok(id)
    }

    fn check(&self, image: &SignedImage) -> Result<(), ImageError> {
        if !self.approved_signers.contains(&image.signer) {
            return Err(ImageError::UnapprovedSigner);
        }
        if !ots::verify_merkle(
            &image.signer,
            &image_message(&image.name, &image.digest),
            &image.signature,
        ) {
            return Err(ImageError::BadSignature);
        }
        Ok(())
    }

    /// Deploy-time verification: re-checks signature, approval and that
    /// the bytes about to run still match the signed digest.
    ///
    /// # Errors
    ///
    /// Fails if the image is unknown, its signer revoked, its signature
    /// invalid, or `content` diverges from the signed digest.
    pub fn verify_for_deploy(&self, id: ImageId, content: &[u8]) -> Result<&SignedImage, ImageError> {
        let image = self.images.get(&id).ok_or(ImageError::Unknown(id))?;
        self.check(image)?;
        if sha256::hash(content) != image.digest {
            return Err(ImageError::BadSignature);
        }
        Ok(image)
    }

    /// Fetches image metadata.
    pub fn get(&self, id: ImageId) -> Option<&SignedImage> {
        self.images.get(&id)
    }

    /// Number of registered images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> (MerkleSigner, rand::rngs::StdRng) {
        let mut rng = hc_common::rng::seeded(20);
        (MerkleSigner::generate(&mut rng, 3), rng)
    }

    #[test]
    fn signed_image_registers_and_deploys() {
        let (mut b, mut rng) = builder();
        let mut reg = ImageRegistry::new();
        reg.approve_signer(b.public_key());
        let img = sign_image(&mut rng, &mut b, "jmf:v3", b"layers...").unwrap();
        let id = reg.register(img).unwrap();
        assert!(reg.verify_for_deploy(id, b"layers...").is_ok());
    }

    #[test]
    fn unapproved_signer_rejected() {
        let (mut b, mut rng) = builder();
        let reg_empty = {
            let mut r = ImageRegistry::new();
            // approve a *different* key
            let other = MerkleSigner::generate(&mut rng, 1);
            r.approve_signer(other.public_key());
            r
        };
        let img = sign_image(&mut rng, &mut b, "x", b"y").unwrap();
        let mut reg = reg_empty;
        assert_eq!(reg.register(img), Err(ImageError::UnapprovedSigner));
    }

    #[test]
    fn tampered_content_fails_deploy() {
        let (mut b, mut rng) = builder();
        let mut reg = ImageRegistry::new();
        reg.approve_signer(b.public_key());
        let img = sign_image(&mut rng, &mut b, "x", b"original").unwrap();
        let id = reg.register(img).unwrap();
        assert_eq!(
            reg.verify_for_deploy(id, b"trojaned").unwrap_err(),
            ImageError::BadSignature
        );
    }

    #[test]
    fn revoked_signer_fails_deploy() {
        let (mut b, mut rng) = builder();
        let mut reg = ImageRegistry::new();
        reg.approve_signer(b.public_key());
        let img = sign_image(&mut rng, &mut b, "x", b"y").unwrap();
        let id = reg.register(img).unwrap();
        reg.revoke_signer(&b.public_key());
        assert_eq!(
            reg.verify_for_deploy(id, b"y").unwrap_err(),
            ImageError::UnapprovedSigner
        );
    }

    #[test]
    fn renamed_image_fails_signature() {
        let (mut b, mut rng) = builder();
        let mut reg = ImageRegistry::new();
        reg.approve_signer(b.public_key());
        let mut img = sign_image(&mut rng, &mut b, "benign:v1", b"y").unwrap();
        img.name = "privileged:v1".into();
        assert_eq!(reg.register(img), Err(ImageError::BadSignature));
    }

    #[test]
    fn unknown_image_errors() {
        let reg = ImageRegistry::new();
        let id = ImageId::from_raw(1);
        assert_eq!(
            reg.verify_for_deploy(id, b"").unwrap_err(),
            ImageError::Unknown(id)
        );
        assert!(reg.is_empty());
    }
}
