//! The attestation service.
//!
//! Holds golden measurements for approved components and the set of
//! trusted (hardware-rooted) TPM identity keys. A node is *trusted* when
//! it presents a fresh quote whose signature chains to a trusted root and
//! whose PCR values match the golden expectation for its claimed stack.

use std::collections::{HashMap, HashSet};

use hc_crypto::ots::MerklePublicKey;
use hc_crypto::sha256::Digest;

use crate::measure::{expected_pcrs, Component};
use crate::tpm::{self, Quote, VtpmCertificate};

/// The verdict for one attestation request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Verdict {
    /// Whether the node is trusted.
    pub trusted: bool,
    /// Every reason the attestation failed (empty when trusted).
    pub failures: Vec<String>,
}

impl Verdict {
    fn trusted() -> Self {
        Verdict {
            trusted: true,
            failures: Vec::new(),
        }
    }

    fn failed(failures: Vec<String>) -> Self {
        Verdict {
            trusted: false,
            failures,
        }
    }
}

/// One subject's most recent attestation outcome, as recorded by
/// [`AttestationService::verify_quote_for`] /
/// [`AttestationService::verify_chained_quote_for`]. The posture scanner
/// reads these to tell workloads that were verified from workloads whose
/// quote chain was never checked.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubjectVerdict {
    /// The attested subject (host, VM, or container name).
    pub subject: String,
    /// Whether the latest quote verification succeeded.
    pub trusted: bool,
    /// Failure reasons from the latest verification (empty when trusted).
    pub failures: Vec<String>,
}

/// The attestation service (paper Fig. 1).
#[derive(Debug, Default)]
pub struct AttestationService {
    golden: HashMap<String, Digest>,
    trusted_roots: HashSet<MerklePublicKey>,
    verdicts: HashMap<String, SubjectVerdict>,
    attestations: u64,
    rejections: u64,
}

impl AttestationService {
    /// Creates an empty service.
    pub fn new() -> Self {
        AttestationService::default()
    }

    /// Registers a component's golden measurement (from change management
    /// or the compliant build pipeline).
    pub fn register_golden(&mut self, component: &Component) {
        self.golden
            .insert(component.name.clone(), component.measurement);
    }

    /// Updates a golden value after an approved change.
    pub fn update_golden(&mut self, name: &str, measurement: Digest) {
        self.golden.insert(name.to_owned(), measurement);
    }

    /// The golden measurement for `name`, if registered.
    pub fn golden(&self, name: &str) -> Option<Digest> {
        self.golden.get(name).copied()
    }

    /// Marks a hardware TPM key as a trusted root.
    pub fn trust_signer(&mut self, key: MerklePublicKey) {
        self.trusted_roots.insert(key);
    }

    /// Verifies that `quote` proves an honest boot of `claimed_stack`.
    ///
    /// Checks, in order: nonce freshness (echo), signature validity,
    /// signer trust, per-component golden membership, and PCR equality
    /// with the expectation derived from the *golden* values (so a node
    /// claiming component X but running a modified X fails even though its
    /// claim is self-consistent).
    pub fn verify_quote(
        &mut self,
        quote: &Quote,
        claimed_stack: &[Component],
        expected_nonce: &[u8],
    ) -> Verdict {
        let mut failures = Vec::new();

        if quote.nonce != expected_nonce {
            failures.push("stale or replayed nonce".to_owned());
        }
        if !tpm::verify_quote_signature(quote) {
            failures.push("quote signature invalid".to_owned());
        }
        if !self.trusted_roots.contains(&quote.signer) {
            failures.push("signer is not a trusted root".to_owned());
        }

        // Rebuild the expectation from golden values, not from the node's
        // claimed measurements.
        let mut golden_stack = Vec::with_capacity(claimed_stack.len());
        for component in claimed_stack {
            match self.golden.get(&component.name) {
                Some(&golden) => golden_stack.push(Component {
                    layer: component.layer,
                    name: component.name.clone(),
                    measurement: golden,
                }),
                None => failures.push(format!("component `{}` has no golden value", component.name)),
            }
        }
        if failures.is_empty() {
            let expected = expected_pcrs(&golden_stack);
            if quote.pcrs != expected {
                failures.push("PCR values diverge from golden expectation".to_owned());
            }
        }

        self.attestations += 1;
        if failures.is_empty() {
            Verdict::trusted()
        } else {
            self.rejections += 1;
            Verdict::failed(failures)
        }
    }

    /// Verifies a quote from a vTPM by walking its certification chain up
    /// to a trusted root, then checking the quote as usual.
    ///
    /// `chain` is ordered child-first (the quoting vTPM's certificate,
    /// then its parent's, …); the last certificate's parent must be a
    /// trusted root.
    pub fn verify_chained_quote(
        &mut self,
        quote: &Quote,
        chain: &[VtpmCertificate],
        claimed_stack: &[Component],
        expected_nonce: &[u8],
    ) -> Verdict {
        let mut failures = Vec::new();
        // Walk the chain: quote.signer must equal chain[0].child, each
        // cert's parent equals the next cert's child, and the topmost
        // parent is a trusted root.
        if let Some(first) = chain.first() {
            if quote.signer != first.child {
                failures.push("quote signer not bound by first certificate".to_owned());
            }
            for window in chain.windows(2) {
                if window[0].parent != window[1].child {
                    failures.push("broken certification chain".to_owned());
                }
            }
            for cert in chain {
                if !tpm::verify_certificate(cert) {
                    failures.push(format!("invalid certificate for `{}`", cert.child_name));
                }
            }
            let root = chain.last().expect("nonempty").parent;
            if !self.trusted_roots.contains(&root) {
                failures.push("chain does not terminate at a trusted root".to_owned());
            }
        } else if !self.trusted_roots.contains(&quote.signer) {
            failures.push("no chain and signer is not a trusted root".to_owned());
        }

        if !failures.is_empty() {
            self.attestations += 1;
            self.rejections += 1;
            return Verdict::failed(failures);
        }

        // Temporarily trust the leaf for the PCR check.
        let inserted = self.trusted_roots.insert(quote.signer);
        let verdict = self.verify_quote(quote, claimed_stack, expected_nonce);
        if inserted {
            self.trusted_roots.remove(&quote.signer);
        }
        verdict
    }

    /// [`Self::verify_quote`] that also records the verdict against a named
    /// subject, so later posture scans can audit which workloads were
    /// actually verified.
    pub fn verify_quote_for(
        &mut self,
        subject: &str,
        quote: &Quote,
        claimed_stack: &[Component],
        expected_nonce: &[u8],
    ) -> Verdict {
        let verdict = self.verify_quote(quote, claimed_stack, expected_nonce);
        self.record_verdict(subject, &verdict);
        verdict
    }

    /// [`Self::verify_chained_quote`] that also records the verdict against
    /// a named subject.
    pub fn verify_chained_quote_for(
        &mut self,
        subject: &str,
        quote: &Quote,
        chain: &[VtpmCertificate],
        claimed_stack: &[Component],
        expected_nonce: &[u8],
    ) -> Verdict {
        let verdict = self.verify_chained_quote(quote, chain, claimed_stack, expected_nonce);
        self.record_verdict(subject, &verdict);
        verdict
    }

    fn record_verdict(&mut self, subject: &str, verdict: &Verdict) {
        self.verdicts.insert(
            subject.to_owned(),
            SubjectVerdict {
                subject: subject.to_owned(),
                trusted: verdict.trusted,
                failures: verdict.failures.clone(),
            },
        );
    }

    /// The latest recorded verdict for `subject`, if any quote was ever
    /// verified against that name.
    pub fn verdict_for(&self, subject: &str) -> Option<&SubjectVerdict> {
        self.verdicts.get(subject)
    }

    /// Every subject's latest verdict, sorted by subject name for
    /// deterministic scans.
    pub fn subject_verdicts(&self) -> Vec<&SubjectVerdict> {
        let mut all: Vec<&SubjectVerdict> = self.verdicts.values().collect();
        all.sort_by(|a, b| a.subject.cmp(&b.subject));
        all
    }

    /// Every registered golden measurement as `(component name, digest)`,
    /// sorted by name for deterministic scans.
    pub fn golden_measurements(&self) -> Vec<(String, Digest)> {
        let mut all: Vec<(String, Digest)> = self
            .golden
            .iter()
            .map(|(name, &digest)| (name.clone(), digest))
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// `(total attestations, rejections)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.attestations, self.rejections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measured_boot, Layer};
    use crate::tpm::Tpm;

    fn stack() -> Vec<Component> {
        vec![
            Component::new(Layer::Hardware, "bios", b"bios-1.0"),
            Component::new(Layer::Hypervisor, "kvm", b"kvm-5.4"),
            Component::new(Layer::Vm, "guest", b"linux-6.1"),
        ]
    }

    fn service_with_golden() -> AttestationService {
        let mut s = AttestationService::new();
        for c in stack() {
            s.register_golden(&c);
        }
        s
    }

    #[test]
    fn honest_boot_is_trusted() {
        let mut rng = hc_common::rng::seeded(1);
        let mut service = service_with_golden();
        let mut tpm = Tpm::generate(&mut rng, "host");
        service.trust_signer(tpm.public_key());
        let quote = measured_boot(&mut tpm, &stack(), b"nonce").unwrap();
        let verdict = service.verify_quote(&quote, &stack(), b"nonce");
        assert!(verdict.trusted, "{:?}", verdict.failures);
    }

    #[test]
    fn tampered_component_detected() {
        let mut rng = hc_common::rng::seeded(2);
        let mut service = service_with_golden();
        let mut tpm = Tpm::generate(&mut rng, "host");
        service.trust_signer(tpm.public_key());
        let mut bad_stack = stack();
        bad_stack[2] = Component::new(Layer::Vm, "guest", b"linux-6.1-rootkit");
        let quote = measured_boot(&mut tpm, &bad_stack, b"nonce").unwrap();
        // Node claims the approved stack but booted a modified kernel.
        let verdict = service.verify_quote(&quote, &stack(), b"nonce");
        assert!(!verdict.trusted);
        assert!(verdict.failures.iter().any(|f| f.contains("PCR")));
    }

    #[test]
    fn untrusted_signer_rejected() {
        let mut rng = hc_common::rng::seeded(3);
        let mut service = service_with_golden();
        let mut rogue = Tpm::generate(&mut rng, "rogue");
        let quote = measured_boot(&mut rogue, &stack(), b"nonce").unwrap();
        let verdict = service.verify_quote(&quote, &stack(), b"nonce");
        assert!(!verdict.trusted);
        assert!(verdict.failures.iter().any(|f| f.contains("trusted root")));
    }

    #[test]
    fn replayed_nonce_rejected() {
        let mut rng = hc_common::rng::seeded(4);
        let mut service = service_with_golden();
        let mut tpm = Tpm::generate(&mut rng, "host");
        service.trust_signer(tpm.public_key());
        let quote = measured_boot(&mut tpm, &stack(), b"old-nonce").unwrap();
        let verdict = service.verify_quote(&quote, &stack(), b"fresh-nonce");
        assert!(!verdict.trusted);
    }

    #[test]
    fn unknown_component_rejected() {
        let mut rng = hc_common::rng::seeded(5);
        let mut service = AttestationService::new();
        let mut tpm = Tpm::generate(&mut rng, "host");
        service.trust_signer(tpm.public_key());
        let quote = measured_boot(&mut tpm, &stack(), b"n").unwrap();
        let verdict = service.verify_quote(&quote, &stack(), b"n");
        assert!(!verdict.trusted);
        assert!(verdict.failures.iter().any(|f| f.contains("golden")));
    }

    #[test]
    fn chained_vtpm_quote_trusted() {
        let mut rng = hc_common::rng::seeded(6);
        let mut service = service_with_golden();
        let container_stack = vec![Component::new(Layer::Container, "jmf-img", b"jmf:v3")];
        service.register_golden(&container_stack[0]);

        let mut hw = Tpm::generate(&mut rng, "hw");
        service.trust_signer(hw.public_key());
        let mut vm = hw.spawn_vtpm(&mut rng, "vm-1").unwrap();
        let mut container = vm.spawn_vtpm(&mut rng, "c-1").unwrap();
        let quote = measured_boot(&mut container, &container_stack, b"n").unwrap();
        let chain = vec![
            container.certificate().unwrap().clone(),
            vm.certificate().unwrap().clone(),
        ];
        let verdict = service.verify_chained_quote(&quote, &chain, &container_stack, b"n");
        assert!(verdict.trusted, "{:?}", verdict.failures);
        // Leaf key was only trusted transiently.
        let verdict2 = service.verify_quote(&quote, &container_stack, b"n");
        assert!(!verdict2.trusted);
    }

    #[test]
    fn broken_chain_rejected() {
        let mut rng = hc_common::rng::seeded(7);
        let mut service = service_with_golden();
        let container_stack = vec![Component::new(Layer::Container, "img", b"img")];
        service.register_golden(&container_stack[0]);

        let hw = Tpm::generate(&mut rng, "hw");
        let mut other_root = Tpm::generate(&mut rng, "other");
        service.trust_signer(hw.public_key());
        // Chain terminates at an *untrusted* root.
        let mut vm = other_root.spawn_vtpm(&mut rng, "vm").unwrap();
        let mut container = vm.spawn_vtpm(&mut rng, "c").unwrap();
        let quote = measured_boot(&mut container, &container_stack, b"n").unwrap();
        let chain = vec![
            container.certificate().unwrap().clone(),
            vm.certificate().unwrap().clone(),
        ];
        let verdict = service.verify_chained_quote(&quote, &chain, &container_stack, b"n");
        assert!(!verdict.trusted);
    }

    #[test]
    fn stats_count_rejections() {
        let mut rng = hc_common::rng::seeded(8);
        let mut service = service_with_golden();
        let mut rogue = Tpm::generate(&mut rng, "rogue");
        let quote = measured_boot(&mut rogue, &stack(), b"n").unwrap();
        let _ = service.verify_quote(&quote, &stack(), b"n");
        assert_eq!(service.stats(), (1, 1));
    }
}
