//! A software trusted platform module and its virtual descendants.
//!
//! The TPM holds 24 platform configuration registers (PCRs) with the
//! standard extend semantics `PCR ← H(PCR ‖ measurement)`, an append-only
//! event log, and an identity key used to sign *quotes* (attested PCR
//! snapshots). A [`Tpm::spawn_vtpm`] call creates a virtual TPM whose
//! identity key is certified by the parent — the transitive trust link of
//! the paper's Fig. 5 (hardware TPM → per-VM vTPM → per-container vTPM).

use serde::{Deserialize, Serialize};

use hc_crypto::ots::{self, MerklePublicKey, MerkleSignature, MerkleSigner};
use hc_crypto::sha256::{self, Digest};

/// Number of PCR registers.
pub const PCR_COUNT: usize = 24;

/// One event-log entry: which PCR was extended with what.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LogEntry {
    /// The extended PCR index.
    pub pcr: usize,
    /// Human-readable description (component name).
    pub description: String,
    /// The measurement that was folded in.
    pub measurement: Digest,
}

/// A signed snapshot of selected PCRs.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Quote {
    /// The quoting TPM's name.
    pub tpm_name: String,
    /// `(index, value)` pairs for the quoted PCRs.
    pub pcrs: Vec<(usize, Digest)>,
    /// Caller-supplied anti-replay nonce, echoed back.
    pub nonce: Vec<u8>,
    /// Signature over the canonical encoding of the above.
    pub signature: MerkleSignature,
    /// The signer's public key (verified against trusted roots or a
    /// certification chain).
    pub signer: MerklePublicKey,
}

/// A certificate binding a child vTPM's key to its parent TPM.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct VtpmCertificate {
    /// The certified child key.
    pub child: MerklePublicKey,
    /// The child vTPM's name.
    pub child_name: String,
    /// The parent's key (which itself may be certified further up).
    pub parent: MerklePublicKey,
    /// Parent's signature over `child ‖ child_name`.
    pub signature: MerkleSignature,
}

/// Errors from TPM operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TpmError {
    /// PCR index out of range.
    BadPcrIndex(usize),
    /// The identity key ran out of one-time signatures.
    KeysExhausted,
}

impl std::fmt::Display for TpmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TpmError::BadPcrIndex(i) => write!(f, "PCR index {i} out of range"),
            TpmError::KeysExhausted => f.write_str("TPM identity key exhausted"),
        }
    }
}

impl std::error::Error for TpmError {}

/// A software TPM (or vTPM — the state machine is identical; only the
/// provenance of the identity key differs).
#[derive(Debug)]
pub struct Tpm {
    name: String,
    pcrs: [Digest; PCR_COUNT],
    log: Vec<LogEntry>,
    signer: MerkleSigner,
    certificate: Option<VtpmCertificate>,
}

fn quote_message(name: &str, pcrs: &[(usize, Digest)], nonce: &[u8]) -> Vec<u8> {
    let mut msg = Vec::new();
    msg.extend_from_slice(name.as_bytes());
    msg.push(0);
    for (idx, digest) in pcrs {
        msg.extend_from_slice(&(*idx as u64).to_le_bytes());
        msg.extend_from_slice(digest.as_bytes());
    }
    msg.extend_from_slice(nonce);
    msg
}

fn cert_message(child: &MerklePublicKey, child_name: &str) -> Vec<u8> {
    let mut msg = Vec::new();
    msg.extend_from_slice(child.0.as_bytes());
    msg.extend_from_slice(child_name.as_bytes());
    msg
}

impl Tpm {
    /// Manufactures a hardware-rooted TPM with a fresh identity key.
    pub fn generate<R: rand::Rng + ?Sized>(rng: &mut R, name: &str) -> Self {
        Tpm {
            name: name.to_owned(),
            pcrs: [Digest::ZERO; PCR_COUNT],
            log: Vec::new(),
            signer: MerkleSigner::generate(rng, 5), // 32 quotes per TPM
            certificate: None,
        }
    }

    /// The TPM's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The identity public key.
    pub fn public_key(&self) -> MerklePublicKey {
        self.signer.public_key()
    }

    /// The certificate linking this vTPM to its parent (`None` for
    /// hardware-rooted TPMs).
    pub fn certificate(&self) -> Option<&VtpmCertificate> {
        self.certificate.as_ref()
    }

    /// Extends a PCR: `PCR ← H(PCR ‖ measurement)`.
    ///
    /// # Errors
    ///
    /// Returns [`TpmError::BadPcrIndex`] for `pcr >= 24`.
    pub fn extend(&mut self, pcr: usize, measurement: Digest, description: &str) -> Result<(), TpmError> {
        if pcr >= PCR_COUNT {
            return Err(TpmError::BadPcrIndex(pcr));
        }
        self.pcrs[pcr] = sha256::hash_parts(&[self.pcrs[pcr].as_bytes(), measurement.as_bytes()]);
        self.log.push(LogEntry {
            pcr,
            description: description.to_owned(),
            measurement,
        });
        Ok(())
    }

    /// Reads a PCR value.
    ///
    /// # Errors
    ///
    /// Returns [`TpmError::BadPcrIndex`] for `pcr >= 24`.
    pub fn read_pcr(&self, pcr: usize) -> Result<Digest, TpmError> {
        self.pcrs
            .get(pcr)
            .copied()
            .ok_or(TpmError::BadPcrIndex(pcr))
    }

    /// The append-only event log.
    pub fn event_log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Produces a signed quote over the selected PCRs.
    ///
    /// # Errors
    ///
    /// Fails on a bad PCR index or an exhausted identity key.
    pub fn quote(&mut self, pcr_indices: &[usize], nonce: &[u8]) -> Result<Quote, TpmError> {
        let mut pcrs = Vec::with_capacity(pcr_indices.len());
        for &i in pcr_indices {
            pcrs.push((i, self.read_pcr(i)?));
        }
        let msg = quote_message(&self.name, &pcrs, nonce);
        let signature = self.signer.sign(&msg).map_err(|_| TpmError::KeysExhausted)?;
        Ok(Quote {
            tpm_name: self.name.clone(),
            pcrs,
            nonce: nonce.to_vec(),
            signature,
            signer: self.signer.public_key(),
        })
    }

    /// Spawns a child vTPM whose identity key this TPM certifies.
    ///
    /// # Errors
    ///
    /// Fails if this TPM's identity key is exhausted.
    pub fn spawn_vtpm<R: rand::Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        child_name: &str,
    ) -> Result<Tpm, TpmError> {
        let child_signer = MerkleSigner::generate(rng, 5);
        let child_pk = child_signer.public_key();
        let msg = cert_message(&child_pk, child_name);
        let signature = self.signer.sign(&msg).map_err(|_| TpmError::KeysExhausted)?;
        Ok(Tpm {
            name: child_name.to_owned(),
            pcrs: [Digest::ZERO; PCR_COUNT],
            log: Vec::new(),
            signer: child_signer,
            certificate: Some(VtpmCertificate {
                child: child_pk,
                child_name: child_name.to_owned(),
                parent: self.public_key(),
                signature,
            }),
        })
    }
}

/// Verifies a quote's signature (not its PCR *values* — that is the
/// attestation service's job).
pub fn verify_quote_signature(quote: &Quote) -> bool {
    let msg = quote_message(&quote.tpm_name, &quote.pcrs, &quote.nonce);
    ots::verify_merkle(&quote.signer, &msg, &quote.signature)
}

/// Verifies a vTPM certificate: the parent signed the child key.
pub fn verify_certificate(cert: &VtpmCertificate) -> bool {
    let msg = cert_message(&cert.child, &cert.child_name);
    ots::verify_merkle(&cert.parent, &msg, &cert.signature)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_changes_pcr_deterministically() {
        let mut rng = hc_common::rng::seeded(1);
        let mut a = Tpm::generate(&mut rng, "a");
        let mut b = Tpm::generate(&mut rng, "b");
        let m = sha256::hash(b"component");
        a.extend(0, m, "c").unwrap();
        b.extend(0, m, "c").unwrap();
        assert_eq!(a.read_pcr(0).unwrap(), b.read_pcr(0).unwrap());
        assert_ne!(a.read_pcr(0).unwrap(), Digest::ZERO);
    }

    #[test]
    fn extend_order_matters() {
        let mut rng = hc_common::rng::seeded(2);
        let mut a = Tpm::generate(&mut rng, "a");
        let mut b = Tpm::generate(&mut rng, "b");
        let m1 = sha256::hash(b"one");
        let m2 = sha256::hash(b"two");
        a.extend(0, m1, "1").unwrap();
        a.extend(0, m2, "2").unwrap();
        b.extend(0, m2, "2").unwrap();
        b.extend(0, m1, "1").unwrap();
        assert_ne!(a.read_pcr(0).unwrap(), b.read_pcr(0).unwrap());
    }

    #[test]
    fn bad_pcr_index_rejected() {
        let mut rng = hc_common::rng::seeded(3);
        let mut tpm = Tpm::generate(&mut rng, "t");
        assert_eq!(
            tpm.extend(24, Digest::ZERO, "x"),
            Err(TpmError::BadPcrIndex(24))
        );
        assert_eq!(tpm.read_pcr(99), Err(TpmError::BadPcrIndex(99)));
    }

    #[test]
    fn quote_signature_verifies() {
        let mut rng = hc_common::rng::seeded(4);
        let mut tpm = Tpm::generate(&mut rng, "t");
        tpm.extend(0, sha256::hash(b"x"), "x").unwrap();
        let quote = tpm.quote(&[0, 1], b"nonce").unwrap();
        assert!(verify_quote_signature(&quote));
    }

    #[test]
    fn tampered_quote_rejected() {
        let mut rng = hc_common::rng::seeded(5);
        let mut tpm = Tpm::generate(&mut rng, "t");
        let mut quote = tpm.quote(&[0], b"n").unwrap();
        quote.pcrs[0].1 = sha256::hash(b"forged");
        assert!(!verify_quote_signature(&quote));
    }

    #[test]
    fn replayed_nonce_visible() {
        let mut rng = hc_common::rng::seeded(6);
        let mut tpm = Tpm::generate(&mut rng, "t");
        let quote = tpm.quote(&[0], b"nonce-1").unwrap();
        assert_eq!(quote.nonce, b"nonce-1");
        // A verifier comparing against its own fresh nonce detects replay.
        assert_ne!(quote.nonce, b"nonce-2".to_vec());
    }

    #[test]
    fn vtpm_certificate_chain_verifies() {
        let mut rng = hc_common::rng::seeded(7);
        let mut hw = Tpm::generate(&mut rng, "hw");
        let mut vm = hw.spawn_vtpm(&mut rng, "vm-1").unwrap();
        let container = vm.spawn_vtpm(&mut rng, "container-1").unwrap();
        assert!(verify_certificate(vm.certificate().unwrap()));
        assert!(verify_certificate(container.certificate().unwrap()));
        assert_eq!(
            container.certificate().unwrap().parent,
            vm.public_key()
        );
        assert!(hw.certificate().is_none());
    }

    #[test]
    fn forged_certificate_rejected() {
        let mut rng = hc_common::rng::seeded(8);
        let mut hw = Tpm::generate(&mut rng, "hw");
        let vm = hw.spawn_vtpm(&mut rng, "vm-1").unwrap();
        let mut cert = vm.certificate().unwrap().clone();
        cert.child_name = "evil-vm".into();
        assert!(!verify_certificate(&cert));
    }

    #[test]
    fn event_log_records_extends() {
        let mut rng = hc_common::rng::seeded(9);
        let mut tpm = Tpm::generate(&mut rng, "t");
        tpm.extend(3, sha256::hash(b"kernel"), "kernel").unwrap();
        assert_eq!(tpm.event_log().len(), 1);
        assert_eq!(tpm.event_log()[0].pcr, 3);
        assert_eq!(tpm.event_log()[0].description, "kernel");
    }

    #[test]
    fn quotes_exhaust_eventually() {
        let mut rng = hc_common::rng::seeded(10);
        let mut tpm = Tpm::generate(&mut rng, "t");
        for _ in 0..32 {
            tpm.quote(&[0], b"n").unwrap();
        }
        assert_eq!(tpm.quote(&[0], b"n"), Err(TpmError::KeysExhausted));
    }
}
