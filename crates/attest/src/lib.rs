//! Trusted infrastructure: software TPM/vTPM, measured boot, attestation,
//! signed images and change management.
//!
//! The paper (§II-A, Fig. 5) creates "a root of trust at the hardware
//! level (using TPMs and Attestation Service) for each server and then
//! extends it, via a transitive trust model, to the hypervisor", and
//! "leverages the vTPM to transitively extend the root of trust to the
//! guest OS and the software stack therein" — down to containers, so
//! trusted analytics workloads can be shipped between clouds (§II-C).
//!
//! * [`tpm`] — a software TPM: PCR banks, extend semantics, an event log,
//!   and hash-based-signed quotes; plus vTPM instances whose identity keys
//!   are *certified* by their parent TPM, forming the transitive chain.
//! * [`measure`] — component measurements and the measured-boot procedure
//!   over a layered software stack (hardware → hypervisor → VM →
//!   container).
//! * [`attestation`] — the attestation service: golden-value database,
//!   quote verification, certification-chain walking, and trust verdicts.
//! * [`image`] — the image management service: "accepts only those VM
//!   images that are signed by an approved list of keys".
//! * [`change`] — change management: described → evaluated → approved
//!   changes that update the attestation service's golden values.
//!
//! # Examples
//!
//! ```
//! use hc_attest::measure::{Component, Layer};
//! use hc_attest::tpm::Tpm;
//! use hc_attest::attestation::AttestationService;
//!
//! let mut rng = hc_common::rng::seeded(1);
//! let stack = vec![
//!     Component::new(Layer::Hardware, "bios", b"bios-v1"),
//!     Component::new(Layer::Hypervisor, "xen", b"xen-v4"),
//! ];
//! let mut service = AttestationService::new();
//! for c in &stack {
//!     service.register_golden(c);
//! }
//! let mut tpm = Tpm::generate(&mut rng, "host-1");
//! service.trust_signer(tpm.public_key());
//! let quote = hc_attest::measure::measured_boot(&mut tpm, &stack, b"nonce").unwrap();
//! assert!(service.verify_quote(&quote, &stack, b"nonce").trusted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod change;
pub mod image;
pub mod measure;
pub mod tpm;
