//! Component measurements and measured boot.
//!
//! Mirrors the paper's Fig. 5 flow: "the Core Root of Trust Measurement
//! (CRTM) code runs in the VM's BIOS … the trusted kernel extends the root
//! of trust transitively to libraries and drivers". Each software layer is
//! measured (hashed) into a dedicated PCR before control transfers to it.

use serde::{Deserialize, Serialize};

use hc_crypto::sha256::{self, Digest};

use crate::tpm::{Quote, Tpm, TpmError};

/// The stack layer a component belongs to, lowest first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Layer {
    /// Bare-metal firmware/BIOS (the CRTM).
    Hardware,
    /// Host OS / hypervisor.
    Hypervisor,
    /// Guest VM kernel and base image.
    Vm,
    /// Container image and libraries.
    Container,
}

impl Layer {
    /// The PCR this layer is measured into.
    pub const fn pcr(self) -> usize {
        match self {
            Layer::Hardware => 0,
            Layer::Hypervisor => 1,
            Layer::Vm => 2,
            Layer::Container => 3,
        }
    }

    /// All layers, boot order.
    pub const ALL: [Layer; 4] = [Layer::Hardware, Layer::Hypervisor, Layer::Vm, Layer::Container];
}

/// A measured software component.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Component {
    /// Which layer it boots in.
    pub layer: Layer,
    /// Component name (key into the golden-value database).
    pub name: String,
    /// The measurement: hash of the component's content.
    pub measurement: Digest,
}

impl Component {
    /// Measures `content` as a component.
    pub fn new(layer: Layer, name: &str, content: &[u8]) -> Self {
        Component {
            layer,
            name: name.to_owned(),
            measurement: sha256::hash(content),
        }
    }
}

/// Boots a stack: measures every component into its layer's PCR in order,
/// then returns a quote over the touched PCRs with the supplied nonce.
///
/// # Errors
///
/// Propagates TPM errors (exhausted identity key).
pub fn measured_boot(tpm: &mut Tpm, stack: &[Component], nonce: &[u8]) -> Result<Quote, TpmError> {
    let mut touched = Vec::new();
    for component in stack {
        let pcr = component.layer.pcr();
        tpm.extend(pcr, component.measurement, &component.name)?;
        if !touched.contains(&pcr) {
            touched.push(pcr);
        }
    }
    touched.sort_unstable();
    tpm.quote(&touched, nonce)
}

/// Computes the PCR values an honest boot of `stack` must produce.
///
/// Used by the attestation service to derive expected values from its
/// golden measurements without needing a TPM of its own.
pub fn expected_pcrs(stack: &[Component]) -> Vec<(usize, Digest)> {
    let mut pcrs = std::collections::BTreeMap::new();
    for component in stack {
        let pcr = component.layer.pcr();
        let current = pcrs.entry(pcr).or_insert(Digest::ZERO);
        *current = sha256::hash_parts(&[current.as_bytes(), component.measurement.as_bytes()]);
    }
    pcrs.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> Vec<Component> {
        vec![
            Component::new(Layer::Hardware, "bios", b"bios-1.0"),
            Component::new(Layer::Hypervisor, "kvm", b"kvm-5.4"),
            Component::new(Layer::Vm, "guest-kernel", b"linux-6.1"),
            Component::new(Layer::Container, "analytics-img", b"jmf:v3"),
        ]
    }

    #[test]
    fn boot_produces_expected_pcrs() {
        let mut rng = hc_common::rng::seeded(1);
        let mut tpm = Tpm::generate(&mut rng, "host");
        let quote = measured_boot(&mut tpm, &stack(), b"n").unwrap();
        assert_eq!(quote.pcrs, expected_pcrs(&stack()));
    }

    #[test]
    fn tampered_component_changes_pcr() {
        let honest = expected_pcrs(&stack());
        let mut tampered_stack = stack();
        tampered_stack[2] = Component::new(Layer::Vm, "guest-kernel", b"linux-6.1-rootkit");
        let tampered = expected_pcrs(&tampered_stack);
        assert_ne!(honest, tampered);
        // Only the VM layer PCR differs.
        assert_eq!(honest[0], tampered[0]);
        assert_eq!(honest[1], tampered[1]);
        assert_ne!(honest[2], tampered[2]);
    }

    #[test]
    fn layers_map_to_distinct_pcrs() {
        let pcrs: std::collections::HashSet<usize> =
            Layer::ALL.iter().map(|l| l.pcr()).collect();
        assert_eq!(pcrs.len(), 4);
    }

    #[test]
    fn multiple_components_per_layer_accumulate() {
        let stack = vec![
            Component::new(Layer::Container, "base", b"alpine"),
            Component::new(Layer::Container, "libs", b"numpy"),
        ];
        let expected = expected_pcrs(&stack);
        assert_eq!(expected.len(), 1);
        let single = expected_pcrs(&stack[..1]);
        assert_ne!(expected[0].1, single[0].1);
    }

    #[test]
    fn quote_covers_only_touched_pcrs() {
        let mut rng = hc_common::rng::seeded(2);
        let mut tpm = Tpm::generate(&mut rng, "host");
        let partial = vec![Component::new(Layer::Hardware, "bios", b"b")];
        let quote = measured_boot(&mut tpm, &partial, b"n").unwrap();
        assert_eq!(quote.pcrs.len(), 1);
        assert_eq!(quote.pcrs[0].0, Layer::Hardware.pcr());
    }
}
