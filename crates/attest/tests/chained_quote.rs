//! `verify_chained_quote` edge cases: missing golden values, stale
//! (superseded) measurements, and untrusted signers.
//!
//! The posture scanner's attest family leans on these verdicts — a
//! workload is only as trustworthy as the chain verification that
//! admitted it — so each failure mode must produce a distinct,
//! non-trusted verdict rather than silently passing.

use hc_attest::attestation::AttestationService;
use hc_attest::measure::{measured_boot, Component, Layer};
use hc_attest::tpm::Tpm;
use hc_crypto::sha256;

const NONCE: &[u8] = b"chain-test-nonce";

struct Chain {
    service: AttestationService,
    quote: hc_attest::tpm::Quote,
    certs: Vec<hc_attest::tpm::VtpmCertificate>,
    stack: Vec<Component>,
}

/// Builds a hardware TPM → vTPM → container TPM chain quoting one
/// container component, with the hardware key trusted and (optionally)
/// the component's golden measurement registered.
fn build_chain(seed: u64, register_golden: bool) -> Chain {
    let mut rng = hc_common::rng::seeded(seed);
    let mut service = AttestationService::new();

    let mut hw = Tpm::generate(&mut rng, "hw-root");
    service.trust_signer(hw.public_key());

    let mut vtpm = hw.spawn_vtpm(&mut rng, "vm-1").expect("hw keys fresh");
    let mut ctpm = vtpm.spawn_vtpm(&mut rng, "container-1").expect("vm keys fresh");

    let component = Component::new(Layer::Container, "ehr-frontend:v1", b"ehr-layers-v1");
    if register_golden {
        service.register_golden(&component);
    }
    let stack = vec![component];
    let quote = measured_boot(&mut ctpm, &stack, NONCE).expect("fresh TPM");
    let certs = vec![
        ctpm.certificate().cloned().expect("vTPM has a certificate"),
        vtpm.certificate().cloned().expect("vTPM has a certificate"),
    ];
    Chain {
        service,
        quote,
        certs,
        stack,
    }
}

#[test]
fn full_chain_with_golden_is_trusted() {
    let mut chain = build_chain(1, true);
    let verdict =
        chain
            .service
            .verify_chained_quote_for("vm-1/ehr-frontend:v1", &chain.quote, &chain.certs, &chain.stack, NONCE);
    assert!(verdict.trusted, "failures: {:?}", verdict.failures);
    let recorded = chain
        .service
        .verdict_for("vm-1/ehr-frontend:v1")
        .expect("verdict recorded under the subject");
    assert!(recorded.trusted);
}

#[test]
fn missing_golden_value_fails_closed() {
    let mut chain = build_chain(2, false);
    let verdict = chain
        .service
        .verify_chained_quote(&chain.quote, &chain.certs, &chain.stack, NONCE);
    assert!(!verdict.trusted);
    assert!(
        verdict
            .failures
            .iter()
            .any(|f| f.contains("no golden value")),
        "failures: {:?}",
        verdict.failures
    );
}

#[test]
fn superseded_golden_measurement_rejects_old_build() {
    let mut chain = build_chain(3, true);
    // Change management approves a new build; the golden value moves on
    // while the container still runs (and quotes) the old layers.
    chain
        .service
        .update_golden("ehr-frontend:v1", sha256::hash(b"ehr-layers-v2"));
    let verdict = chain
        .service
        .verify_chained_quote(&chain.quote, &chain.certs, &chain.stack, NONCE);
    assert!(!verdict.trusted);
    assert!(
        verdict
            .failures
            .iter()
            .any(|f| f.contains("PCR values diverge")),
        "failures: {:?}",
        verdict.failures
    );
}

#[test]
fn untrusted_hardware_root_rejects_the_whole_chain() {
    let mut chain = build_chain(4, true);
    // A structurally valid chain signed by hardware nobody vouched for.
    let mut fresh = AttestationService::new();
    let component = Component::new(Layer::Container, "ehr-frontend:v1", b"ehr-layers-v1");
    fresh.register_golden(&component);
    let verdict = fresh.verify_chained_quote(&chain.quote, &chain.certs, &chain.stack, NONCE);
    assert!(!verdict.trusted);
    assert!(
        verdict
            .failures
            .iter()
            .any(|f| f.contains("trusted root")),
        "failures: {:?}",
        verdict.failures
    );
    // The original service (which trusts the root) still accepts it.
    let ok = chain
        .service
        .verify_chained_quote(&chain.quote, &chain.certs, &chain.stack, NONCE);
    assert!(ok.trusted);
}

#[test]
fn truncated_chain_does_not_reach_the_root() {
    let mut chain = build_chain(5, true);
    // Dropping the vTPM certificate leaves the container cert's parent
    // (the vTPM key) as the chain head — which is not a trusted root.
    let truncated: Vec<_> = chain.certs.first().cloned().into_iter().collect();
    let verdict = chain
        .service
        .verify_chained_quote(&chain.quote, &truncated, &chain.stack, NONCE);
    assert!(!verdict.trusted);
    assert!(
        verdict
            .failures
            .iter()
            .any(|f| f.contains("trusted root")),
        "failures: {:?}",
        verdict.failures
    );

    // An empty chain demotes the quote to direct-signer verification,
    // and a container TPM key is no trusted root either.
    let verdict = chain
        .service
        .verify_chained_quote(&chain.quote, &[], &chain.stack, NONCE);
    assert!(!verdict.trusted);
}

#[test]
fn replayed_nonce_is_rejected_even_with_valid_chain() {
    let mut chain = build_chain(6, true);
    let verdict = chain.service.verify_chained_quote(
        &chain.quote,
        &chain.certs,
        &chain.stack,
        b"different-session-nonce",
    );
    assert!(!verdict.trusted);
    assert!(
        verdict
            .failures
            .iter()
            .any(|f| f.contains("nonce")),
        "failures: {:?}",
        verdict.failures
    );
}
