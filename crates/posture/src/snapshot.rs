//! Capturing an immutable posture snapshot from a live platform.
//!
//! [`PlatformSnapshot::capture`] reads every subsystem the posture rules
//! need — taking one lock at a time, never nesting — and normalises the
//! state into plain sorted collections. The scanner in [`mod@crate::scan`]
//! then runs entirely lock-free over the snapshot, so a scan can never
//! deadlock the platform it audits.

use std::collections::{BTreeMap, BTreeSet};

use hc_access::model::Permission;
use hc_access::rbac::EnvKind;
use hc_cloudsim::infra::InfraCloud;
use hc_common::id::{ContainerId, GroupId, ImageId, KeyId, PatientId};
use hc_core::platform::HealthCloudPlatform;
use hc_crypto::kms::KmsAuditEvent;
use hc_crypto::sha256::Digest;

/// Image-name prefixes that mark a workload as PHI-serving. A container
/// whose image name starts with one of these handles identified patient
/// data and is held to the attestation rules.
pub const PHI_IMAGE_PREFIXES: &[&str] = &["ingest", "export", "ehr", "clinical", "phi"];

/// Renders a permission as its stable `Kind:Action` scan string, e.g.
/// `PatientData:Read` — the vocabulary used by observed-use maps and the
/// declared-use manifest in [`crate::scan::ScanConfig`].
pub fn perm_string(p: Permission) -> String {
    format!("{:?}:{:?}", p.kind, p.action)
}

/// Whether an image name denotes a PHI-serving workload.
pub fn is_phi_image(name: &str) -> bool {
    PHI_IMAGE_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// The stable `deployment://` path of a running container, derived from
/// its placement. `None` when the container's VM or host is unknown
/// (mid-teardown races).
pub fn workload_path(infra: &InfraCloud, container: ContainerId) -> Option<String> {
    let c = infra.container(container)?;
    let vm = infra.vm(c.vm)?;
    let host = infra.host(vm.host)?;
    Some(format!(
        "deployment://region-{}/host-{}/vm-{}/container-{}",
        host.location.region,
        host.location.host,
        vm.id.as_u128(),
        c.id.as_u128(),
    ))
}

/// One running container and the attestation context around it.
#[derive(Clone, Debug)]
pub struct WorkloadSnapshot {
    /// Stable `deployment://region-R/host-H/vm-V/container-C` path.
    pub path: String,
    /// The image's human-readable `name:tag` (or a placeholder when the
    /// image id is not in the registry).
    pub image_name: String,
    /// The registered image's signed content digest, when known.
    pub image_digest: Option<Digest>,
    /// The admission flag recorded at deploy time.
    pub attested: bool,
    /// Whether the image serves identified PHI (see [`is_phi_image`]).
    pub phi_serving: bool,
    /// The attestation subject this workload's quote verification would
    /// have been recorded under: `vm-<raw vm id>/<image name>`.
    pub attest_subject: String,
}

/// One production role assignment with the union of granted permissions.
#[derive(Clone, Debug)]
pub struct AssignmentSnapshot {
    /// The user's login name.
    pub username: String,
    /// Role names held in the production environment, sorted.
    pub roles: Vec<String>,
    /// Union of all granted permissions across those roles, as
    /// `Kind:Action` strings.
    pub permissions: BTreeSet<String>,
}

/// One live KMS key with its grant list and usage profile.
#[derive(Clone, Debug)]
pub struct KeySnapshot {
    /// Stable `deployment://kms/key/HEX` path.
    pub path: String,
    /// Authorized principals (display form, e.g. `service:ingest`).
    pub authorized: BTreeSet<String>,
    /// Principals that ever sealed/opened under this key.
    pub used_by: BTreeSet<String>,
    /// Successful uses since the key was last created or rotated.
    pub uses_since_rotation: u64,
}

/// One data-lake record's metadata (payload bytes are never captured).
#[derive(Clone, Debug)]
pub struct RecordSnapshot {
    /// Stable `deployment://lake/record/HEX` path.
    pub path: String,
    /// The patient this record identifies, when an identity mapping
    /// exists.
    pub patient: Option<PatientId>,
    /// Whether the record is tombstoned (phase one of forget).
    pub tombstoned: bool,
    /// The `enc` envelope-scheme tag of the latest version, if present.
    pub enc_scheme: Option<String>,
    /// The `dek` wrapping-key tag of the latest version, if present.
    pub dek: Option<String>,
}

/// Everything the posture rules evaluate, captured at one point in time.
#[derive(Clone, Debug, Default)]
pub struct PlatformSnapshot {
    /// Running containers with attestation context.
    pub workloads: Vec<WorkloadSnapshot>,
    /// Every registered role's permissions, as `Kind:Action` strings.
    pub roles: BTreeMap<String, BTreeSet<String>>,
    /// Roles held by at least one user in a production environment.
    pub prod_assigned_roles: BTreeSet<String>,
    /// Production role assignments (per user).
    pub assignments: Vec<AssignmentSnapshot>,
    /// Gateway-observed permission use per role: every *allowed* decision
    /// is attributed to each of the caller's roles that grants it.
    pub observed_use: BTreeMap<String, BTreeSet<String>>,
    /// Live KMS keys.
    pub keys: Vec<KeySnapshot>,
    /// Raw ids of keys currently in the live KMS table.
    pub live_keys: BTreeSet<u128>,
    /// Data-lake records (metadata only).
    pub records: Vec<RecordSnapshot>,
    /// Golden measurements by component/image name.
    pub golden: BTreeMap<String, Digest>,
    /// Latest attestation verdict (trusted?) by subject name.
    pub verdicts: BTreeMap<String, bool>,
    /// Active consent grants as (patient, group).
    pub active_consent: BTreeSet<(PatientId, GroupId)>,
    /// Every (patient, group) pair with any consent event history.
    pub consent_history: BTreeSet<(PatientId, GroupId)>,
    /// Patients whose *latest* event for the study group is a revocation.
    pub revoked_latest: BTreeSet<PatientId>,
    /// The platform's study group.
    pub study: Option<GroupId>,
}

impl PlatformSnapshot {
    /// Total number of entities the rules will walk — the scan's
    /// denominator for reporting.
    pub fn entity_count(&self) -> usize {
        self.workloads.len()
            + self.prod_assigned_roles.len()
            + self.assignments.len()
            + self.keys.len()
            + self.records.len()
    }

    /// Captures a posture snapshot from a live platform. Subsystem locks
    /// are taken strictly one at a time; the platform keeps serving while
    /// the scan reads.
    pub fn capture(platform: &HealthCloudPlatform) -> PlatformSnapshot {
        let mut snap = PlatformSnapshot {
            study: Some(platform.study),
            ..PlatformSnapshot::default()
        };

        // Image registry first: id → (name, digest), used to label
        // workloads without holding two locks.
        let image_meta: BTreeMap<ImageId, (String, Digest)> = {
            let infra = platform.infra.lock();
            let ids: BTreeSet<ImageId> = infra.containers().map(|c| c.image).collect();
            drop(infra);
            let images = platform.images.lock();
            ids.into_iter()
                .filter_map(|id| images.get(id).map(|img| (id, (img.name.clone(), img.digest))))
                .collect()
        };

        {
            // Deliberate: capture copies this subsystem's audit surface
            // under one short-lived, never-nested lock so the scan sees a
            // consistent view. hc-lint: allow(lock-held-long)
            let infra = platform.infra.lock();
            for c in infra.containers() {
                let Some(path) = workload_path(&infra, c.id) else {
                    continue;
                };
                let Some(vm) = infra.vm(c.vm) else { continue };
                let (image_name, image_digest) = match image_meta.get(&c.image) {
                    Some((name, digest)) => (name.clone(), Some(*digest)),
                    None => (format!("unregistered-image-{}", c.image), None),
                };
                snap.workloads.push(WorkloadSnapshot {
                    path,
                    attest_subject: format!("vm-{}/{}", vm.id.as_u128(), image_name),
                    phi_serving: is_phi_image(&image_name),
                    image_name,
                    image_digest,
                    attested: c.attested,
                });
            }
        }

        {
            let attestation = platform.attestation.lock();
            snap.golden = attestation.golden_measurements().into_iter().collect();
            snap.verdicts = attestation
                .subject_verdicts()
                .into_iter()
                .map(|v| (v.subject.clone(), v.trusted))
                .collect();
        }

        // RBAC: role definitions, then production assignments. Typed
        // permissions are kept aside to attribute gateway decisions below.
        let mut typed_roles: BTreeMap<String, BTreeSet<Permission>> = BTreeMap::new();
        let mut user_roles: BTreeMap<u128, (String, Vec<String>)> = BTreeMap::new();
        {
            // Deliberate: capture copies this subsystem's audit surface
            // under one short-lived, never-nested lock so the scan sees a
            // consistent view. hc-lint: allow(lock-held-long)
            let rbac = platform.rbac.lock();
            for role in rbac.roles() {
                typed_roles.insert(role.name.clone(), role.permissions.iter().copied().collect());
                snap.roles.insert(
                    role.name.clone(),
                    role.permissions.iter().map(|&p| perm_string(p)).collect(),
                );
            }
            for (user, _org, env, roles) in rbac.assignments() {
                if rbac.env_kind(env) != Some(EnvKind::Production) {
                    continue;
                }
                let username = rbac
                    .username_of(user)
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("user-{user}"));
                let mut sorted = roles.clone();
                sorted.sort_unstable();
                let permissions: BTreeSet<String> = sorted
                    .iter()
                    .filter_map(|r| typed_roles.get(r))
                    .flatten()
                    .map(|&p| perm_string(p))
                    .collect();
                for r in &sorted {
                    snap.prod_assigned_roles.insert(r.clone());
                }
                user_roles.insert(user.as_u128(), (username.clone(), sorted.clone()));
                snap.assignments.push(AssignmentSnapshot {
                    username,
                    roles: sorted,
                    permissions,
                });
            }
        }
        snap.assignments.sort_by(|a, b| a.username.cmp(&b.username));

        // Gateway audit: attribute each allowed decision to every role of
        // the caller that grants the required permission.
        {
            // Deliberate: capture copies this subsystem's audit surface
            // under one short-lived, never-nested lock so the scan sees a
            // consistent view. hc-lint: allow(lock-held-long)
            let gateway = platform.gateway.lock();
            for rec in gateway.audit_log() {
                if !rec.allowed {
                    continue;
                }
                let Some(user) = rec.user else { continue };
                let Some((_, roles)) = user_roles.get(&user.as_u128()) else {
                    continue;
                };
                for role in roles {
                    let grants = typed_roles
                        .get(role)
                        .map(|perms| perms.contains(&rec.permission))
                        .unwrap_or(false);
                    if grants {
                        snap.observed_use
                            .entry(role.clone())
                            .or_default()
                            .insert(perm_string(rec.permission));
                    }
                }
            }
        }

        // KMS: key table plus an audit-log walk for usage profiles.
        {
            let table = platform.kms.key_table();
            let mut uses_since: BTreeMap<KeyId, u64> = BTreeMap::new();
            let mut used_by: BTreeMap<KeyId, BTreeSet<String>> = BTreeMap::new();
            for event in platform.kms.audit_log() {
                match event {
                    KmsAuditEvent::Created(k) | KmsAuditEvent::Rotated(k, _) => {
                        uses_since.insert(k, 0);
                    }
                    KmsAuditEvent::Used(k, principal) => {
                        *uses_since.entry(k).or_insert(0) += 1;
                        used_by.entry(k).or_default().insert(principal.to_string());
                    }
                    KmsAuditEvent::Denied(_, _) | KmsAuditEvent::Shredded(_) => {}
                }
            }
            for info in table {
                snap.live_keys.insert(info.id.as_u128());
                snap.keys.push(KeySnapshot {
                    path: format!("deployment://kms/key/{}", info.id),
                    authorized: info.authorized.iter().map(|p| p.to_string()).collect(),
                    used_by: used_by.get(&info.id).cloned().unwrap_or_default(),
                    uses_since_rotation: uses_since.get(&info.id).copied().unwrap_or(0),
                });
            }
        }

        {
            // Deliberate: capture copies this subsystem's audit surface
            // under one short-lived, never-nested lock so the scan sees a
            // consistent view. hc-lint: allow(lock-held-long)
            let lake = platform.lake.lock();
            for record in lake.audit_records() {
                let latest = record.versions.last();
                snap.records.push(RecordSnapshot {
                    path: format!("deployment://lake/record/{}", record.reference),
                    patient: record.patient,
                    tombstoned: record.tombstoned,
                    enc_scheme: latest.and_then(|v| v.tags.get("enc").cloned()),
                    dek: latest.and_then(|v| v.tags.get("dek").cloned()),
                });
            }
        }

        {
            // Deliberate: capture copies this subsystem's audit surface
            // under one short-lived, never-nested lock so the scan sees a
            // consistent view. hc-lint: allow(lock-held-long)
            let consent = platform.consent.lock();
            for (patient, group, _scope) in consent.grants() {
                snap.active_consent.insert((patient, group));
            }
            // Latest event per (patient, group): events are appended in
            // order, so the last write wins.
            let mut latest_revoked: BTreeMap<(PatientId, GroupId), bool> = BTreeMap::new();
            for event in consent.events() {
                snap.consent_history.insert((event.patient, event.group));
                latest_revoked.insert((event.patient, event.group), event.scope.is_none());
            }
            for ((patient, group), revoked) in latest_revoked {
                if revoked && Some(group) == snap.study {
                    snap.revoked_latest.insert(patient);
                }
            }
        }

        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_access::model::{Action, ResourceKind};

    #[test]
    fn perm_strings_are_stable() {
        assert_eq!(
            perm_string(Permission::new(ResourceKind::PatientData, Action::Read)),
            "PatientData:Read"
        );
        assert_eq!(
            perm_string(Permission::new(ResourceKind::Key, Action::Admin)),
            "Key:Admin"
        );
    }

    #[test]
    fn phi_image_prefixes_match() {
        assert!(is_phi_image("ingest-svc:v1"));
        assert!(is_phi_image("ehr-frontend:v2"));
        assert!(!is_phi_image("analytics-batch:v1"));
    }

    #[test]
    fn workload_paths_encode_placement() {
        let mut infra = InfraCloud::new();
        infra.add_host(2, 8, 1_000);
        let vm = infra.provision_vm(2, 4).expect("capacity");
        let image = ImageId::from_raw(77);
        let container = infra.deploy_container(vm, image, Ok(true)).expect("vm exists");
        let path = workload_path(&infra, container).expect("placed");
        assert!(path.starts_with("deployment://region-2/host-0/vm-"));
        assert!(path.contains("/container-"));
        assert_eq!(workload_path(&infra, ContainerId::from_raw(999)), None);
    }
}
