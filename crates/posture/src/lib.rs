//! `hc-posture` — deployment-posture scanner for the trusted healthcare
//! platform.
//!
//! Where `hc-lint` analyses *source code*, this crate analyses a *running
//! deployment*: it captures an immutable [`snapshot::PlatformSnapshot`]
//! from a live [`hc_core::platform::HealthCloudPlatform`] — placements,
//! roles, consent, golden measurements, KMS key table and audit log,
//! data-lake envelope metadata — and evaluates the posture rule catalogue
//! ([`rules::POSTURE_RULES`]) over it. Four rule families mirror the
//! paper's trust pillars:
//!
//! * `privilege` — over-privilege: admin principals on the PHI path,
//!   granted-but-never-used role permissions, over-broad KMS key grants;
//! * `attest` — attestation gaps: PHI-serving workloads admitted without
//!   attestation, golden-measurement divergence, unverified quote chains;
//! * `encrypt` — encryption at rest: identified records without envelope
//!   metadata, records sealed under shredded keys, rotation-overdue keys;
//! * `consent` — consent/policy gaps: identified records without consent
//!   provenance, revocations never followed by crypto-shredding.
//!
//! Findings reuse [`hc_lint::diag::Finding`] and the shared ratcheting
//! baseline ([`hc_lint::baseline`]), so `hc-posture` and `hc-lint` share
//! one fingerprint format, one baseline file schema, and the same
//! `--write-baseline` / `--prune-baseline` / `--fail-stale` CLI contract.
//!
//! # Subject paths
//!
//! Posture findings have no file/line; the `file` slot of each finding
//! carries a stable `deployment://` entity path instead:
//!
//! * workloads — `deployment://region-R/host-H/vm-V/container-C`
//! * RBAC — `deployment://rbac/user/NAME`, `deployment://rbac/role/NAME`
//! * KMS — `deployment://kms/key/HEX`
//! * lake — `deployment://lake/record/HEX`
//! * consent — `deployment://consent/patient/HEX`
//!
//! Attestation verdicts for containers are recorded under the subject
//! `vm-<raw vm id>/<image name>` (hosts attest under their host name via
//! [`hc_core::platform::HealthCloudPlatform::attested_boot`]); the scanner
//! joins workloads to verdicts through that convention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demo;
pub mod report;
pub mod rules;
pub mod scan;
pub mod snapshot;

pub use rules::{rule_by_id, POSTURE_RULES};
pub use scan::{scan, DeclaredUse, ScanConfig, ScanOutcome, Suppression};
pub use snapshot::PlatformSnapshot;
