//! `hc-posture` CLI.
//!
//! ```text
//! hc-posture [--seed N] [--planted] [--config FILE] [--rotation-budget N]
//!            [--format human|json] [--baseline FILE]
//!            [--write-baseline] [--prune-baseline] [--fail-stale]
//!            [--list-rules] [--explain RULE-ID]
//! ```
//!
//! Builds the seeded demo deployment (optionally with planted
//! violations), captures a platform snapshot, scans it, and diffs the
//! findings against the ratcheting baseline — the same CLI contract as
//! `hc-lint`.
//!
//! Exit codes: `0` clean (vs. baseline), `1` new findings (or stale
//! baseline entries under `--fail-stale`), `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use hc_lint::baseline::Baseline;
use hc_lint::report::render_explain;
use hc_posture::demo::{demo_config, plant_violations, planted_config, DemoDeployment};
use hc_posture::report::{json_report, render_human, render_rule_list};
use hc_posture::scan::{record_metrics, scan, ScanConfig};
use hc_posture::snapshot::PlatformSnapshot;

struct Args {
    seed: u64,
    planted: bool,
    config: Option<PathBuf>,
    rotation_budget: Option<u64>,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    prune_baseline: bool,
    fail_stale: bool,
    list_rules: bool,
    explain: Option<String>,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn usage() -> &'static str {
    "usage: hc-posture [--seed N] [--planted] [--config FILE]\n\
     \x20                 [--rotation-budget N] [--format human|json]\n\
     \x20                 [--baseline FILE] [--write-baseline]\n\
     \x20                 [--prune-baseline] [--fail-stale]\n\
     \x20                 [--list-rules] [--explain RULE-ID]\n\
     \n\
     Boots the seeded 3-region demo deployment, captures a platform\n\
     snapshot, and runs the posture rule catalogue (over-privilege,\n\
     attestation, field-level encryption, consent) over it. See LINTS.md\n\
     for the rule table and the suppression/declared-use config format.\n\
     \n\
     --planted         seed one violation of every rule before scanning\n\
     --config          load declared-use + suppressions from a JSON file\n\
     --rotation-budget override the stale-key rotation budget\n\
     --prune-baseline  rewrite --baseline FILE dropping entries no\n\
     \x20                 longer matched (ratchet down), then diff\n\
     --fail-stale      exit 1 when the baseline carries unmatched debt\n\
     --explain         print one rule's full catalogue entry\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        planted: false,
        config: None,
        rotation_budget: None,
        format: Format::Human,
        baseline: None,
        write_baseline: false,
        prune_baseline: false,
        fail_stale: false,
        list_rules: false,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--planted" => args.planted = true,
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a value")?));
            }
            "--rotation-budget" => {
                args.rotation_budget = Some(
                    it.next()
                        .ok_or("--rotation-budget needs a value")?
                        .parse()
                        .map_err(|e| format!("--rotation-budget: {e}"))?,
                );
            }
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format must be human|json, got {other:?}")),
                };
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?));
            }
            "--write-baseline" => args.write_baseline = true,
            "--prune-baseline" => args.prune_baseline = true,
            "--fail-stale" => args.fail_stale = true,
            "--list-rules" => args.list_rules = true,
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a rule id")?);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.prune_baseline && args.baseline.is_none() {
        return Err("--prune-baseline needs --baseline FILE".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hc-posture: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        print!("{}", render_rule_list());
        return ExitCode::SUCCESS;
    }

    if let Some(id) = &args.explain {
        return match hc_posture::rule_by_id(id) {
            Some(rule) => {
                print!("{}", render_explain(rule));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("hc-posture: unknown rule {id:?} — see --list-rules");
                ExitCode::from(2)
            }
        };
    }

    // Build the deployment, optionally planting seeded violations.
    let mut demo = match DemoDeployment::build(args.seed) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("hc-posture: demo deployment failed to build: {e}");
            return ExitCode::from(2);
        }
    };
    if args.planted {
        if let Err(e) = plant_violations(&mut demo) {
            eprintln!("hc-posture: planting violations failed: {e}");
            return ExitCode::from(2);
        }
    }

    let mut config: ScanConfig = match &args.config {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(json) => match ScanConfig::from_json(&json) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("hc-posture: malformed config {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("hc-posture: cannot read config {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None if args.planted => planted_config(),
        None => demo_config(),
    };
    if let Some(budget) = args.rotation_budget {
        config.rotation_budget = budget;
    }

    let snapshot = PlatformSnapshot::capture(&demo.platform);
    let outcome = match scan(&snapshot, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hc-posture: invalid scan config: {e}");
            return ExitCode::from(2);
        }
    };
    // Publish posture.* gauges into the platform's own registry so the
    // scan shows up next to the subsystems it audited.
    record_metrics(&demo.platform.telemetry, &outcome);

    if args.write_baseline {
        let base = Baseline::from_findings(&outcome.findings);
        let path = args
            .baseline
            .clone()
            .unwrap_or_else(|| PathBuf::from("posture-baseline.json"));
        if let Err(e) = std::fs::write(&path, base.to_json()) {
            eprintln!("hc-posture: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "hc-posture: wrote baseline with {} entr{} ({} finding(s)) to {}",
            base.entries.len(),
            if base.entries.len() == 1 { "y" } else { "ies" },
            outcome.findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut baseline = match &args.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(json) => match Baseline::from_json(&json) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("hc-posture: malformed baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("hc-posture: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => Baseline::empty(),
    };

    if args.prune_baseline {
        let pruned = baseline.pruned(&outcome.findings);
        let dropped: i64 = baseline.entries.iter().map(|e| i64::from(e.count)).sum::<i64>()
            - pruned.entries.iter().map(|e| i64::from(e.count)).sum::<i64>();
        let path = args
            .baseline
            .clone()
            .unwrap_or_else(|| PathBuf::from("posture-baseline.json"));
        if let Err(e) = std::fs::write(&path, pruned.to_json()) {
            eprintln!(
                "hc-posture: cannot write pruned baseline {}: {e}",
                path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "hc-posture: pruned baseline {} — {} entr{} remain, {} finding budget(s) dropped",
            path.display(),
            pruned.entries.len(),
            if pruned.entries.len() == 1 { "y" } else { "ies" },
            dropped,
        );
        baseline = pruned;
    }

    let diff = baseline.diff(&outcome.findings);

    match args.format {
        Format::Human => print!("{}", render_human(&outcome, &diff)),
        Format::Json => match serde_json::to_string(&json_report(&outcome, &diff)) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("hc-posture: cannot serialise report: {e}");
                return ExitCode::from(2);
            }
        },
    }

    if !diff.new_findings.is_empty() {
        return ExitCode::from(1);
    }
    if args.fail_stale && diff.stale_entries > 0 {
        eprintln!(
            "hc-posture: --fail-stale — {} baseline entr{} carry unmatched debt; run --prune-baseline",
            diff.stale_entries,
            if diff.stale_entries == 1 { "y" } else { "ies" },
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
