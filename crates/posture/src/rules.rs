//! The posture rule catalogue: stable ids, severities, and help text.
//!
//! Rule ids are stable API — they appear in baselines, suppression
//! configs, and CI output — and reuse the [`hc_lint::diag::Rule`] shape so
//! the two analysers share one catalogue/report vocabulary.

use hc_lint::diag::{Rule, Severity};

/// Admin-class principal holds plaintext PHI permissions in production.
pub const ADMIN_ON_PHI_PATH: &str = "posture-admin-on-phi-path";
/// A role's granted permissions exceed observed/declared use.
pub const ROLE_UNUSED_GRANT: &str = "posture-role-unused-grant";
/// KMS key authorized to principals that never use it.
pub const KMS_BROAD_GRANT: &str = "posture-kms-broad-grant";
/// PHI-serving workload admitted without attestation.
pub const UNATTESTED_WORKLOAD: &str = "posture-unattested-workload";
/// PHI-serving workload's image diverges from (or is missing) its golden
/// measurement.
pub const GOLDEN_DIVERGENCE: &str = "posture-golden-divergence";
/// PHI-serving workload whose quote chain was never verified.
pub const QUOTE_UNVERIFIED: &str = "posture-quote-unverified";
/// Identified PHI record stored without envelope encryption.
pub const PLAINTEXT_PHI: &str = "posture-plaintext-phi";
/// Live record references a shredded or unknown KMS key.
pub const SHREDDED_KEY_REF: &str = "posture-shredded-key-ref";
/// KMS key past the rotation-age policy.
pub const STALE_KEY: &str = "posture-stale-key";
/// Identified record whose patient never consented to the study.
pub const CONSENT_GAP: &str = "posture-consent-gap";
/// Revoked consent whose record/key was never crypto-shredded.
pub const REVOKED_UNSHREDDED: &str = "posture-revoked-unshredded";

/// The full posture rule catalogue, in stable order: four families
/// (`privilege`, `attest`, `encrypt`, `consent`) mirroring the paper's
/// trust pillars.
pub const POSTURE_RULES: &[Rule] = &[
    Rule {
        id: ADMIN_ON_PHI_PATH,
        family: "privilege",
        severity: Severity::Error,
        description: "Admin-class principal holds plaintext PHI read/write in a production environment",
        help: "A principal whose roles convey any Admin action *and* PatientData \
               Read/Write in a production environment combines infrastructure control \
               with plaintext PHI access — the exact blast radius the paper's \
               least-privilege split is meant to prevent. Administration of patient-data \
               resources (retention, crypto-shredding) needs PatientData:Admin, never \
               Read/Write. Fix: split the duties into two principals, or drop the PHI \
               grants from the admin-class role.",
    },
    Rule {
        id: ROLE_UNUSED_GRANT,
        family: "privilege",
        severity: Severity::Warning,
        description: "Role grants permissions never observed in gateway use nor declared by a runbook",
        help: "Every permission a production-assigned role grants must be either \
               observed at the API gateway (an allowed decision exercised the \
               permission) or declared in the scan config's declared-use manifest with \
               a justification. Grants that are neither are dormant privilege an \
               attacker inherits for free. Fix: shrink the role, exercise the flow, or \
               declare the use with a justification.",
    },
    Rule {
        id: KMS_BROAD_GRANT,
        family: "privilege",
        severity: Severity::Warning,
        description: "KMS key authorized to principals that never used it",
        help: "An active key (one with at least one recorded use) lists authorized \
               principals that never sealed or opened under it. Key grants are the \
               platform's last line of defence around PHI ciphertext; unused grants \
               widen the compromise surface silently. Fix: revoke the grant, or \
               suppress with a justification naming the break-glass procedure that \
               needs it.",
    },
    Rule {
        id: UNATTESTED_WORKLOAD,
        family: "attest",
        severity: Severity::Error,
        description: "PHI-serving container admitted without a passing attestation verdict",
        help: "A container whose image serves PHI is running with `attested = false` — \
               it was admitted although no attestation verdict vouched for its stack. \
               The paper's trust chain (hardware TPM → vTPM → container) exists \
               precisely so PHI never lands on unverified compute. Fix: redeploy \
               through the attested path, or move the workload off PHI-serving images.",
    },
    Rule {
        id: GOLDEN_DIVERGENCE,
        family: "attest",
        severity: Severity::Error,
        description: "PHI-serving workload's image measurement missing from or diverging from the golden registry",
        help: "The image a PHI-serving container runs either has no golden measurement \
               registered (nothing to attest against) or its signed content digest \
               differs from the registered golden value (the approved build and the \
               attestation expectation disagree). Either way the attestation verdict \
               is meaningless for this workload. Fix: register the approved build's \
               measurement through change management, or roll the image back.",
    },
    Rule {
        id: QUOTE_UNVERIFIED,
        family: "attest",
        severity: Severity::Error,
        description: "PHI-serving workload marked attested but no quote verification was recorded for it",
        help: "The container carries `attested = true` yet the attestation service \
               holds no verdict for its subject (`vm-<id>/<image>`), or the latest \
               verdict is untrusted. An admission flag without a verifiable quote \
               chain behind it is trust by assertion. Fix: verify the workload's \
               chained quote via `verify_chained_quote_for` before deployment.",
    },
    Rule {
        id: PLAINTEXT_PHI,
        family: "encrypt",
        severity: Severity::Error,
        description: "Identified PHI record stored without envelope encryption metadata",
        help: "A live record that maps to a patient identity lacks the \
               `enc=envelope-v1` tag the ingestion pipeline stamps on every sealed \
               version — the bytes at rest are not provably envelope-encrypted. Fix: \
               re-ingest through the pipeline, or re-seal and tag the version; direct \
               `DataLake::put` of identified data is never compliant.",
    },
    Rule {
        id: SHREDDED_KEY_REF,
        family: "encrypt",
        severity: Severity::Error,
        description: "Live record references a shredded or unknown KMS key",
        help: "The record's `dek` tag names a key absent from the live KMS table: \
               either the key was shredded while the ciphertext lives on (the \
               two-phase forget flow was bypassed) or the tag references a key this \
               KMS never issued. The ciphertext is permanently unreadable yet still \
               retained — a retention-policy violation and an audit red flag. Fix: \
               purge the record, or restore the ingest/forget pairing.",
    },
    Rule {
        id: STALE_KEY,
        family: "encrypt",
        severity: Severity::Warning,
        description: "KMS key used beyond the rotation-age policy without rotation",
        help: "The key has absorbed more uses since its last creation/rotation than \
               the configured rotation budget allows. Long-lived DEKs concentrate \
               risk: one key compromise exposes every record sealed in the window. \
               Fix: rotate the key (`KeyManagementSystem::rotate`) and re-seal, or \
               raise the budget deliberately in the scan config.",
    },
    Rule {
        id: CONSENT_GAP,
        family: "consent",
        severity: Severity::Error,
        description: "Identified record stored with no consent grant or history for its patient",
        help: "RBAC permits analytics/export flows over the study's records, but this \
               record's patient has no active consent grant *and no consent event \
               history at all* for the study group — the data entered the lake \
               without ever passing the consent service. Fix: obtain and record \
               consent, or purge the record; backfilled data must replay consent \
               provenance.",
    },
    Rule {
        id: REVOKED_UNSHREDDED,
        family: "consent",
        severity: Severity::Error,
        description: "Consent revoked but the patient's records/keys were never crypto-shredded",
        help: "The patient's latest consent event for the study is a revocation, yet \
               identified records remain live with live DEKs. GDPR-style \
               right-to-forget on this platform is crypto-shredding \
               (`forget_patient`): tombstone + purge the records and shred their \
               keys. A revocation that changes nothing at rest is a compliance gap. \
               Fix: run the forget flow for the patient.",
    },
];

/// Looks a posture rule up by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    POSTURE_RULES.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_unique_prefixed_and_resolvable() {
        for (i, r) in POSTURE_RULES.iter().enumerate() {
            assert!(r.id.starts_with("posture-"), "{} lacks posture- prefix", r.id);
            assert!(
                POSTURE_RULES.iter().skip(i + 1).all(|o| o.id != r.id),
                "duplicate id {}",
                r.id
            );
            assert!(rule_by_id(r.id).is_some());
        }
        assert!(rule_by_id("posture-no-such-rule").is_none());
    }

    #[test]
    fn four_families_covered() {
        let mut families: Vec<&str> = POSTURE_RULES.iter().map(|r| r.family).collect();
        families.sort_unstable();
        families.dedup();
        assert_eq!(families, vec!["attest", "consent", "encrypt", "privilege"]);
    }
}
