//! Human and JSON rendering of posture scan results.
//!
//! Mirrors `hc_lint::report` so CI consumers can parse both tools with
//! one schema reader; `--explain` output is shared verbatim via
//! [`hc_lint::report::render_explain`].

use std::collections::BTreeMap;

use serde::Serialize;

use hc_lint::baseline::BaselineDiff;
use hc_lint::diag::Finding;

use crate::rules::POSTURE_RULES;
use crate::scan::ScanOutcome;

/// JSON report shape — stable output contract for CI artifact consumers.
/// Identical to `hc-lint`'s except `entities_scanned` replaces
/// `files_scanned` and `suppressed` is added.
#[derive(Clone, Debug, Serialize)]
pub struct PostureJsonReport {
    /// Always `"hc-posture"`.
    pub tool: String,
    /// Report schema version.
    pub schema_version: u32,
    /// Deployment entities walked by the scan.
    pub entities_scanned: usize,
    /// Total findings before baseline filtering (after suppression).
    pub total_findings: usize,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
    /// Baseline entries with unused budget (debt paid down).
    pub stale_baseline_entries: usize,
    /// Findings absorbed by config suppressions.
    pub suppressed: usize,
    /// Findings that fail the run.
    pub new_findings: Vec<Finding>,
    /// Per-rule totals (before baseline filtering), rule id → count.
    pub totals_by_rule: BTreeMap<String, usize>,
}

/// Builds the JSON report object.
pub fn json_report(outcome: &ScanOutcome, diff: &BaselineDiff) -> PostureJsonReport {
    let mut totals: BTreeMap<String, usize> = BTreeMap::new();
    for f in &outcome.findings {
        *totals.entry(f.rule.clone()).or_insert(0) += 1;
    }
    PostureJsonReport {
        tool: "hc-posture".to_string(),
        schema_version: 1,
        entities_scanned: outcome.entities_scanned,
        total_findings: outcome.findings.len(),
        baselined: diff.baselined,
        stale_baseline_entries: diff.stale_entries,
        suppressed: outcome.suppressed,
        new_findings: diff.new_findings.clone(),
        totals_by_rule: totals,
    }
}

/// Renders the human-readable report. Subject paths carry no line/col,
/// so each finding prints as `subject: [severity] rule — message` with
/// the stable violation key indented below.
pub fn render_human(outcome: &ScanOutcome, diff: &BaselineDiff) -> String {
    let mut out = String::new();

    for f in &diff.new_findings {
        out.push_str(&format!(
            "{}: [{}] {} — {}\n    key: {}\n",
            f.file,
            f.severity.as_str(),
            f.rule,
            f.message,
            f.snippet,
        ));
    }

    let mut totals: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &outcome.findings {
        *totals.entry(f.rule.as_str()).or_insert(0) += 1;
    }

    out.push_str(&format!(
        "\nhc-posture: {} entit{} scanned, {} finding(s) total ({} baselined, {} suppressed, {} new)\n",
        outcome.entities_scanned,
        if outcome.entities_scanned == 1 { "y" } else { "ies" },
        outcome.findings.len(),
        diff.baselined,
        outcome.suppressed,
        diff.new_findings.len(),
    ));
    for rule in POSTURE_RULES {
        if let Some(n) = totals.get(rule.id) {
            out.push_str(&format!(
                "  {:28} {:5}  [{}]\n",
                rule.id,
                n,
                rule.severity.as_str()
            ));
        }
    }
    if diff.stale_entries > 0 {
        out.push_str(&format!(
            "  note: {} baseline entr{} no longer matched — debt paid down; run --write-baseline to ratchet\n",
            diff.stale_entries,
            if diff.stale_entries == 1 { "y" } else { "ies" },
        ));
    }
    if diff.new_findings.is_empty() {
        out.push_str("hc-posture: PASS\n");
    } else {
        out.push_str("hc-posture: FAIL (new findings above)\n");
    }
    out
}

/// Renders the posture rule catalogue for `--list-rules`.
pub fn render_rule_list() -> String {
    let mut out =
        String::from("rule                          family       severity  description\n");
    for r in POSTURE_RULES {
        out.push_str(&format!(
            "{:28}  {:11}  {:8}  {}\n",
            r.id,
            r.family,
            r.severity.as_str(),
            r.description
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_lint::diag::Severity;

    fn sample_outcome() -> ScanOutcome {
        ScanOutcome {
            findings: vec![Finding {
                rule: "posture-stale-key".to_string(),
                severity: Severity::Warning,
                file: "deployment://kms/key/0123".to_string(),
                line: 0,
                col: 0,
                message: "key overdue".to_string(),
                snippet: "rotation-overdue".to_string(),
            }],
            suppressed: 2,
            entities_scanned: 9,
        }
    }

    #[test]
    fn human_report_pass_and_fail() {
        let outcome = sample_outcome();
        let clean = BaselineDiff {
            baselined: 1,
            ..BaselineDiff::default()
        };
        let passing = render_human(&outcome, &clean);
        assert!(passing.contains("hc-posture: PASS"));
        assert!(passing.contains("9 entities scanned"));
        assert!(passing.contains("2 suppressed"));

        let failing_diff = BaselineDiff {
            new_findings: outcome.findings.clone(),
            ..BaselineDiff::default()
        };
        let failing = render_human(&outcome, &failing_diff);
        assert!(failing.contains("hc-posture: FAIL"));
        assert!(failing.contains("deployment://kms/key/0123: [warning] posture-stale-key"));
        assert!(failing.contains("key: rotation-overdue"));
    }

    #[test]
    fn json_report_is_stable() {
        let outcome = sample_outcome();
        let diff = BaselineDiff::default();
        let report = json_report(&outcome, &diff);
        let json = serde_json::to_string(&report).expect("serializes");
        assert!(json.contains("\"tool\":\"hc-posture\""));
        assert!(json.contains("\"entities_scanned\":9"));
        assert!(json.contains("\"suppressed\":2"));
        assert!(json.contains("\"posture-stale-key\":1"));
    }

    #[test]
    fn rule_list_covers_catalogue() {
        let listing = render_rule_list();
        for r in POSTURE_RULES {
            assert!(listing.contains(r.id), "{} missing from listing", r.id);
        }
    }
}
