//! The posture rule engine: evaluates [`crate::rules::POSTURE_RULES`]
//! over a [`PlatformSnapshot`] under a [`ScanConfig`].
//!
//! The scan itself is pure — snapshot in, findings out — so it is
//! trivially testable and can never interleave with platform mutation.
//! Findings reuse [`hc_lint::diag::Finding`]: the `file` slot carries the
//! `deployment://` subject path and `snippet` carries a stable violation
//! key, so the shared fingerprint (`rule|subject|key`) survives re-scans
//! of an evolving deployment exactly like source fingerprints survive
//! line churn.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use hc_lint::diag::{Finding, Severity};
use hc_telemetry::Registry;

use crate::rules;
use crate::snapshot::PlatformSnapshot;

/// Default rotation budget: uses a key may absorb since its last
/// creation/rotation before `posture-stale-key` fires.
pub const DEFAULT_ROTATION_BUDGET: u64 = 4096;

/// A declared (runbook-justified) permission use, exempting one
/// `(role, permission)` pair from `posture-role-unused-grant` when the
/// gateway has not observed it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeclaredUse {
    /// The role name.
    pub role: String,
    /// The permission as a `Kind:Action` string, e.g. `Key:Admin`.
    pub permission: String,
    /// Why the grant is needed despite no observed use. Must be
    /// non-empty.
    pub justification: String,
}

/// A suppression: accepts every finding of `rule` on `subject` with a
/// recorded justification. The posture analogue of `hc-lint`'s inline
/// `allow` comments — deployments have no source line to annotate, so
/// suppressions live in the scan config instead.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Suppression {
    /// The rule id, e.g. `posture-kms-broad-grant`.
    pub rule: String,
    /// The exact `deployment://` subject path to suppress on.
    pub subject: String,
    /// Why the finding is accepted. Must be non-empty.
    pub justification: String,
}

/// Scan configuration: policy knobs plus the declared-use manifest and
/// suppression list.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScanConfig {
    /// Budget for `posture-stale-key` (uses since creation/rotation).
    pub rotation_budget: u64,
    /// Runbook-declared permission uses.
    pub declared_use: Vec<DeclaredUse>,
    /// Justified suppressions.
    pub suppressions: Vec<Suppression>,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            rotation_budget: DEFAULT_ROTATION_BUDGET,
            declared_use: Vec::new(),
            suppressions: Vec::new(),
        }
    }
}

impl ScanConfig {
    /// Parses a config from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error message for malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Validates the config: every declared use and suppression must name
    /// a known rule (suppressions), carry a non-empty justification, and
    /// declared permissions must look like `Kind:Action`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid entry.
    pub fn validate(&self) -> Result<(), String> {
        for d in &self.declared_use {
            if d.justification.trim().is_empty() {
                return Err(format!(
                    "declared use of {} by role `{}` has an empty justification",
                    d.permission, d.role
                ));
            }
            if !d.permission.contains(':') {
                return Err(format!(
                    "declared permission `{}` is not a Kind:Action string",
                    d.permission
                ));
            }
        }
        for s in &self.suppressions {
            if rules::rule_by_id(&s.rule).is_none() {
                return Err(format!("suppression names unknown rule `{}`", s.rule));
            }
            if s.justification.trim().is_empty() {
                return Err(format!(
                    "suppression of {} on {} has an empty justification",
                    s.rule, s.subject
                ));
            }
        }
        Ok(())
    }
}

/// The result of one posture scan.
#[derive(Clone, Debug, Default)]
pub struct ScanOutcome {
    /// Findings that survived suppression, in rule-catalogue order.
    pub findings: Vec<Finding>,
    /// Findings absorbed by config suppressions.
    pub suppressed: usize,
    /// Entities walked (workloads + roles + assignments + keys +
    /// records).
    pub entities_scanned: usize,
}

fn finding(rule_id: &str, subject: &str, key: String, message: String) -> Finding {
    let severity = rules::rule_by_id(rule_id)
        .map(|r| r.severity)
        .unwrap_or(Severity::Error);
    Finding {
        rule: rule_id.to_owned(),
        severity,
        file: subject.to_owned(),
        line: 0,
        col: 0,
        message,
        snippet: key,
    }
}

fn is_admin_perm(perm: &str) -> bool {
    perm.ends_with(":Admin")
}

const PHI_READ: &str = "PatientData:Read";
const PHI_WRITE: &str = "PatientData:Write";

/// Runs every posture rule over `snapshot` under `config`.
///
/// # Errors
///
/// Fails when the config is invalid (see [`ScanConfig::validate`]); an
/// unjustified suppression must never silently eat findings.
pub fn scan(snapshot: &PlatformSnapshot, config: &ScanConfig) -> Result<ScanOutcome, String> {
    config.validate()?;

    let mut findings: Vec<Finding> = Vec::new();

    // --- privilege ---------------------------------------------------

    // posture-admin-on-phi-path: a production principal combining any
    // Admin action with plaintext PHI read/write.
    for a in &snapshot.assignments {
        let has_admin = a.permissions.iter().any(|p| is_admin_perm(p));
        let phi: Vec<&str> = [PHI_READ, PHI_WRITE]
            .into_iter()
            .filter(|p| a.permissions.contains(*p))
            .collect();
        if has_admin && !phi.is_empty() {
            findings.push(finding(
                rules::ADMIN_ON_PHI_PATH,
                &format!("deployment://rbac/user/{}", a.username),
                format!("roles={}", a.roles.join("+")),
                format!(
                    "production user `{}` holds admin-class permissions alongside plaintext PHI access ({}) via roles {}",
                    a.username,
                    phi.join(", "),
                    a.roles.join(", "),
                ),
            ));
        }
    }

    // posture-role-unused-grant: granted but neither observed at the
    // gateway nor declared in the runbook manifest.
    let declared: BTreeSet<(&str, &str)> = config
        .declared_use
        .iter()
        .map(|d| (d.role.as_str(), d.permission.as_str()))
        .collect();
    let empty = BTreeSet::new();
    for role in &snapshot.prod_assigned_roles {
        let Some(perms) = snapshot.roles.get(role) else {
            continue;
        };
        let observed = snapshot.observed_use.get(role).unwrap_or(&empty);
        for perm in perms {
            if observed.contains(perm) || declared.contains(&(role.as_str(), perm.as_str())) {
                continue;
            }
            findings.push(finding(
                rules::ROLE_UNUSED_GRANT,
                &format!("deployment://rbac/role/{role}"),
                perm.clone(),
                format!(
                    "role `{role}` grants {perm} but no gateway decision ever exercised it and no runbook declares the need"
                ),
            ));
        }
    }

    // posture-kms-broad-grant: active keys with never-used grants.
    for key in &snapshot.keys {
        if key.used_by.is_empty() {
            continue; // freshly minted, nothing to compare against yet
        }
        for principal in key.authorized.difference(&key.used_by) {
            findings.push(finding(
                rules::KMS_BROAD_GRANT,
                &key.path,
                principal.clone(),
                format!(
                    "key authorizes `{principal}` which never sealed or opened under it (active principals: {})",
                    key.used_by.iter().cloned().collect::<Vec<_>>().join(", "),
                ),
            ));
        }
    }

    // --- attest -------------------------------------------------------

    for w in &snapshot.workloads {
        if !w.phi_serving {
            continue;
        }
        if !w.attested {
            findings.push(finding(
                rules::UNATTESTED_WORKLOAD,
                &w.path,
                w.image_name.clone(),
                format!(
                    "PHI-serving container runs image `{}` but was admitted without attestation",
                    w.image_name
                ),
            ));
        }
        match (snapshot.golden.get(&w.image_name), w.image_digest) {
            (None, _) => findings.push(finding(
                rules::GOLDEN_DIVERGENCE,
                &w.path,
                format!("missing-golden:{}", w.image_name),
                format!(
                    "image `{}` has no golden measurement registered — nothing to attest against",
                    w.image_name
                ),
            )),
            (Some(&golden), digest) if digest != Some(golden) => findings.push(finding(
                rules::GOLDEN_DIVERGENCE,
                &w.path,
                format!("digest-mismatch:{}", w.image_name),
                format!(
                    "image `{}`'s signed digest diverges from its registered golden measurement",
                    w.image_name
                ),
            )),
            _ => {}
        }
        if w.attested && snapshot.verdicts.get(&w.attest_subject) != Some(&true) {
            findings.push(finding(
                rules::QUOTE_UNVERIFIED,
                &w.path,
                w.attest_subject.clone(),
                format!(
                    "container is marked attested but no trusted quote verification is recorded for subject `{}`",
                    w.attest_subject
                ),
            ));
        }
    }

    // --- encrypt ------------------------------------------------------

    for r in &snapshot.records {
        if r.tombstoned {
            continue;
        }
        if r.patient.is_some() && r.enc_scheme.is_none() {
            findings.push(finding(
                rules::PLAINTEXT_PHI,
                &r.path,
                "missing-enc-tag".to_owned(),
                "identified record's latest version carries no envelope-encryption tag — bytes at rest are not provably sealed".to_owned(),
            ));
        }
        if r.enc_scheme.is_some() {
            let live = r
                .dek
                .as_deref()
                .and_then(|d| d.parse::<u128>().ok())
                .map(|raw| snapshot.live_keys.contains(&raw))
                .unwrap_or(false);
            if !live {
                let key = match r.dek.as_deref() {
                    Some(d) => format!("dek={d}"),
                    None => "missing-dek".to_owned(),
                };
                findings.push(finding(
                    rules::SHREDDED_KEY_REF,
                    &r.path,
                    key,
                    "record is envelope-encrypted but its wrapping key is not in the live KMS table (shredded or never issued)".to_owned(),
                ));
            }
        }
    }

    for key in &snapshot.keys {
        if key.uses_since_rotation > config.rotation_budget {
            findings.push(finding(
                rules::STALE_KEY,
                &key.path,
                "rotation-overdue".to_owned(),
                format!(
                    "key absorbed {} uses since its last creation/rotation (budget {})",
                    key.uses_since_rotation, config.rotation_budget,
                ),
            ));
        }
    }

    // --- consent ------------------------------------------------------

    if let Some(study) = snapshot.study {
        for r in &snapshot.records {
            if r.tombstoned {
                continue;
            }
            let Some(pid) = r.patient else { continue };
            let pair = (pid, study);
            if !snapshot.active_consent.contains(&pair)
                && !snapshot.consent_history.contains(&pair)
            {
                findings.push(finding(
                    rules::CONSENT_GAP,
                    &r.path,
                    format!("patient={pid}"),
                    format!(
                        "identified record's patient {pid} has no active consent and no consent history for the study"
                    ),
                ));
            }
        }
        for &pid in &snapshot.revoked_latest {
            let live = snapshot
                .records
                .iter()
                .any(|r| !r.tombstoned && r.patient == Some(pid));
            if live {
                findings.push(finding(
                    rules::REVOKED_UNSHREDDED,
                    &format!("deployment://consent/patient/{pid}"),
                    format!("study={study}"),
                    format!(
                        "patient {pid} revoked consent but identified records remain live — the crypto-shredding forget flow never ran"
                    ),
                ));
            }
        }
    }

    // --- suppression --------------------------------------------------

    let mut outcome = ScanOutcome {
        entities_scanned: snapshot.entity_count(),
        ..ScanOutcome::default()
    };
    for f in findings {
        let suppressed = config
            .suppressions
            .iter()
            .any(|s| s.rule == f.rule && s.subject == f.file);
        if suppressed {
            outcome.suppressed += 1;
        } else {
            outcome.findings.push(f);
        }
    }
    Ok(outcome)
}

/// Publishes a scan outcome into a telemetry registry under the
/// `posture.*` metric family (see `OBSERVABILITY.md`).
pub fn record_metrics(registry: &Registry, outcome: &ScanOutcome) {
    registry.counter("posture.scans").add(1);
    registry
        .gauge("posture.entities.scanned")
        .set(outcome.entities_scanned as i64);
    registry
        .gauge("posture.findings.total")
        .set(outcome.findings.len() as i64);
    registry
        .gauge("posture.findings.suppressed")
        .set(outcome.suppressed as i64);
    for family in ["privilege", "attest", "encrypt", "consent"] {
        let n = outcome
            .findings
            .iter()
            .filter(|f| {
                rules::rule_by_id(&f.rule)
                    .map(|r| r.family == family)
                    .unwrap_or(false)
            })
            .count();
        registry
            .gauge(&format!("posture.findings.{family}"))
            .set(n as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{AssignmentSnapshot, KeySnapshot, RecordSnapshot};
    use hc_common::id::{GroupId, PatientId};

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn admin_on_phi_path_needs_both_halves() {
        let mut snap = PlatformSnapshot::default();
        snap.assignments.push(AssignmentSnapshot {
            username: "mallory".into(),
            roles: vec!["super".into()],
            permissions: set(&["Service:Admin", "PatientData:Read"]),
        });
        snap.assignments.push(AssignmentSnapshot {
            username: "adam".into(),
            roles: vec!["admin".into()],
            permissions: set(&["Key:Admin", "PatientData:Admin"]),
        });
        let out = scan(&snap, &ScanConfig::default()).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, rules::ADMIN_ON_PHI_PATH);
        assert!(out.findings[0].file.ends_with("/mallory"));
    }

    #[test]
    fn unused_grant_respects_observed_and_declared() {
        let mut snap = PlatformSnapshot::default();
        snap.roles.insert("ops".into(), set(&["Service:Read", "PatientData:Read"]));
        snap.prod_assigned_roles.insert("ops".into());
        snap.observed_use.insert("ops".into(), set(&["Service:Read"]));
        let out = scan(&snap, &ScanConfig::default()).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].snippet, "PatientData:Read");

        let cfg = ScanConfig {
            declared_use: vec![DeclaredUse {
                role: "ops".into(),
                permission: "PatientData:Read".into(),
                justification: "break-glass runbook RB-7".into(),
            }],
            ..ScanConfig::default()
        };
        assert!(scan(&snap, &cfg).unwrap().findings.is_empty());
    }

    #[test]
    fn broad_grant_skips_unused_keys() {
        let mut snap = PlatformSnapshot::default();
        snap.keys.push(KeySnapshot {
            path: "deployment://kms/key/aa".into(),
            authorized: set(&["service:ingest", "service:debug"]),
            used_by: BTreeSet::new(), // never used: no verdict possible yet
            uses_since_rotation: 0,
        });
        snap.keys.push(KeySnapshot {
            path: "deployment://kms/key/bb".into(),
            authorized: set(&["service:ingest", "service:debug"]),
            used_by: set(&["service:ingest"]),
            uses_since_rotation: 1,
        });
        let out = scan(&snap, &ScanConfig::default()).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].file, "deployment://kms/key/bb");
        assert_eq!(out.findings[0].snippet, "service:debug");
    }

    #[test]
    fn encrypt_rules_distinguish_plaintext_from_shredded() {
        let mut snap = PlatformSnapshot::default();
        let study = GroupId::from_raw(5);
        let p = PatientId::from_raw(1);
        snap.study = Some(study);
        snap.active_consent.insert((p, study));
        snap.consent_history.insert((p, study));
        snap.live_keys.insert(42);
        for (path, enc, dek) in [
            ("deployment://lake/record/01", None, None),           // plaintext
            ("deployment://lake/record/02", Some("envelope-v1"), Some("42")), // clean
            ("deployment://lake/record/03", Some("envelope-v1"), Some("43")), // shredded
        ] {
            snap.records.push(RecordSnapshot {
                path: path.into(),
                patient: Some(p),
                tombstoned: false,
                enc_scheme: enc.map(str::to_owned),
                dek: dek.map(str::to_owned),
            });
        }
        let out = scan(&snap, &ScanConfig::default()).unwrap();
        let rules_fired: Vec<&str> = out.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules_fired, vec![rules::PLAINTEXT_PHI, rules::SHREDDED_KEY_REF]);
    }

    #[test]
    fn consent_rules_use_history_and_latest_event() {
        let mut snap = PlatformSnapshot::default();
        let study = GroupId::from_raw(5);
        let never = PatientId::from_raw(1);
        let revoked = PatientId::from_raw(2);
        snap.study = Some(study);
        snap.consent_history.insert((revoked, study));
        snap.revoked_latest.insert(revoked);
        snap.live_keys.insert(7);
        for (path, patient) in [
            ("deployment://lake/record/01", never),
            ("deployment://lake/record/02", revoked),
        ] {
            snap.records.push(RecordSnapshot {
                path: path.into(),
                patient: Some(patient),
                tombstoned: false,
                enc_scheme: Some("envelope-v1".into()),
                dek: Some("7".into()),
            });
        }
        let out = scan(&snap, &ScanConfig::default()).unwrap();
        let rules_fired: Vec<&str> = out.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules_fired, vec![rules::CONSENT_GAP, rules::REVOKED_UNSHREDDED]);
    }

    #[test]
    fn stale_key_respects_budget() {
        let mut snap = PlatformSnapshot::default();
        snap.keys.push(KeySnapshot {
            path: "deployment://kms/key/aa".into(),
            authorized: set(&["service:batch"]),
            used_by: set(&["service:batch"]),
            uses_since_rotation: 70,
        });
        assert!(scan(&snap, &ScanConfig::default()).unwrap().findings.is_empty());
        let cfg = ScanConfig { rotation_budget: 64, ..ScanConfig::default() };
        let out = scan(&snap, &cfg).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, rules::STALE_KEY);
    }

    #[test]
    fn suppression_requires_justification_and_matches_exactly() {
        let mut snap = PlatformSnapshot::default();
        snap.keys.push(KeySnapshot {
            path: "deployment://kms/key/bb".into(),
            authorized: set(&["service:ingest", "service:debug"]),
            used_by: set(&["service:ingest"]),
            uses_since_rotation: 1,
        });
        let bad = ScanConfig {
            suppressions: vec![Suppression {
                rule: rules::KMS_BROAD_GRANT.into(),
                subject: "deployment://kms/key/bb".into(),
                justification: "  ".into(),
            }],
            ..ScanConfig::default()
        };
        assert!(scan(&snap, &bad).is_err());

        let good = ScanConfig {
            suppressions: vec![Suppression {
                rule: rules::KMS_BROAD_GRANT.into(),
                subject: "deployment://kms/key/bb".into(),
                justification: "debug principal is the documented break-glass path".into(),
            }],
            ..ScanConfig::default()
        };
        let out = scan(&snap, &good).unwrap();
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressed, 1);

        let unknown_rule = ScanConfig {
            suppressions: vec![Suppression {
                rule: "posture-no-such".into(),
                subject: "x".into(),
                justification: "y".into(),
            }],
            ..ScanConfig::default()
        };
        assert!(scan(&snap, &unknown_rule).is_err());
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = ScanConfig {
            rotation_budget: 64,
            declared_use: vec![DeclaredUse {
                role: "admin".into(),
                permission: "Key:Admin".into(),
                justification: "runbook".into(),
            }],
            suppressions: Vec::new(),
        };
        let back = ScanConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back.rotation_budget, 64);
        assert_eq!(back.declared_use.len(), 1);
        assert!(ScanConfig::from_json("not json").is_err());
    }

    #[test]
    fn metrics_published_per_family() {
        let registry = Registry::new();
        let mut snap = PlatformSnapshot::default();
        snap.keys.push(KeySnapshot {
            path: "deployment://kms/key/bb".into(),
            authorized: set(&["service:ingest", "service:debug"]),
            used_by: set(&["service:ingest"]),
            uses_since_rotation: 1,
        });
        let out = scan(&snap, &ScanConfig::default()).unwrap();
        record_metrics(&registry, &out);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("posture.scans"), Some(1));
        assert_eq!(snapshot.gauge("posture.findings.total"), Some(1));
        assert_eq!(snapshot.gauge("posture.findings.privilege"), Some(1));
        assert_eq!(snapshot.gauge("posture.findings.consent"), Some(0));
    }
}
