//! A reproducible 3-region demo deployment for posture scanning.
//!
//! [`DemoDeployment::build`] boots the full platform and drives it to a
//! *clean* steady state — attested hosts and workloads, least-privilege
//! users exercising exactly the permissions their roles grant, consented
//! patients ingested through the envelope-encryption pipeline, and one
//! anonymized export. A posture scan of this state under
//! [`demo_config`] yields zero findings; that claim is E21's control arm.
//!
//! [`plant_violations`] then mutates the deployment to seed exactly one
//! deliberate instance of every posture rule (the golden-divergence plant
//! also leaves its workload quote-unverified, covering two rules on one
//! subject). E21 asserts the scanner finds all of them and nothing else —
//! precision and recall 1.0 against the planted ground truth.

use std::collections::BTreeMap;

use hc_access::model::{Action, Permission, ResourceKind, Role};
use hc_attest::image::sign_image;
use hc_attest::measure::{measured_boot, Component, Layer};
use hc_common::id::{ImageId, PatientId, Principal};
use hc_core::platform::{demo_bundle, HealthCloudPlatform, PlatformConfig};
use hc_crypto::ots::MerkleSigner;
use hc_crypto::sha256;

use crate::rules;
use crate::scan::{DeclaredUse, ScanConfig, DEFAULT_ROTATION_BUDGET};
use crate::snapshot::{perm_string, workload_path};

/// The images the demo deploys to every region. The first two serve PHI
/// (`ingest`/`export` prefixes); the batch job does not.
const IMAGE_NAMES: [&str; 3] = ["ingest-svc:v1", "export-svc:v1", "analytics-batch:v1"];

/// Number of regions in the demo deployment.
pub const REGIONS: usize = 3;

fn image_content(name: &str) -> Vec<u8> {
    format!("{name}-layers").into_bytes()
}

/// A booted demo deployment plus the handles needed to plant violations
/// into it.
pub struct DemoDeployment {
    /// The live platform the snapshot is captured from.
    pub platform: HealthCloudPlatform,
    /// Registered images by name.
    pub images: BTreeMap<String, ImageId>,
    /// The three consented demo patients, in registration order.
    pub patients: Vec<PatientId>,
    builder: MerkleSigner,
}

/// One seeded defect and the subject path the scanner must report it on.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlantedViolation {
    /// The posture rule id expected to fire.
    pub rule: &'static str,
    /// The expected finding subject (`deployment://…`).
    pub subject: String,
}

impl DemoDeployment {
    /// Boots the clean 3-region deployment from a seed.
    ///
    /// # Errors
    ///
    /// Fails when any build step the demo depends on is rejected
    /// (attestation, image registration, gateway authorization,
    /// ingestion) — a failure here means the platform itself regressed.
    pub fn build(seed: u64) -> Result<Self, String> {
        let platform = HealthCloudPlatform::bootstrap(PlatformConfig {
            seed,
            ..PlatformConfig::default()
        });

        // --- infrastructure: 2 attested hosts per region ---------------
        let host_stack = [
            Component::new(Layer::Hardware, "bios", b"bios-2.1"),
            Component::new(Layer::Hypervisor, "kvm", b"kvm-6.8"),
            Component::new(Layer::Vm, "guest-linux", b"linux-6.6"),
        ];
        let mut region_tpms = Vec::new();
        for region in 0..REGIONS {
            for h in 0..2 {
                platform.infra.lock().add_host(region, 32, 1_000_000_000);
                let (tpm, verdict) = platform.attested_boot(
                    &format!("host-r{region}-{h}"),
                    &host_stack,
                    true,
                );
                if !verdict.trusted {
                    return Err(format!(
                        "host-r{region}-{h} failed attestation: {:?}",
                        verdict.failures
                    ));
                }
                if h == 0 {
                    region_tpms.push(tpm);
                }
            }
        }

        // --- signed images with golden measurements --------------------
        let mut builder = {
            let mut rng = platform.rng();
            MerkleSigner::generate(&mut *rng, 4)
        };
        platform.images.lock().approve_signer(builder.public_key());
        let mut images = BTreeMap::new();
        for name in IMAGE_NAMES {
            let content = image_content(name);
            let signed = {
                let mut rng = platform.rng();
                sign_image(&mut *rng, &mut builder, name, &content).map_err(|e| e.to_string())?
            };
            let id = platform
                .images
                .lock()
                .register(signed)
                .map_err(|e| e.to_string())?;
            platform
                .attestation
                .lock()
                .register_golden(&Component::new(Layer::Container, name, &content));
            images.insert(name.to_owned(), id);
        }

        // --- one VM per region, every image chain-attested -------------
        let nonce = b"posture-demo-nonce";
        for (region, host_tpm) in region_tpms.iter_mut().enumerate() {
            let vm = platform
                .infra
                .lock()
                .provision_vm(region, 16)
                .map_err(|e| format!("{e:?}"))?;
            let mut vtpm = {
                let mut rng = platform.rng();
                host_tpm
                    .spawn_vtpm(&mut *rng, &format!("vtpm-r{region}"))
                    .map_err(|e| format!("{e:?}"))?
            };
            for name in IMAGE_NAMES {
                let content = image_content(name);
                let mut ctpm = {
                    let mut rng = platform.rng();
                    vtpm.spawn_vtpm(&mut *rng, &format!("ctpm-r{region}-{name}"))
                        .map_err(|e| format!("{e:?}"))?
                };
                let stack = [Component::new(Layer::Container, name, &content)];
                let quote = measured_boot(&mut ctpm, &stack, nonce).map_err(|e| format!("{e:?}"))?;
                let chain = [
                    ctpm.certificate()
                        .cloned()
                        .ok_or("container vTPM lacks a certificate")?,
                    vtpm.certificate().cloned().ok_or("vTPM lacks a certificate")?,
                ];
                let subject = format!("vm-{}/{name}", vm.as_u128());
                let verdict = platform.attestation.lock().verify_chained_quote_for(
                    &subject,
                    &quote,
                    &chain,
                    &stack,
                    nonce,
                );
                if !verdict.trusted {
                    return Err(format!(
                        "workload {subject} failed attestation: {:?}",
                        verdict.failures
                    ));
                }
                let image_id = images.get(name).copied().ok_or("image registered above")?;
                platform
                    .infra
                    .lock()
                    .deploy_container(vm, image_id, Ok(verdict.trusted))
                    .map_err(|e| format!("{e:?}"))?;
            }
        }

        // --- least-privilege users exercising exactly their grants -----
        let mut tokens = BTreeMap::new();
        for (name, role) in [
            ("alice", "clinician"),
            ("rita", "researcher"),
            ("aaron", "auditor"),
            ("adam", "admin"),
        ] {
            let (_, token) = platform.register_user(name, b"demo-pass", role);
            tokens.insert(name, token);
        }
        for (user, kind, action, op) in [
            ("alice", ResourceKind::PatientData, Action::Read, "read-record"),
            ("alice", ResourceKind::PatientData, Action::Write, "update-record"),
            ("alice", ResourceKind::AnonymizedData, Action::Read, "view-cohort"),
            ("rita", ResourceKind::AnonymizedData, Action::Read, "export-anon"),
            ("rita", ResourceKind::Model, Action::Read, "load-model"),
            ("rita", ResourceKind::Model, Action::Write, "train-model"),
            ("aaron", ResourceKind::AuditLog, Action::Read, "review-audit"),
            ("aaron", ResourceKind::AnonymizedData, Action::Read, "spot-check"),
        ] {
            let token = tokens.get(user).ok_or("user enrolled above")?;
            platform
                .authorize(token, Permission::new(kind, action), op)
                .map_err(|e| format!("{op} denied: {e:?}"))?;
        }

        // --- consented patients through the sealed pipeline ------------
        let mut patients = Vec::new();
        for i in 0..3u128 {
            let pid = PatientId::from_raw(9001 + i);
            let device = platform.register_patient_device(pid);
            // The demo *is* a patient device: uploading the (consented)
            // bundle into the sealed ingest pipeline is the ingress path
            // the posture rules audit, not an egress leak.
            platform
                // hc-lint: allow(taint-phi-to-sink)
                .upload(&device, &demo_bundle(&format!("p{i}"), true))
                .map_err(|e| format!("{e:?}"))?;
            patients.push(pid);
        }
        let processed = platform.process_ingestion();
        if processed != patients.len() {
            return Err(format!(
                "ingestion processed {processed} of {} demo uploads",
                patients.len()
            ));
        }
        // The export opens every record key as the export service, so the
        // clean deployment has no never-used record-key grants.
        platform
            .export_service()
            .export_anonymized()
            .map_err(|e| format!("{e:?}"))?;

        Ok(DemoDeployment {
            platform,
            images,
            patients,
            builder,
        })
    }
}

/// The scan config for the clean demo deployment: default rotation
/// budget, every `admin` grant declared against the platform runbook
/// (admin duties run out-of-band, not through the data-path gateway), no
/// suppressions.
pub fn demo_config() -> ScanConfig {
    let declared_use = Role::admin()
        .permissions
        .iter()
        .map(|p| DeclaredUse {
            role: "admin".to_owned(),
            permission: perm_string(*p),
            justification: "platform runbook: admin provisioning/rotation/retention duties \
                            run out-of-band, not through the data-path gateway"
                .to_owned(),
        })
        .collect();
    ScanConfig {
        rotation_budget: DEFAULT_ROTATION_BUDGET,
        declared_use,
        suppressions: Vec::new(),
    }
}

/// [`demo_config`] with the rotation budget tightened so the planted
/// stale key (70 uses) is over budget.
pub fn planted_config() -> ScanConfig {
    ScanConfig {
        rotation_budget: 64,
        ..demo_config()
    }
}

/// Seeds one deliberate violation of every posture rule into a clean
/// deployment and returns the expected `(rule, subject)` ground truth.
///
/// # Errors
///
/// Fails when a planting step cannot be applied (e.g. the demo state it
/// relies on is missing) — E21 treats that as a harness bug, not a
/// scanner result.
pub fn plant_violations(demo: &mut DemoDeployment) -> Result<Vec<PlantedViolation>, String> {
    let mut planted = Vec::new();
    let p = &demo.platform;

    // P1 — privilege: a production role fusing Admin control with
    // plaintext PHI, held and exercised by mallory.
    {
        let mut rbac = p.rbac.lock();
        rbac.add_role(Role::new(
            "super",
            [
                Permission::new(ResourceKind::Service, Action::Admin),
                Permission::new(ResourceKind::PatientData, Action::Read),
                Permission::new(ResourceKind::PatientData, Action::Write),
            ],
        ));
        rbac.add_role(Role::new(
            "ops-oncall",
            [
                Permission::new(ResourceKind::Service, Action::Read),
                Permission::new(ResourceKind::PatientData, Action::Read),
            ],
        ));
    }
    let (_, mallory_token) = p.register_user("mallory", b"pw", "super");
    for (kind, action, op) in [
        (ResourceKind::Service, Action::Admin, "restart-service"),
        (ResourceKind::PatientData, Action::Read, "read-any-record"),
        (ResourceKind::PatientData, Action::Write, "patch-any-record"),
    ] {
        p.authorize(&mallory_token, Permission::new(kind, action), op)
            .map_err(|e| format!("{op} denied: {e:?}"))?;
    }
    planted.push(PlantedViolation {
        rule: rules::ADMIN_ON_PHI_PATH,
        subject: "deployment://rbac/user/mallory".to_owned(),
    });

    // P2 — privilege: oscar's on-call role grants PHI read he never uses
    // and no runbook declares.
    let (_, oscar_token) = p.register_user("oscar", b"pw", "ops-oncall");
    p.authorize(
        &oscar_token,
        Permission::new(ResourceKind::Service, Action::Read),
        "page-status",
    )
    .map_err(|e| format!("page-status denied: {e:?}"))?;
    planted.push(PlantedViolation {
        rule: rules::ROLE_UNUSED_GRANT,
        subject: "deployment://rbac/role/ops-oncall".to_owned(),
    });

    // P3 — privilege: a key granting a debug principal that never uses it.
    let ingest = Principal::Service("ingest".to_owned());
    let key_broad = {
        let mut rng = p.rng();
        p.kms.create_key(
            &mut *rng,
            &[ingest.clone(), Principal::Service("debug-tool".to_owned())],
        )
    };
    p.kms
        .seal(&ingest, key_broad, b"maintenance-blob", b"aad")
        .map_err(|e| format!("{e:?}"))?;
    planted.push(PlantedViolation {
        rule: rules::KMS_BROAD_GRANT,
        subject: format!("deployment://kms/key/{key_broad}"),
    });

    // P4 — attest: a PHI-serving container admitted with attested=false.
    let rogue_image = demo
        .images
        .get("ingest-svc:v1")
        .copied()
        .ok_or("demo registered ingest-svc:v1")?;
    let rogue_subject = {
        let mut infra = p.infra.lock();
        let vm = infra.provision_vm(0, 16).map_err(|e| format!("{e:?}"))?;
        let container = infra
            .deploy_container(vm, rogue_image, Ok(false))
            .map_err(|e| format!("{e:?}"))?;
        workload_path(&infra, container).ok_or("placement recorded")?
    };
    planted.push(PlantedViolation {
        rule: rules::UNATTESTED_WORKLOAD,
        subject: rogue_subject,
    });

    // P5 — attest: a PHI image whose golden measurement diverges from the
    // signed build, deployed with the attested flag set but no quote ever
    // verified. One subject, two expected findings.
    let ehr_name = "ehr-frontend:v1";
    let signed = {
        let mut rng = p.rng();
        sign_image(&mut *rng, &mut demo.builder, ehr_name, b"ehr-frontend-layers-v1")
            .map_err(|e| e.to_string())?
    };
    let ehr_id = p.images.lock().register(signed).map_err(|e| e.to_string())?;
    p.attestation
        .lock()
        .update_golden(ehr_name, sha256::hash(b"ehr-frontend-layers-v0"));
    let ehr_subject = {
        let mut infra = p.infra.lock();
        let vm = infra.provision_vm(1, 8).map_err(|e| format!("{e:?}"))?;
        let container = infra
            .deploy_container(vm, ehr_id, Ok(true))
            .map_err(|e| format!("{e:?}"))?;
        workload_path(&infra, container).ok_or("placement recorded")?
    };
    planted.push(PlantedViolation {
        rule: rules::GOLDEN_DIVERGENCE,
        subject: ehr_subject.clone(),
    });
    planted.push(PlantedViolation {
        rule: rules::QUOTE_UNVERIFIED,
        subject: ehr_subject,
    });

    // P6 — encrypt: identified bytes written straight into the lake,
    // bypassing the sealing pipeline (no envelope tags at all).
    let first = demo.patients.first().copied().ok_or("demo has patients")?;
    let plain_ref = {
        let mut rng = p.rng();
        let mut lake = p.lake.lock();
        let reference = lake.put(&mut *rng, b"plaintext-observation-dump".to_vec(), &[]);
        lake.map_identity(reference, first);
        reference
    };
    planted.push(PlantedViolation {
        rule: rules::PLAINTEXT_PHI,
        subject: format!("deployment://lake/record/{plain_ref}"),
    });

    // P7 — encrypt: shred a live record's wrapping key without
    // tombstoning the record (the two-phase forget flow bypassed).
    let second = demo.patients.get(1).copied().ok_or("demo has patients")?;
    let (orphan_ref, orphan_key) = {
        let lake = p.lake.lock();
        lake.audit_records()
            .iter()
            .filter(|rec| rec.patient == Some(second) && !rec.tombstoned)
            .find_map(|rec| {
                let dek = rec.versions.last()?.tags.get("dek")?;
                let raw: u128 = dek.parse().ok()?;
                Some((rec.reference, hc_common::id::KeyId::from_raw(raw)))
            })
            .ok_or("second demo patient has a sealed record")?
    };
    p.kms.shred(orphan_key);
    planted.push(PlantedViolation {
        rule: rules::SHREDDED_KEY_REF,
        subject: format!("deployment://lake/record/{orphan_ref}"),
    });

    // P8 — encrypt: a batch key ground through 70 seals, past the planted
    // config's rotation budget of 64.
    let batch = Principal::Service("batch".to_owned());
    let key_stale = {
        let mut rng = p.rng();
        p.kms.create_key(&mut *rng, std::slice::from_ref(&batch))
    };
    for i in 0..70u32 {
        p.kms
            .seal(&batch, key_stale, format!("batch-chunk-{i}").as_bytes(), b"aad")
            .map_err(|e| format!("{e:?}"))?;
    }
    planted.push(PlantedViolation {
        rule: rules::STALE_KEY,
        subject: format!("deployment://kms/key/{key_stale}"),
    });

    // P9 — consent: a properly sealed record backfilled for a patient the
    // consent service has never seen.
    let backfill = Principal::Service("backfill".to_owned());
    let key_backfill = {
        let mut rng = p.rng();
        p.kms.create_key(&mut *rng, std::slice::from_ref(&backfill))
    };
    p.kms
        .seal(&backfill, key_backfill, b"backfilled-observation", b"at-rest")
        .map_err(|e| format!("{e:?}"))?;
    let orphan_patient = PatientId::from_raw(9100);
    let dek_tag = key_backfill.as_u128().to_string();
    let backfill_ref = {
        let mut rng = p.rng();
        let mut lake = p.lake.lock();
        let reference = lake.put(
            &mut *rng,
            b"sealed-backfill-bytes".to_vec(),
            &[("enc", "envelope-v1"), ("dek", dek_tag.as_str())],
        );
        lake.map_identity(reference, orphan_patient);
        reference
    };
    planted.push(PlantedViolation {
        rule: rules::CONSENT_GAP,
        subject: format!("deployment://lake/record/{backfill_ref}"),
    });

    // P10 — consent: a revocation that was never followed by
    // crypto-shredding; the third patient's records stay live.
    let third = demo.patients.get(2).copied().ok_or("demo has patients")?;
    p.consent.lock().revoke(third, p.study);
    planted.push(PlantedViolation {
        rule: rules::REVOKED_UNSHREDDED,
        subject: format!("deployment://consent/patient/{third}"),
    });

    Ok(planted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use crate::snapshot::PlatformSnapshot;

    #[test]
    fn clean_demo_scans_clean() {
        let demo = DemoDeployment::build(42).expect("demo builds");
        let snap = PlatformSnapshot::capture(&demo.platform);
        let outcome = scan(&snap, &demo_config()).expect("config valid");
        assert!(
            outcome.findings.is_empty(),
            "clean deployment produced findings: {:#?}",
            outcome.findings
        );
        assert_eq!(outcome.suppressed, 0);
        assert!(outcome.entities_scanned > 0);
    }

    #[test]
    fn planted_violations_are_all_found_exactly() {
        let mut demo = DemoDeployment::build(42).expect("demo builds");
        let expected = plant_violations(&mut demo).expect("plants apply");
        assert_eq!(expected.len(), 11, "one plant per rule");
        let snap = PlatformSnapshot::capture(&demo.platform);
        let outcome = scan(&snap, &planted_config()).expect("config valid");

        let mut got: Vec<(String, String)> = outcome
            .findings
            .iter()
            .map(|f| (f.rule.clone(), f.file.clone()))
            .collect();
        got.sort();
        let mut want: Vec<(String, String)> = expected
            .iter()
            .map(|v| (v.rule.to_owned(), v.subject.clone()))
            .collect();
        want.sort();
        assert_eq!(got, want);
    }
}
