//! The export service (§II-B).
//!
//! "The platform also exposes an Export service which performs two types
//! of exports, namely i) Anonymized export, that anonymizes the data to
//! protect privacy, and ii) Full export where the re-identified consented
//! data is provided to the client. This is typically needed by Clinical
//! Research Organizations (CRO) to conduct various types of studies."

use std::collections::HashMap;
use std::sync::Arc;

use hc_common::id::{PatientId, Principal, ReferenceId};
use hc_crypto::sha256;
use hc_fhir::bundle::{Bundle, BundleKind};
use hc_ledger::provenance::{ProvenanceAction, ProvenanceEvent};

use crate::pipeline::SharedState;
use hc_crypto::ots::MerklePublicKey;
use hc_crypto::redactable::{RedactableDocument, RedactableError};

/// Errors from the export service.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExportError {
    /// The patient has not consented to re-identified export.
    NotConsented(PatientId),
    /// A stored record could not be decrypted (shredded key?).
    Unreadable(ReferenceId),
    /// The patient has no stored records.
    NothingToExport,
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::NotConsented(p) => {
                write!(f, "patient {p} has not consented to full export")
            }
            ExportError::Unreadable(r) => write!(f, "record {r} cannot be decrypted"),
            ExportError::NothingToExport => f.write_str("no records to export"),
        }
    }
}

impl std::error::Error for ExportError {}

/// A full export: re-identified data plus the pseudonym reversal map.
#[derive(Clone, Debug)]
pub struct FullExport {
    /// The merged bundle (still pseudonymized ids in resources).
    pub bundle: Bundle,
    /// pseudonym → original logical id, per the consented records.
    pub reidentification: HashMap<String, String>,
}

/// The export service.
pub struct ExportService {
    shared: Arc<SharedState>,
}

impl std::fmt::Debug for ExportService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExportService")
            .field("study", &self.shared.study_name)
            .finish()
    }
}

impl ExportService {
    pub(crate) fn new(shared: Arc<SharedState>) -> Self {
        ExportService { shared }
    }

    fn open_record(&self, reference: ReferenceId) -> Result<Bundle, ExportError> {
        let raw = {
            let mut lake = self.shared.lake.lock();
            lake.get_latest(reference)
                .map_err(|_| ExportError::Unreadable(reference))?
                .data
                .clone()
        };
        let sealed: hc_crypto::aead::Sealed =
            serde_json::from_slice(&raw).map_err(|_| ExportError::Unreadable(reference))?;
        let key = *self
            .shared
            .record_keys
            .lock()
            .get(&reference)
            .ok_or(ExportError::Unreadable(reference))?;
        let bytes = self
            .shared
            .kms
            .open(&Principal::Service("export".into()), key, &sealed, b"at-rest")
            .map_err(|_| ExportError::Unreadable(reference))?;
        Bundle::from_bytes(&bytes).map_err(|_| ExportError::Unreadable(reference))
    }

    fn anchor_export(&self, reference: ReferenceId, detail: &str) {
        let mut provenance = self.shared.provenance.lock();
        let _ = provenance.record(&ProvenanceEvent {
            record: reference,
            data_hash: sha256::hash(detail.as_bytes()),
            action: ProvenanceAction::Exported,
            actor: "export-service".into(),
            detail: detail.to_owned(),
        });
    }

    /// Anonymized export of the whole study: every stored record merged
    /// into one de-identified collection bundle. Requires no consent —
    /// the data carries no direct identifiers.
    ///
    /// # Errors
    ///
    /// Fails only if a record is unreadable (e.g. its key was shredded
    /// mid-export) — shredded records are skipped, not errors.
    pub fn export_anonymized(&self) -> Result<Bundle, ExportError> {
        let references = {
            let lake = self.shared.lake.lock();
            lake.find_by_tag("study", &self.shared.study_name)
        };
        let mut merged = Bundle::new(BundleKind::Collection, Vec::new());
        for reference in references {
            match self.open_record(reference) {
                Ok(bundle) => {
                    merged.extend(bundle);
                    self.anchor_export(reference, "anonymized");
                }
                Err(ExportError::Unreadable(_)) => continue, // shredded/tombstoned
                Err(e) => return Err(e),
            }
        }
        Ok(merged)
    }

    /// The public key partners use to verify shared redactable records.
    pub fn share_verification_key(&self) -> MerklePublicKey {
        self.shared.share_public
    }

    /// Leakage-free partial sharing (§IV-B1): signs one stored record's
    /// resources as redactable fields and redacts every resource type not
    /// in `keep_types`. The recipient can verify the platform's signature
    /// over the *whole* record while learning nothing about the redacted
    /// resources — unlike plain Merkle hashing, the salted commitments
    /// resist dictionary attacks on low-entropy PHI.
    ///
    /// # Errors
    ///
    /// Fails when the record is unreadable or the signing key exhausted.
    pub fn share_partial_record(
        &self,
        reference: ReferenceId,
        keep_types: &[&str],
    ) -> Result<RedactableDocument, ExportError> {
        let bundle = self.open_record(reference)?;
        let named: Vec<(String, Vec<u8>)> = bundle
            .iter()
            .map(|r| {
                let bytes = serde_json::to_vec(r)
                    .map_err(|_| ExportError::Unreadable(reference))?;
                Ok((format!("{}/{}", r.type_name(), r.id()), bytes))
            })
            .collect::<Result<_, ExportError>>()?;
        let fields: Vec<(&str, &[u8])> = named
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_slice()))
            .collect();
        let mut rng = hc_common::rng::seeded_stream(reference.as_u128() as u64, 911);
        let mut signer = self.shared.share_signer.lock();
        let mut document = RedactableDocument::sign(&fields, &mut signer, &mut rng)
            .map_err(|_| ExportError::Unreadable(reference))?;
        drop(signer);
        for (i, (name, _)) in named.iter().enumerate() {
            let type_name = name.split('/').next().unwrap_or_default();
            if !keep_types.contains(&type_name) {
                document
                    .redact(i)
                    .map_err(|_: RedactableError| ExportError::Unreadable(reference))?;
            }
        }
        self.anchor_export(reference, "redacted-share");
        Ok(document)
    }

    /// Full (re-identified) export of one patient's records, gated on
    /// export-scope consent.
    ///
    /// # Errors
    ///
    /// Fails without consent, or when the patient has no records.
    pub fn export_full(&self, patient: PatientId) -> Result<FullExport, ExportError> {
        {
            let consent = self.shared.consent.lock();
            if !consent.allows_export(patient, self.shared.study) {
                return Err(ExportError::NotConsented(patient));
            }
        }
        let references = {
            let lake = self.shared.lake.lock();
            lake.references_of(patient)
        };
        if references.is_empty() {
            return Err(ExportError::NothingToExport);
        }
        let mut merged = Bundle::new(BundleKind::Collection, Vec::new());
        let mut reidentification = HashMap::new();
        for reference in references {
            let bundle = self.open_record(reference)?;
            merged.extend(bundle);
            if let Some(map) = self.shared.pseudonyms.lock().get(&reference) {
                for (original, pseudonym) in map {
                    reidentification.insert(pseudonym.clone(), original.clone());
                }
            }
            self.anchor_export(reference, "full");
        }
        Ok(FullExport {
            bundle: merged,
            reidentification,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::tests::build_pipeline;
    use crate::status::IngestionStatus;
    use hc_fhir::resource::{Consent, Gender, Observation, Patient, Resource};
    use hc_fhir::types::{CodeableConcept, Quantity, SimDate};

    fn bundle_for(pid: &str, consent: bool, granted: bool) -> Bundle {
        let mut entries = vec![
            Resource::Patient(
                Patient::builder(pid)
                    .name("Doe", "Jane")
                    .gender(Gender::Other)
                    .birth_year(1960)
                    .build(),
            ),
            Resource::Observation(Observation {
                id: format!("{pid}-o1"),
                subject: pid.into(),
                code: CodeableConcept::hba1c(),
                value: Quantity::new(6.9, "%"),
                effective: SimDate(10),
            }),
        ];
        if consent {
            entries.push(Resource::Consent(Consent {
                id: format!("{pid}-c"),
                subject: pid.into(),
                study: "diabetes-rwe".into(),
                granted,
            }));
        }
        Bundle::new(hc_fhir::bundle::BundleKind::Transaction, entries)
    }

    #[test]
    fn anonymized_export_merges_study_records() {
        let pipeline = build_pipeline(30);
        for raw in 1..=3u128 {
            let credential = pipeline.register_device(PatientId::from_raw(raw));
            let sealed = pipeline
                .seal_upload(&credential, &bundle_for(&format!("p{raw}"), true, true))
                .unwrap();
            pipeline.submit(credential, sealed);
        }
        pipeline.process_all();
        let export = pipeline.export_service();
        let merged = export.export_anonymized().unwrap();
        // 3 patients × (patient + observation + consent).
        assert_eq!(merged.len(), 9);
        // No PHI anywhere in the export.
        let json = merged.to_json();
        assert!(!json.contains("Jane"));
    }

    #[test]
    fn full_export_requires_consent_scope() {
        let pipeline = build_pipeline(31);
        let patient = PatientId::from_raw(9);
        let credential = pipeline.register_device(patient);
        let sealed = pipeline
            .seal_upload(&credential, &bundle_for("p9", true, true))
            .unwrap();
        pipeline.submit(credential, sealed);
        pipeline.process_all();
        let export = pipeline.export_service();
        let full = export.export_full(patient).unwrap();
        assert_eq!(full.bundle.len(), 3);
        // Re-identification map inverts the pseudonyms.
        assert!(full.reidentification.values().any(|v| v == "p9"));
    }

    #[test]
    fn full_export_denied_without_consent() {
        let pipeline = build_pipeline(32);
        let patient = PatientId::from_raw(9);
        // Store with consent, then revoke it via a second upload.
        let credential = pipeline.register_device(patient);
        let sealed = pipeline
            .seal_upload(&credential, &bundle_for("p9", true, true))
            .unwrap();
        pipeline.submit(credential, sealed);
        pipeline.process_all();
        {
            let mut consent = pipeline.shared.consent.lock();
            consent.revoke(patient, pipeline.shared.study);
        }
        let export = pipeline.export_service();
        assert_eq!(
            export.export_full(patient).unwrap_err(),
            ExportError::NotConsented(patient)
        );
    }

    #[test]
    fn exports_are_anchored_on_the_ledger() {
        let pipeline = build_pipeline(33);
        let patient = PatientId::from_raw(9);
        let credential = pipeline.register_device(patient);
        let sealed = pipeline
            .seal_upload(&credential, &bundle_for("p9", true, true))
            .unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        let IngestionStatus::Stored { references } = pipeline.status(url).unwrap() else {
            panic!("stored")
        };
        let export = pipeline.export_service();
        let _ = export.export_full(patient).unwrap();
        let provenance = pipeline.shared.provenance.lock();
        let history = provenance.history(references[0]);
        assert!(history
            .iter()
            .any(|e| e.action == ProvenanceAction::Exported && e.detail == "full"));
    }

    #[test]
    fn shredded_records_skipped_in_anonymized_export() {
        let pipeline = build_pipeline(34);
        let p1 = PatientId::from_raw(1);
        let p2 = PatientId::from_raw(2);
        for (raw, patient) in [(1u128, p1), (2, p2)] {
            let credential = pipeline.register_device(patient);
            let sealed = pipeline
                .seal_upload(&credential, &bundle_for(&format!("p{raw}"), true, true))
                .unwrap();
            pipeline.submit(credential, sealed);
        }
        pipeline.process_all();
        pipeline.forget_patient(p1);
        let export = pipeline.export_service();
        let merged = export.export_anonymized().unwrap();
        assert_eq!(merged.len(), 3, "only the surviving patient's records");
    }

    #[test]
    fn empty_patient_export_errors() {
        let pipeline = build_pipeline(35);
        let patient = PatientId::from_raw(42);
        {
            let mut consent = pipeline.shared.consent.lock();
            consent.grant(
                patient,
                pipeline.shared.study,
                hc_access::consent::ConsentScope::FULL,
            );
        }
        let export = pipeline.export_service();
        assert_eq!(
            export.export_full(patient).unwrap_err(),
            ExportError::NothingToExport
        );
    }
}
