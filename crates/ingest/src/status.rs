//! The status-URL state machine.
//!
//! "The platform returns a status URL to the uploading client, which can
//! be used to know the status of the data ingestion process as it goes
//! through its ingestion flow sequence." (§II-B)

use hc_common::id::{IngestionId, ReferenceId};
use serde::{Deserialize, Serialize};

/// The pipeline stage an upload is in (or finished with).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum IngestionStatus {
    /// Staged; waiting for the background process.
    Received,
    /// Being decrypted with the client's platform-issued key.
    Decrypting,
    /// Bundle validation / curation in progress.
    Validating,
    /// Malware filtration in progress.
    Scanning,
    /// Consent verification in progress.
    CheckingConsent,
    /// De-identification in progress.
    DeIdentifying,
    /// Stored in the data lake.
    Stored {
        /// The reference ids of the stored record(s).
        references: Vec<ReferenceId>,
    },
    /// Rejected; the upload was dropped.
    Rejected {
        /// Which stage rejected it.
        stage: String,
        /// Why.
        reason: String,
    },
    /// Parked in the dead-letter queue after exhausting its processing
    /// budget; eligible for replay once the cause is fixed.
    DeadLettered {
        /// The stage that kept failing.
        stage: String,
        /// The final failure reason.
        reason: String,
    },
}

impl IngestionStatus {
    /// Whether the pipeline has finished with this upload.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            IngestionStatus::Stored { .. }
                | IngestionStatus::Rejected { .. }
                | IngestionStatus::DeadLettered { .. }
        )
    }

    /// Whether the upload succeeded.
    pub fn is_stored(&self) -> bool {
        matches!(self, IngestionStatus::Stored { .. })
    }
}

/// A status-URL handle, as returned to the uploading client.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct StatusUrl(pub IngestionId);

impl std::fmt::Display for StatusUrl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "https://health-cloud.example/ingestions/{}/status", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(!IngestionStatus::Received.is_terminal());
        assert!(!IngestionStatus::Scanning.is_terminal());
        assert!(IngestionStatus::Stored { references: vec![] }.is_terminal());
        assert!(IngestionStatus::Rejected {
            stage: "validate".into(),
            reason: "x".into()
        }
        .is_terminal());
    }

    #[test]
    fn stored_flag() {
        assert!(IngestionStatus::Stored { references: vec![] }.is_stored());
        assert!(!IngestionStatus::Received.is_stored());
    }

    #[test]
    fn status_url_renders() {
        let url = StatusUrl(IngestionId::from_raw(7));
        assert!(url.to_string().contains("/ingestions/"));
        assert!(url.to_string().ends_with("/status"));
    }
}
