//! The malware data-filtration service.
//!
//! §IV-B1: "the ingestion service employs a data filtration system to
//! determine if the data contains any malware. If so, the filtration
//! services filter out the record and update the blockchain."
//! Signature-based scanning over the decrypted upload bytes; the default
//! database carries a test signature playing the role of the EICAR
//! string.

/// The built-in test signature (an EICAR-style marker for exercising the
/// rejection path end to end).
pub const TEST_SIGNATURE: &[u8] = b"X5O!HC-MALWARE-TEST-PAYLOAD!H+H*";

/// A malware detection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Detection {
    /// Which signature matched.
    pub signature_name: String,
    /// Byte offset of the first match.
    pub offset: usize,
}

/// A signature-based scanner.
#[derive(Clone, Debug)]
pub struct MalwareScanner {
    signatures: Vec<(String, Vec<u8>)>,
}

impl Default for MalwareScanner {
    fn default() -> Self {
        MalwareScanner {
            signatures: vec![("hc-test-signature".to_owned(), TEST_SIGNATURE.to_vec())],
        }
    }
}

impl MalwareScanner {
    /// A scanner with the built-in test signature.
    pub fn new() -> Self {
        MalwareScanner::default()
    }

    /// Adds a signature to the database.
    ///
    /// # Panics
    ///
    /// Panics on an empty pattern (it would match everything).
    pub fn add_signature(&mut self, name: &str, pattern: &[u8]) {
        assert!(!pattern.is_empty(), "empty signatures are not allowed");
        self.signatures.push((name.to_owned(), pattern.to_vec()));
    }

    /// Number of signatures loaded.
    pub fn signature_count(&self) -> usize {
        self.signatures.len()
    }

    /// Scans `data`, returning the first detection if any.
    pub fn scan(&self, data: &[u8]) -> Option<Detection> {
        for (name, pattern) in &self.signatures {
            if let Some(offset) = find(data, pattern) {
                return Some(Detection {
                    signature_name: name.clone(),
                    offset,
                });
            }
        }
        None
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.len() > haystack.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_data_passes() {
        let scanner = MalwareScanner::new();
        assert!(scanner.scan(b"{\"resourceType\":\"Patient\"}").is_none());
        assert!(scanner.scan(b"").is_none());
    }

    #[test]
    fn test_signature_detected() {
        let scanner = MalwareScanner::new();
        let mut payload = b"benign prefix ".to_vec();
        payload.extend_from_slice(TEST_SIGNATURE);
        let detection = scanner.scan(&payload).unwrap();
        assert_eq!(detection.signature_name, "hc-test-signature");
        assert_eq!(detection.offset, 14);
    }

    #[test]
    fn custom_signature_detected() {
        let mut scanner = MalwareScanner::new();
        scanner.add_signature("evil-marker", b"\xde\xad\xbe\xef");
        assert_eq!(scanner.signature_count(), 2);
        let detection = scanner.scan(b"xx\xde\xad\xbe\xefyy").unwrap();
        assert_eq!(detection.signature_name, "evil-marker");
    }

    #[test]
    fn needle_longer_than_haystack() {
        let scanner = MalwareScanner::new();
        assert!(scanner.scan(b"x").is_none());
    }

    #[test]
    #[should_panic(expected = "empty signatures")]
    fn empty_signature_panics() {
        MalwareScanner::new().add_signature("bad", b"");
    }
}
