//! The background ingestion process.
//!
//! Stages, in the paper's order: decrypt (client key from the KMS) →
//! validate/curate → malware scan (posting detections to the malware
//! blockchain channel) → consent check → de-identify → anonymization
//! verification → encrypt-at-rest with a *per-record* key (so secure
//! deletion can crypto-shred exactly one record) → store in the data lake
//! with a reference id → anchor `ingested`/`anonymized` provenance events
//! on the ledger. Every upload gets a [`StatusUrl`] whose state advances
//! through [`IngestionStatus`].

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use hc_access::consent::{ConsentRegistry, ConsentScope};
use hc_common::clock::SimClock;
use hc_common::id::{GroupId, IngestionId, KeyId, PatientId, Principal, ReferenceId};
use hc_crypto::aead::Sealed;
use hc_crypto::kms::KeyManagementSystem;
use hc_crypto::sha256;
use hc_fhir::bundle::Bundle;
use hc_fhir::resource::Resource;
use hc_fhir::validation::Validator;
use hc_ledger::block::Transaction;
use hc_ledger::provenance::{ProvenanceAction, ProvenanceEvent, ProvenanceNetwork};
use hc_privacy::phi::{deidentify_bundle, DeidConfig};
use hc_privacy::verify::scan_resource_for_phi;
use hc_storage::datalake::DataLake;

use crate::scanner::MalwareScanner;
use crate::status::{IngestionStatus, StatusUrl};

/// The credential a registered device uploads under: its patient identity
/// and its platform-issued encryption key.
#[derive(Clone, Copy, Debug)]
pub struct DeviceCredential {
    /// The patient the device belongs to.
    pub patient: PatientId,
    /// The device's KMS key (created at registration).
    pub key: KeyId,
}

/// Counters the monitoring service scrapes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PipelineStats {
    /// Uploads received.
    pub received: u64,
    /// Uploads stored successfully.
    pub stored: u64,
    /// Rejected at decryption (integrity/authenticity).
    pub rejected_integrity: u64,
    /// Rejected at validation.
    pub rejected_validation: u64,
    /// Rejected by the malware filter.
    pub rejected_malware: u64,
    /// Rejected for missing consent.
    pub rejected_consent: u64,
    /// Rejected by anonymization verification.
    pub rejected_anonymization: u64,
}

/// State shared between the pipeline and the export service.
pub(crate) struct SharedState {
    pub(crate) kms: Arc<KeyManagementSystem>,
    pub(crate) lake: Arc<Mutex<DataLake>>,
    pub(crate) consent: Arc<Mutex<ConsentRegistry>>,
    pub(crate) provenance: Arc<Mutex<ProvenanceNetwork>>,
    /// Per-record storage keys: shredding one deletes one record.
    pub(crate) record_keys: Mutex<HashMap<ReferenceId, KeyId>>,
    /// Reference-id → (original id → pseudonym) maps; "the reference-id
    /// to identity the mapping is stored in the metadata".
    pub(crate) pseudonyms: Mutex<HashMap<ReferenceId, HashMap<String, String>>>,
    /// The study this pipeline ingests for.
    pub(crate) study: GroupId,
    /// The study's display name (matched against in-bundle consents).
    pub(crate) study_name: String,
    /// Platform signing key for leakage-free redactable record sharing.
    pub(crate) share_signer: Mutex<hc_crypto::ots::MerkleSigner>,
    /// The verification key for shared redactable documents.
    pub(crate) share_public: hc_crypto::ots::MerklePublicKey,
}

struct Job {
    id: IngestionId,
    credential: DeviceCredential,
    sealed: Sealed,
}

/// The ingestion pipeline.
pub struct IngestionPipeline {
    pub(crate) shared: Arc<SharedState>,
    scanner: MalwareScanner,
    validator: Validator,
    deid: DeidConfig,
    tx: Sender<Job>,
    rx: Receiver<Job>,
    statuses: Arc<Mutex<HashMap<IngestionId, IngestionStatus>>>,
    stats: Mutex<PipelineStats>,
    rng: Mutex<rand::rngs::StdRng>,
    next_ingestion: Mutex<u128>,
}

impl std::fmt::Debug for IngestionPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestionPipeline")
            .field("study", &self.shared.study_name)
            .field("pending", &self.rx.len())
            .finish()
    }
}

/// Everything the pipeline needs from the rest of the platform.
pub struct PipelineDeps {
    /// The key management system.
    pub kms: Arc<KeyManagementSystem>,
    /// The data lake.
    pub lake: Arc<Mutex<DataLake>>,
    /// The consent registry.
    pub consent: Arc<Mutex<ConsentRegistry>>,
    /// The provenance blockchain network.
    pub provenance: Arc<Mutex<ProvenanceNetwork>>,
}

impl IngestionPipeline {
    /// Builds a pipeline for one study.
    pub fn new(
        deps: PipelineDeps,
        study: GroupId,
        study_name: &str,
        seed: u64,
    ) -> Self {
        let (tx, rx) = unbounded();
        let mut signer_rng = hc_common::rng::seeded_stream(seed, 910);
        let share_signer = hc_crypto::ots::MerkleSigner::generate(&mut signer_rng, 6);
        let share_public = share_signer.public_key();
        IngestionPipeline {
            shared: Arc::new(SharedState {
                kms: deps.kms,
                lake: deps.lake,
                consent: deps.consent,
                provenance: deps.provenance,
                record_keys: Mutex::new(HashMap::new()),
                pseudonyms: Mutex::new(HashMap::new()),
                study,
                study_name: study_name.to_owned(),
                share_signer: Mutex::new(share_signer),
                share_public,
            }),
            scanner: MalwareScanner::new(),
            validator: Validator::strict(),
            deid: DeidConfig::default(),
            tx,
            rx,
            statuses: Arc::new(Mutex::new(HashMap::new())),
            stats: Mutex::new(PipelineStats::default()),
            rng: Mutex::new(hc_common::rng::seeded_stream(seed, 909)),
            next_ingestion: Mutex::new(0),
        }
    }

    /// Replaces the malware scanner (e.g. to add signatures).
    pub fn set_scanner(&mut self, scanner: MalwareScanner) {
        self.scanner = scanner;
    }

    /// Registers a patient device: issues its KMS key, authorized for the
    /// device itself and the ingestion service.
    pub fn register_device(&self, patient: PatientId) -> DeviceCredential {
        let mut rng = self.rng.lock();
        let key = self.shared.kms.create_key(
            &mut *rng,
            &[
                Principal::Device(patient),
                Principal::Service("ingest".into()),
            ],
        );
        DeviceCredential { patient, key }
    }

    /// Client-side helper: seals a bundle under the device credential
    /// (models the enhanced client encrypting before upload).
    ///
    /// # Errors
    ///
    /// Propagates KMS errors (unknown key, unauthorized device).
    pub fn seal_upload(
        &self,
        credential: &DeviceCredential,
        bundle: &Bundle,
    ) -> Result<Sealed, hc_crypto::kms::KmsError> {
        self.shared.kms.seal(
            &Principal::Device(credential.patient),
            credential.key,
            &bundle.to_bytes(),
            &credential.patient.as_u128().to_le_bytes(),
        )
    }

    /// Accepts an upload into the staging area and returns its status URL.
    pub fn submit(&self, credential: DeviceCredential, sealed: Sealed) -> StatusUrl {
        let id = {
            let mut next = self.next_ingestion.lock();
            *next += 1;
            IngestionId::from_raw(*next)
        };
        self.statuses.lock().insert(id, IngestionStatus::Received);
        self.stats.lock().received += 1;
        self.tx
            .send(Job {
                id,
                credential,
                sealed,
            })
            .expect("queue never closes while the pipeline lives");
        StatusUrl(id)
    }

    /// Polls an upload's status.
    pub fn status(&self, url: StatusUrl) -> Option<IngestionStatus> {
        self.statuses.lock().get(&url.0).cloned()
    }

    /// Processes one queued upload, returning its id; `None` if idle.
    pub fn process_one(&self) -> Option<IngestionId> {
        let job = self.rx.try_recv().ok()?;
        let id = job.id;
        let outcome = self.run_stages(&job);
        self.statuses.lock().insert(id, outcome);
        Some(id)
    }

    /// Drains the queue inline.
    pub fn process_all(&self) -> usize {
        let mut n = 0;
        while self.process_one().is_some() {
            n += 1;
        }
        n
    }

    /// Drains the queue on `workers` threads (the "asynchronous
    /// communication process" of §II-B).
    pub fn process_all_parallel(&self, workers: usize) -> usize {
        let processed = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers.max(1) {
                scope.spawn(|| {
                    while self.process_one().is_some() {
                        processed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        processed.into_inner()
    }

    fn set_status(&self, id: IngestionId, status: IngestionStatus) {
        self.statuses.lock().insert(id, status);
    }

    fn reject(&self, stage: &str, reason: String) -> IngestionStatus {
        IngestionStatus::Rejected {
            stage: stage.to_owned(),
            reason,
        }
    }

    fn run_stages(&self, job: &Job) -> IngestionStatus {
        // 1. Decrypt + integrity/authenticity verification.
        self.set_status(job.id, IngestionStatus::Decrypting);
        let ingest = Principal::Service("ingest".into());
        let bytes = match self.shared.kms.open(
            &ingest,
            job.credential.key,
            &job.sealed,
            &job.credential.patient.as_u128().to_le_bytes(),
        ) {
            Ok(b) => b,
            Err(e) => {
                self.stats.lock().rejected_integrity += 1;
                return self.reject("decrypt", e.to_string());
            }
        };

        // 2. Validate / curate.
        self.set_status(job.id, IngestionStatus::Validating);
        let bundle = match Bundle::from_bytes(&bytes) {
            Ok(b) => b,
            Err(e) => {
                self.stats.lock().rejected_validation += 1;
                return self.reject("validate", format!("malformed bundle: {e}"));
            }
        };
        let report = self.validator.validate_bundle(&bundle);
        if !report.is_valid() {
            self.stats.lock().rejected_validation += 1;
            let first = report
                .issues
                .first()
                .map(|i| i.message.clone())
                .unwrap_or_default();
            return self.reject("validate", first);
        }

        // 3. Malware filtration.
        self.set_status(job.id, IngestionStatus::Scanning);
        if let Some(detection) = self.scanner.scan(&bytes) {
            self.stats.lock().rejected_malware += 1;
            // "update the blockchain with the information that the
            // corresponding record … contains malware".
            let payload = format!(
                "scanner={};record={};offset={}",
                detection.signature_name, job.id, detection.offset
            );
            let mut provenance = self.shared.provenance.lock();
            let clock = SimClock::new();
            let tx = Transaction {
                id: hc_common::id::TxId::from_raw(job.id.as_u128()),
                channel: "malware".into(),
                kind: "malware-detected".into(),
                payload: payload.into_bytes(),
                submitter: "malware-filter".into(),
                timestamp: clock.now(),
            };
            let _ = provenance.ledger_mut().submit(vec![tx]);
            return self.reject("malware-scan", format!("signature {}", detection.signature_name));
        }

        // 4. Consent: apply in-bundle consents, then verify.
        self.set_status(job.id, IngestionStatus::CheckingConsent);
        {
            let mut consent = self.shared.consent.lock();
            for resource in &bundle {
                if let Resource::Consent(c) = resource {
                    if c.study == self.shared.study_name {
                        let action = if c.granted {
                            consent.grant(job.credential.patient, self.shared.study, ConsentScope::FULL);
                            ProvenanceAction::ConsentGranted
                        } else {
                            consent.revoke(job.credential.patient, self.shared.study);
                            ProvenanceAction::ConsentRevoked
                        };
                        // Consent provenance "as required by GDPR and
                        // HIPAA" (§IV-A) — anchored before the data is.
                        let mut provenance = self.shared.provenance.lock();
                        let _ = provenance.record(&ProvenanceEvent {
                            record: ReferenceId::from_raw(job.id.as_u128()),
                            data_hash: sha256::hash(c.study.as_bytes()),
                            action,
                            actor: format!("device:{}", job.credential.patient),
                            detail: format!("study={}", c.study),
                        });
                    }
                }
            }
            if !consent.allows_analytics(job.credential.patient, self.shared.study) {
                drop(consent);
                self.stats.lock().rejected_consent += 1;
                return self.reject(
                    "consent",
                    format!(
                        "patient has not consented to study `{}`",
                        self.shared.study_name
                    ),
                );
            }
        }

        // 5. De-identify + anonymization verification.
        self.set_status(job.id, IngestionStatus::DeIdentifying);
        let deidentified = deidentify_bundle(
            &bundle,
            &self.deid,
            &self.shared.study.as_u128().to_le_bytes(),
        );
        for resource in &deidentified.bundle {
            let violations = scan_resource_for_phi(resource);
            if !violations.is_empty() {
                self.stats.lock().rejected_anonymization += 1;
                return self.reject("anonymization-verification", violations.join("; "));
            }
        }

        // 6. Encrypt at rest under a fresh per-record key and store.
        let deid_bytes = deidentified.bundle.to_bytes();
        let data_hash = sha256::hash(&deid_bytes);
        let record_key = {
            let mut rng = self.rng.lock();
            self.shared.kms.create_key(
                &mut *rng,
                &[
                    Principal::Service("ingest".into()),
                    Principal::Service("export".into()),
                ],
            )
        };
        let sealed_at_rest = match self.shared.kms.seal(&ingest, record_key, &deid_bytes, b"at-rest") {
            Ok(s) => s,
            Err(e) => return self.reject("store", e.to_string()),
        };
        let reference = {
            let mut rng = self.rng.lock();
            let mut lake = self.shared.lake.lock();
            let reference = lake.put(
                &mut *rng,
                serde_json::to_vec(&sealed_at_rest).expect("sealed serializes"),
                &[
                    ("study", self.shared.study_name.as_str()),
                    ("kind", "bundle"),
                ],
            );
            lake.map_identity(reference, job.credential.patient);
            reference
        };
        self.shared.record_keys.lock().insert(reference, record_key);
        self.shared
            .pseudonyms
            .lock()
            .insert(reference, deidentified.pseudonyms);

        // 7. Anchor provenance.
        {
            let mut provenance = self.shared.provenance.lock();
            let _ = provenance.record(&ProvenanceEvent {
                record: reference,
                data_hash,
                action: ProvenanceAction::Ingested,
                actor: "ingest-service".into(),
                detail: format!("study={}", self.shared.study_name),
            });
            let _ = provenance.record(&ProvenanceEvent {
                record: reference,
                data_hash,
                action: ProvenanceAction::Anonymized,
                actor: "deid-service".into(),
                detail: String::new(),
            });
        }

        self.stats.lock().stored += 1;
        IngestionStatus::Stored {
            references: vec![reference],
        }
    }

    /// Right-to-forget: purges and crypto-shreds every record of a
    /// patient, anchoring `deleted` events.
    ///
    /// Returns the number of records destroyed.
    pub fn forget_patient(&self, patient: PatientId) -> usize {
        let references = self.shared.lake.lock().references_of(patient);
        for &reference in &references {
            {
                let mut lake = self.shared.lake.lock();
                let _ = lake.tombstone(reference);
                let _ = lake.purge(reference);
            }
            if let Some(key) = self.shared.record_keys.lock().remove(&reference) {
                self.shared.kms.shred(key);
            }
            self.shared.pseudonyms.lock().remove(&reference);
            let mut provenance = self.shared.provenance.lock();
            let _ = provenance.record(&ProvenanceEvent {
                record: reference,
                data_hash: sha256::hash(b""),
                action: ProvenanceAction::Deleted,
                actor: "gdpr-service".into(),
                detail: "right-to-forget".into(),
            });
        }
        references.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PipelineStats {
        *self.stats.lock()
    }

    /// Creates the export service sharing this pipeline's state.
    pub fn export_service(&self) -> crate::export::ExportService {
        crate::export::ExportService::new(Arc::clone(&self.shared))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use hc_common::clock::SimDuration;
    use hc_fhir::bundle::BundleKind;
    use hc_fhir::resource::{Consent, Gender, Observation, Patient};
    use hc_fhir::types::{CodeableConcept, Quantity, SimDate};
    use hc_ledger::chain::Ledger;
    use hc_ledger::consensus::PbftCluster;
    use hc_ledger::policy::{MalwarePolicy, ProvenancePolicy};

    pub(crate) fn build_pipeline(seed: u64) -> IngestionPipeline {
        let clock = SimClock::new();
        let mut rng = hc_common::rng::seeded(seed);
        let kms = Arc::new(KeyManagementSystem::new(&mut rng));
        let lake = Arc::new(Mutex::new(DataLake::new(clock.clone())));
        let consent = Arc::new(Mutex::new(ConsentRegistry::new(clock.clone())));
        let cluster = PbftCluster::new(4, SimDuration::from_millis(1), clock.clone()).unwrap();
        let mut ledger = Ledger::new(cluster, clock.clone());
        ledger.install_policy(Box::new(ProvenancePolicy));
        ledger.install_policy(Box::new(MalwarePolicy));
        let provenance = Arc::new(Mutex::new(ProvenanceNetwork::new(ledger, clock, 1)));
        IngestionPipeline::new(
            PipelineDeps {
                kms,
                lake,
                consent,
                provenance,
            },
            GroupId::from_raw(1),
            "diabetes-rwe",
            seed,
        )
    }

    fn patient_bundle(with_consent: bool) -> Bundle {
        let mut entries = vec![
            Resource::Patient(
                Patient::builder("p1")
                    .name("Doe", "Jane")
                    .gender(Gender::Female)
                    .birth_year(1970)
                    .phone("555-0100")
                    .build(),
            ),
            Resource::Observation(Observation {
                id: "o1".into(),
                subject: "p1".into(),
                code: CodeableConcept::hba1c(),
                value: Quantity::new(7.1, "%"),
                effective: SimDate(200),
            }),
        ];
        if with_consent {
            entries.push(Resource::Consent(Consent {
                id: "c1".into(),
                subject: "p1".into(),
                study: "diabetes-rwe".into(),
                granted: true,
            }));
        }
        Bundle::new(BundleKind::Transaction, entries)
    }

    #[test]
    fn happy_path_stores_and_anchors_provenance() {
        let pipeline = build_pipeline(1);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        let sealed = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        let url = pipeline.submit(credential, sealed);
        assert_eq!(pipeline.status(url), Some(IngestionStatus::Received));
        assert_eq!(pipeline.process_all(), 1);
        let status = pipeline.status(url).unwrap();
        let IngestionStatus::Stored { references } = status else {
            panic!("expected Stored, got {status:?}");
        };
        assert_eq!(references.len(), 1);
        let provenance = pipeline.shared.provenance.lock();
        let history = provenance.history(references[0]);
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].action, ProvenanceAction::Ingested);
        assert_eq!(history[1].action, ProvenanceAction::Anonymized);
        assert_eq!(pipeline.stats().stored, 1);
    }

    #[test]
    fn tampered_upload_rejected_at_decrypt() {
        let pipeline = build_pipeline(2);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        let mut sealed = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        sealed.ciphertext[0] ^= 0xff;
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        let status = pipeline.status(url).unwrap();
        assert!(matches!(status, IngestionStatus::Rejected { ref stage, .. } if stage == "decrypt"));
        assert_eq!(pipeline.stats().rejected_integrity, 1);
    }

    #[test]
    fn invalid_bundle_rejected() {
        let pipeline = build_pipeline(3);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        // Observation with dangling subject (strict validator).
        let bad = Bundle::new(
            BundleKind::Transaction,
            vec![Resource::Observation(Observation {
                id: "o1".into(),
                subject: "ghost".into(),
                code: CodeableConcept::hba1c(),
                value: Quantity::new(7.1, "%"),
                effective: SimDate(1),
            })],
        );
        let sealed = pipeline.seal_upload(&credential, &bad).unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        assert!(matches!(
            pipeline.status(url).unwrap(),
            IngestionStatus::Rejected { ref stage, .. } if stage == "validate"
        ));
    }

    #[test]
    fn malware_rejected_and_posted_to_chain() {
        let pipeline = build_pipeline(4);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        let mut bundle = patient_bundle(true);
        // Hide the signature inside a field value.
        if let Resource::Patient(p) = &mut bundle.entries[0] {
            p.name = Some(hc_fhir::types::HumanName::new(
                String::from_utf8_lossy(crate::scanner::TEST_SIGNATURE).to_string(),
                "Jane",
            ));
        }
        let sealed = pipeline.seal_upload(&credential, &bundle).unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        assert!(matches!(
            pipeline.status(url).unwrap(),
            IngestionStatus::Rejected { ref stage, .. } if stage == "malware-scan"
        ));
        let provenance = pipeline.shared.provenance.lock();
        let malware_txs = provenance.ledger().channel_transactions("malware");
        assert_eq!(malware_txs.len(), 1);
        assert!(String::from_utf8_lossy(&malware_txs[0].payload).contains("scanner="));
    }

    #[test]
    fn missing_consent_rejected() {
        let pipeline = build_pipeline(5);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        let sealed = pipeline.seal_upload(&credential, &patient_bundle(false)).unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        assert!(matches!(
            pipeline.status(url).unwrap(),
            IngestionStatus::Rejected { ref stage, .. } if stage == "consent"
        ));
        assert_eq!(pipeline.stats().rejected_consent, 1);
    }

    #[test]
    fn consent_persists_across_uploads() {
        let pipeline = build_pipeline(6);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        // First upload carries consent; second does not need it.
        let s1 = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        let u1 = pipeline.submit(credential, s1);
        pipeline.process_all();
        assert!(pipeline.status(u1).unwrap().is_stored());
        let s2 = pipeline.seal_upload(&credential, &patient_bundle(false)).unwrap();
        let u2 = pipeline.submit(credential, s2);
        pipeline.process_all();
        assert!(pipeline.status(u2).unwrap().is_stored());
    }

    #[test]
    fn stored_record_is_deidentified_and_encrypted() {
        let pipeline = build_pipeline(7);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        let sealed = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        let IngestionStatus::Stored { references } = pipeline.status(url).unwrap() else {
            panic!("stored");
        };
        let raw = {
            let mut lake = pipeline.shared.lake.lock();
            lake.get_latest(references[0]).unwrap().data.clone()
        };
        // At-rest bytes are a sealed envelope, not plaintext PHI.
        let as_text = String::from_utf8_lossy(&raw);
        assert!(!as_text.contains("Jane"), "PHI must not be at rest in clear");
        assert!(Bundle::from_bytes(&raw).is_err(), "not a plaintext bundle");
    }

    #[test]
    fn forget_patient_destroys_records() {
        let pipeline = build_pipeline(8);
        let patient = PatientId::from_raw(5);
        let credential = pipeline.register_device(patient);
        let sealed = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
        let url = pipeline.submit(credential, sealed);
        pipeline.process_all();
        let IngestionStatus::Stored { references } = pipeline.status(url).unwrap() else {
            panic!("stored");
        };
        assert_eq!(pipeline.forget_patient(patient), 1);
        // Record gone from the lake, key shredded, deletion anchored.
        {
            let mut lake = pipeline.shared.lake.lock();
            assert!(lake.get_latest(references[0]).is_err());
        }
        let provenance = pipeline.shared.provenance.lock();
        let history = provenance.history(references[0]);
        assert_eq!(history.last().unwrap().action, ProvenanceAction::Deleted);
    }

    #[test]
    fn parallel_workers_drain_queue() {
        let pipeline = build_pipeline(9);
        let patient = PatientId::from_raw(5);
        let credential = pipeline.register_device(patient);
        for _ in 0..20 {
            let sealed = pipeline.seal_upload(&credential, &patient_bundle(true)).unwrap();
            pipeline.submit(credential, sealed);
        }
        let processed = pipeline.process_all_parallel(4);
        assert_eq!(processed, 20);
        assert_eq!(pipeline.stats().stored, 20);
    }

    #[test]
    fn foreign_device_cannot_use_anothers_key() {
        let pipeline = build_pipeline(10);
        let credential = pipeline.register_device(PatientId::from_raw(5));
        // A different patient's device tries to seal with this key.
        let thief = DeviceCredential {
            patient: PatientId::from_raw(6),
            key: credential.key,
        };
        assert!(pipeline.seal_upload(&thief, &patient_bundle(true)).is_err());
    }
}
